// Synthesis strategies (paper §5, Table 1) and literature baselines.
//
//  * independent   — one synthesis cycle per application (Table 1 rows 1-2)
//  * superposition — union of the independent implementations (row 3)
//  * with variants — joint optimization over the variant-annotated model,
//                    exploiting mutual exclusion (row 4)
//  * serialized    — Kim/Karri/Potkonjak, DAC'97 [6]: all variants are
//                    enumerated and serialized into one large task; mutual
//                    exclusion is lost and per-variant deadlines become
//                    prefix deadlines of the serialized chain (order-
//                    sensitive)
//  * incremental   — Kavalade/Subrahmanyam, ICCAD'97 [5]: variants are
//                    synthesized one at a time, reusing the architecture
//                    decided so far (order-sensitive)
//
// Each outcome carries `decisions`, the number of elementary synthesis
// decisions examined — the design-time proxy behind Table 1's "Time" column.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "synth/explore.hpp"

namespace spivar::synth {

/// The five strategies of Table 1, as data — the api compare layer and the
/// CLI select subsets by kind instead of hard-coding call sites.
enum class StrategyKind : std::uint8_t {
  kIndependent,    ///< one synthesis cycle per application
  kSuperposition,  ///< union of the independent implementations
  kWithVariants,   ///< joint, exclusion-aware (the paper's contribution)
  kSerialized,     ///< Kim/Karri/Potkonjak [6], order-sensitive
  kIncremental,    ///< Kavalade/Subrahmanyam [5], order-sensitive
};

inline constexpr StrategyKind kAllStrategies[] = {
    StrategyKind::kIndependent, StrategyKind::kSuperposition, StrategyKind::kWithVariants,
    StrategyKind::kSerialized, StrategyKind::kIncremental,
};

[[nodiscard]] constexpr const char* to_string(StrategyKind kind) noexcept {
  switch (kind) {
    case StrategyKind::kIndependent: return "independent";
    case StrategyKind::kSuperposition: return "superposition";
    case StrategyKind::kWithVariants: return "with-variants";
    case StrategyKind::kSerialized: return "serialized";
    case StrategyKind::kIncremental: return "incremental";
  }
  return "?";
}

/// Canonical name back to the kind; nullopt for unknown names.
[[nodiscard]] std::optional<StrategyKind> parse_strategy(std::string_view name);

/// Serialized and incremental synthesis depend on the application order.
[[nodiscard]] constexpr bool order_sensitive(StrategyKind kind) noexcept {
  return kind == StrategyKind::kSerialized || kind == StrategyKind::kIncremental;
}

/// Objectives for ranking strategy outcomes, applied lexicographically after
/// the feasibility split (feasible always beats infeasible). Lower is better
/// for all three: cost is the paper's Table 1 column, worst utilization is
/// headroom on the most loaded processor, design time is the examined
/// decision count (the "Time" column's proxy).
enum class RankObjective : std::uint8_t {
  kTotalCost,         ///< CostBreakdown::total
  kWorstUtilization,  ///< CostBreakdown::worst_utilization
  kDesignTime,        ///< StrategyOutcome::decisions
};

inline constexpr RankObjective kAllObjectives[] = {
    RankObjective::kTotalCost, RankObjective::kWorstUtilization, RankObjective::kDesignTime};

[[nodiscard]] constexpr const char* to_string(RankObjective objective) noexcept {
  switch (objective) {
    case RankObjective::kTotalCost: return "cost";
    case RankObjective::kWorstUtilization: return "utilization";
    case RankObjective::kDesignTime: return "time";
  }
  return "?";
}

/// Canonical name (or the "util"/"decisions" aliases) back to the
/// objective; nullopt for unknown names.
[[nodiscard]] std::optional<RankObjective> parse_objective(std::string_view name);

struct StrategyOutcome {
  std::string strategy;
  CostBreakdown cost;          ///< final architecture cost
  Mapping mapping;             ///< unified mapping (empty for superposition)
  std::vector<Mapping> per_app;  ///< per-application mappings (superposition)
  std::int64_t decisions = 0;    ///< design-time proxy
  std::int64_t evaluations = 0;  ///< full mapping evaluations behind `decisions`
  bool feasible = false;
  std::string detail;          ///< engine used, order, notes
};

[[nodiscard]] StrategyOutcome synthesize_independent(const ImplLibrary& library,
                                                     const Application& app,
                                                     const ExploreOptions& options = {});

[[nodiscard]] StrategyOutcome synthesize_superposition(const ImplLibrary& library,
                                                       const std::vector<Application>& apps,
                                                       const ExploreOptions& options = {});

[[nodiscard]] StrategyOutcome synthesize_with_variants(const ImplLibrary& library,
                                                       const std::vector<Application>& apps,
                                                       const ExploreOptions& options = {});

/// `order` permutes `apps`; identity when empty.
[[nodiscard]] StrategyOutcome synthesize_serialized(const ImplLibrary& library,
                                                    const std::vector<Application>& apps,
                                                    const std::vector<std::size_t>& order = {},
                                                    const ExploreOptions& options = {});

[[nodiscard]] StrategyOutcome synthesize_incremental(const ImplLibrary& library,
                                                     const std::vector<Application>& apps,
                                                     const std::vector<std::size_t>& order = {},
                                                     const ExploreOptions& options = {});

/// Uniform dispatch over the five strategies. `kIndependent` expects exactly
/// one application (callers slice the problem per application); `order` is
/// only consulted by the order-sensitive baselines.
[[nodiscard]] StrategyOutcome run_strategy(StrategyKind kind, const ImplLibrary& library,
                                           const std::vector<Application>& apps,
                                           const std::vector<std::size_t>& order = {},
                                           const ExploreOptions& options = {});

/// Application orders to try for the order-sensitive baselines: identity
/// first, then the remaining permutations in lexicographic succession, at
/// most `limit` in total (permutation count explodes factorially).
[[nodiscard]] std::vector<std::vector<std::size_t>> application_orders(std::size_t count,
                                                                       std::size_t limit = 24);

/// Multi-objective outcome comparison: `a` ranks strictly better than `b`
/// when it is feasible and `b` is not, or when the first objective in
/// `objectives` on which they differ favors `a`. An empty objective list
/// means total cost only (the classic Table 1 ranking). Equal outcomes
/// compare false both ways, so stable sorts preserve presentation order.
[[nodiscard]] bool better_outcome(const StrategyOutcome& a, const StrategyOutcome& b,
                                  const std::vector<RankObjective>& objectives = {});

}  // namespace spivar::synth
