// Cost model with exclusivity-aware sharing (paper §5, Table 1).
//
// Total cost = processor cost (once, if any element runs in software)
//            + Σ ASIC cost over *distinct* hardware elements.
// Feasibility: per application, the summed software load of its live
// elements must fit the processor budget — mutually exclusive variants are
// never summed together because each application only contains its own
// cluster. An ASIC hosting an element common to several applications is
// counted once: this is precisely the sharing of Table 1 row 4.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "synth/mapping.hpp"
#include "synth/target.hpp"

namespace spivar::synth {

struct CostBreakdown {
  double processor_cost = 0.0;
  double asic_cost = 0.0;
  double total = 0.0;
  bool feasible = true;
  std::string infeasibility;  ///< first reason, empty when feasible
  double worst_utilization = 0.0;

  std::vector<std::string> software;  ///< distinct SW element names
  std::vector<std::string> hardware;  ///< distinct HW element names
};

/// Evaluates a single mapping shared by all applications.
[[nodiscard]] CostBreakdown evaluate(const ImplLibrary& library,
                                     const std::vector<Application>& apps,
                                     const Mapping& mapping);

/// Evaluates per-application mappings superposed onto one architecture
/// (paper §5 "Superposition"): software is reused when the same element is
/// software everywhere; hardware blocks accumulate over all applications.
[[nodiscard]] CostBreakdown evaluate_superposition(const ImplLibrary& library,
                                                   const std::vector<Application>& apps,
                                                   const std::vector<Mapping>& mappings);

}  // namespace spivar::synth
