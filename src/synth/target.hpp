// Implementation library and synthesis problem description.
//
// Synthesis (module selection + allocation + scheduling, paper §5) works on
// *elements* identified by name — a name is a reusable component identity: a
// process occurring in several applications (PA in both variants of Figure
// 2) is one element, which is exactly what enables the resource sharing the
// paper exploits. An element can be a single process or a whole cluster
// (cluster-atomic granularity).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"
#include "support/duration.hpp"

namespace spivar::synth {

using support::Duration;

/// Per-element implementation alternatives.
struct ElementImpl {
  /// Processor utilization fraction when implemented in software.
  double sw_load = 0.0;
  /// Worst-case execution time in software (one firing).
  Duration sw_wcet = Duration::zero();
  /// ASIC cost when implemented in hardware.
  double hw_cost = 0.0;
  /// Worst-case execution time in hardware.
  Duration hw_wcet = Duration::zero();
  bool can_sw = true;
  bool can_hw = true;

  /// Activation period of this element when it differs from its
  /// application's period (used by response-time analysis).
  std::optional<Duration> period;
};

/// The target technology: one shared processor plus per-element ASICs.
class ImplLibrary {
 public:
  double processor_cost = 0.0;        ///< fixed cost, paid once if any SW exists
  double processor_budget = 1.0;      ///< utilization capacity of the processor

  ImplLibrary& add(std::string name, ElementImpl impl) {
    elements_[std::move(name)] = impl;
    return *this;
  }

  [[nodiscard]] const ElementImpl& at(const std::string& name) const {
    auto it = elements_.find(name);
    if (it == elements_.end()) {
      throw support::ModelError("implementation library has no entry for '" + name + "'");
    }
    return it->second;
  }

  [[nodiscard]] bool contains(const std::string& name) const { return elements_.contains(name); }
  [[nodiscard]] std::size_t size() const noexcept { return elements_.size(); }

  /// Name-ordered view over every element (std::map order) — the iteration
  /// the fingerprint layer relies on for order-insensitive library digests.
  [[nodiscard]] const std::map<std::string, ElementImpl>& elements() const noexcept {
    return elements_;
  }

 private:
  std::map<std::string, ElementImpl> elements_;
};

/// One application / variant: the elements that are live together.
struct Application {
  std::string name;
  std::vector<std::string> elements;

  /// Optional timing: elements forming the processing chain, activation
  /// period of the input stream and end-to-end deadline. Elements not in the
  /// chain are independent tasks within the period.
  std::vector<std::string> chain;
  std::optional<Duration> period;
  std::optional<Duration> deadline;
};

/// Joint synthesis problem: all applications over a shared element universe.
struct SynthesisProblem {
  std::string name;
  std::vector<Application> apps;

  /// Union of element names over all applications, in first-seen order.
  [[nodiscard]] std::vector<std::string> element_union() const {
    std::vector<std::string> out;
    for (const Application& app : apps) {
      for (const std::string& e : app.elements) {
        bool seen = false;
        for (const std::string& have : out) {
          if (have == e) seen = true;
        }
        if (!seen) out.push_back(e);
      }
    }
    return out;
  }
};

}  // namespace spivar::synth
