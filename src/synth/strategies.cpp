#include "synth/strategies.hpp"

#include <algorithm>
#include <numeric>

#include "support/diagnostics.hpp"

namespace spivar::synth {

namespace {

std::vector<std::size_t> effective_order(const std::vector<Application>& apps,
                                         const std::vector<std::size_t>& order) {
  if (order.empty()) {
    std::vector<std::size_t> identity(apps.size());
    std::iota(identity.begin(), identity.end(), 0);
    return identity;
  }
  if (order.size() != apps.size()) {
    throw support::ModelError("strategy order must permute all applications");
  }
  return order;
}

std::string order_string(const std::vector<Application>& apps,
                         const std::vector<std::size_t>& order) {
  std::string out;
  for (std::size_t i : order) {
    if (!out.empty()) out += ",";
    out += apps[i].name;
  }
  return out;
}

/// Appends the elements of `source` that `target` does not contain yet,
/// preserving first-seen order (serialization keeps chains stable).
void append_unique(std::vector<std::string>& target, const std::vector<std::string>& source) {
  for (const std::string& e : source) {
    if (std::find(target.begin(), target.end(), e) == target.end()) target.push_back(e);
  }
}

}  // namespace

std::optional<StrategyKind> parse_strategy(std::string_view name) {
  for (StrategyKind kind : kAllStrategies) {
    if (name == to_string(kind)) return kind;
  }
  // Common aliases so CLI users don't need the exact canonical spelling.
  if (name == "variants" || name == "variant-aware" || name == "joint") {
    return StrategyKind::kWithVariants;
  }
  return std::nullopt;
}

std::optional<RankObjective> parse_objective(std::string_view name) {
  for (RankObjective objective : kAllObjectives) {
    if (name == to_string(objective)) return objective;
  }
  if (name == "util") return RankObjective::kWorstUtilization;
  if (name == "decisions") return RankObjective::kDesignTime;
  return std::nullopt;
}

bool better_outcome(const StrategyOutcome& a, const StrategyOutcome& b,
                    const std::vector<RankObjective>& objectives) {
  if (a.feasible != b.feasible) return a.feasible;
  const auto value = [](const StrategyOutcome& outcome, RankObjective objective) {
    switch (objective) {
      case RankObjective::kTotalCost: return outcome.cost.total;
      case RankObjective::kWorstUtilization: return outcome.cost.worst_utilization;
      case RankObjective::kDesignTime: return static_cast<double>(outcome.decisions);
    }
    return outcome.cost.total;
  };
  static const std::vector<RankObjective> kDefault{RankObjective::kTotalCost};
  for (RankObjective objective : objectives.empty() ? kDefault : objectives) {
    const double va = value(a, objective);
    const double vb = value(b, objective);
    if (va != vb) return va < vb;
  }
  return false;
}

StrategyOutcome synthesize_independent(const ImplLibrary& library, const Application& app,
                                       const ExploreOptions& options) {
  const ExploreResult r = explore(library, {app}, options);
  StrategyOutcome out;
  out.strategy = "independent";
  out.cost = r.cost;
  out.mapping = r.mapping;
  out.decisions = r.decisions;
  out.evaluations = r.evaluations;
  out.feasible = r.found_feasible;
  out.detail = r.engine + " on '" + app.name + "'";
  return out;
}

StrategyOutcome synthesize_superposition(const ImplLibrary& library,
                                         const std::vector<Application>& apps,
                                         const ExploreOptions& options) {
  StrategyOutcome out;
  out.strategy = "superposition";
  out.feasible = true;

  for (const Application& app : apps) {
    const StrategyOutcome ind = synthesize_independent(library, app, options);
    out.per_app.push_back(ind.mapping);
    out.decisions += ind.decisions;
    out.evaluations += ind.evaluations;
    out.feasible = out.feasible && ind.feasible;
  }

  // Merge pass over the union of elements: one decision per element looked
  // at while assembling the superposed architecture.
  SynthesisProblem tmp;
  tmp.apps = apps;
  out.decisions += static_cast<std::int64_t>(tmp.element_union().size());

  out.cost = evaluate_superposition(library, apps, out.per_app);
  out.feasible = out.feasible && out.cost.feasible;
  out.detail = "union of independent implementations";
  return out;
}

StrategyOutcome synthesize_with_variants(const ImplLibrary& library,
                                         const std::vector<Application>& apps,
                                         const ExploreOptions& options) {
  const ExploreResult r = explore(library, apps, options);
  StrategyOutcome out;
  out.strategy = "with-variants";
  out.cost = r.cost;
  out.mapping = r.mapping;
  out.decisions = r.decisions;
  out.evaluations = r.evaluations;
  out.feasible = r.found_feasible;
  out.detail = r.engine + " joint over " + std::to_string(apps.size()) + " variants";
  return out;
}

StrategyOutcome synthesize_serialized(const ImplLibrary& library,
                                      const std::vector<Application>& apps,
                                      const std::vector<std::size_t>& order,
                                      const ExploreOptions& options) {
  const auto seq = effective_order(apps, order);

  // All variants are enumerated and serialized into a single large task:
  // mutual exclusion is lost (one application holding the union of all
  // elements) and each variant's deadline becomes a prefix deadline of the
  // serialized chain.
  Application united;
  united.name = "serialized";
  for (std::size_t i : seq) {
    append_unique(united.elements, apps[i].elements);
    append_unique(united.chain, apps[i].chain);
  }

  std::vector<Application> transformed{united};
  Application prefix;
  prefix.name = "serialized-prefix";
  for (std::size_t i : seq) {
    append_unique(prefix.elements, apps[i].elements);
    append_unique(prefix.chain, apps[i].chain);
    if (apps[i].deadline) {
      Application checkpoint = prefix;
      checkpoint.name = "prefix-" + apps[i].name;
      checkpoint.deadline = apps[i].deadline;
      transformed.push_back(std::move(checkpoint));
    }
  }

  const ExploreResult r = explore(library, transformed, options);
  StrategyOutcome out;
  out.strategy = "serialized";
  out.cost = r.cost;
  out.mapping = r.mapping;
  out.decisions = r.decisions;
  out.evaluations = r.evaluations;
  out.feasible = r.found_feasible;
  out.detail = "order " + order_string(apps, seq);
  return out;
}

StrategyOutcome synthesize_incremental(const ImplLibrary& library,
                                       const std::vector<Application>& apps,
                                       const std::vector<std::size_t>& order,
                                       const ExploreOptions& options) {
  const auto seq = effective_order(apps, order);

  StrategyOutcome out;
  out.strategy = "incremental";
  out.feasible = true;

  Mapping decided;
  std::vector<Application> considered;
  for (std::size_t i : seq) {
    considered.push_back(apps[i]);
    ExploreResult r = explore_with_fixed(library, considered, decided, options);
    out.decisions += r.decisions;
    out.evaluations += r.evaluations;
    if (!r.found_feasible) {
      // Inherited decisions block the new variant: re-open everything for
      // this and all previous variants (counted as extra design effort).
      r = explore(library, considered, options);
      out.decisions += r.decisions;
      out.evaluations += r.evaluations;
      out.detail += "[re-design at '" + apps[i].name + "'] ";
    }
    out.feasible = out.feasible && r.found_feasible;
    decided = r.mapping;
  }

  out.mapping = decided;
  out.cost = evaluate(library, apps, decided);
  out.feasible = out.feasible && out.cost.feasible;
  out.detail += "order " + order_string(apps, seq);
  return out;
}

StrategyOutcome run_strategy(StrategyKind kind, const ImplLibrary& library,
                             const std::vector<Application>& apps,
                             const std::vector<std::size_t>& order,
                             const ExploreOptions& options) {
  switch (kind) {
    case StrategyKind::kIndependent:
      if (apps.size() != 1) {
        throw support::ModelError("independent synthesis takes exactly one application; "
                                  "slice the problem per application");
      }
      return synthesize_independent(library, apps.front(), options);
    case StrategyKind::kSuperposition: return synthesize_superposition(library, apps, options);
    case StrategyKind::kWithVariants: return synthesize_with_variants(library, apps, options);
    case StrategyKind::kSerialized: return synthesize_serialized(library, apps, order, options);
    case StrategyKind::kIncremental: return synthesize_incremental(library, apps, order, options);
  }
  throw support::ModelError("unknown strategy kind");
}

std::vector<std::vector<std::size_t>> application_orders(std::size_t count, std::size_t limit) {
  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::vector<std::size_t>> orders{order};
  while (orders.size() < limit && std::next_permutation(order.begin(), order.end())) {
    orders.push_back(order);
  }
  return orders;
}

}  // namespace spivar::synth
