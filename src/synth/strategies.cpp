#include "synth/strategies.hpp"

#include <algorithm>
#include <numeric>
#include <set>

#include "support/diagnostics.hpp"

namespace spivar::synth {

namespace {

std::vector<std::size_t> effective_order(const std::vector<Application>& apps,
                                         const std::vector<std::size_t>& order) {
  if (order.empty()) {
    std::vector<std::size_t> identity(apps.size());
    std::iota(identity.begin(), identity.end(), 0);
    return identity;
  }
  if (order.size() != apps.size()) {
    throw support::ModelError("strategy order must permute all applications");
  }
  return order;
}

std::string order_string(const std::vector<Application>& apps,
                         const std::vector<std::size_t>& order) {
  std::string out;
  for (std::size_t i : order) {
    if (!out.empty()) out += ",";
    out += apps[i].name;
  }
  return out;
}

}  // namespace

StrategyOutcome synthesize_independent(const ImplLibrary& library, const Application& app,
                                       const ExploreOptions& options) {
  const ExploreResult r = explore(library, {app}, options);
  StrategyOutcome out;
  out.strategy = "independent";
  out.cost = r.cost;
  out.mapping = r.mapping;
  out.decisions = r.decisions;
  out.feasible = r.found_feasible;
  out.detail = r.engine + " on '" + app.name + "'";
  return out;
}

StrategyOutcome synthesize_superposition(const ImplLibrary& library,
                                         const std::vector<Application>& apps,
                                         const ExploreOptions& options) {
  StrategyOutcome out;
  out.strategy = "superposition";
  out.feasible = true;

  for (const Application& app : apps) {
    const StrategyOutcome ind = synthesize_independent(library, app, options);
    out.per_app.push_back(ind.mapping);
    out.decisions += ind.decisions;
    out.feasible = out.feasible && ind.feasible;
  }

  // Merge pass over the union of elements: one decision per element looked
  // at while assembling the superposed architecture.
  SynthesisProblem tmp;
  tmp.apps = apps;
  out.decisions += static_cast<std::int64_t>(tmp.element_union().size());

  out.cost = evaluate_superposition(library, apps, out.per_app);
  out.feasible = out.feasible && out.cost.feasible;
  out.detail = "union of independent implementations";
  return out;
}

StrategyOutcome synthesize_with_variants(const ImplLibrary& library,
                                         const std::vector<Application>& apps,
                                         const ExploreOptions& options) {
  const ExploreResult r = explore(library, apps, options);
  StrategyOutcome out;
  out.strategy = "with-variants";
  out.cost = r.cost;
  out.mapping = r.mapping;
  out.decisions = r.decisions;
  out.feasible = r.found_feasible;
  out.detail = r.engine + " joint over " + std::to_string(apps.size()) + " variants";
  return out;
}

StrategyOutcome synthesize_serialized(const ImplLibrary& library,
                                      const std::vector<Application>& apps,
                                      const std::vector<std::size_t>& order,
                                      const ExploreOptions& options) {
  const auto seq = effective_order(apps, order);

  // All variants are enumerated and serialized into a single large task:
  // mutual exclusion is lost (one application holding the union of all
  // elements) and each variant's deadline becomes a prefix deadline of the
  // serialized chain.
  Application united;
  united.name = "serialized";
  std::set<std::string> seen;
  for (std::size_t i : seq) {
    for (const std::string& e : apps[i].elements) {
      if (seen.insert(e).second) united.elements.push_back(e);
    }
    for (const std::string& e : apps[i].chain) {
      if (std::find(united.chain.begin(), united.chain.end(), e) == united.chain.end()) {
        united.chain.push_back(e);
      }
    }
  }

  std::vector<Application> transformed{united};
  std::set<std::string> prefix_seen;
  Application prefix;
  prefix.name = "serialized-prefix";
  for (std::size_t i : seq) {
    for (const std::string& e : apps[i].elements) {
      if (prefix_seen.insert(e).second) prefix.elements.push_back(e);
    }
    for (const std::string& e : apps[i].chain) {
      if (std::find(prefix.chain.begin(), prefix.chain.end(), e) == prefix.chain.end()) {
        prefix.chain.push_back(e);
      }
    }
    if (apps[i].deadline) {
      Application checkpoint = prefix;
      checkpoint.name = "prefix-" + apps[i].name;
      checkpoint.deadline = apps[i].deadline;
      transformed.push_back(std::move(checkpoint));
    }
  }

  const ExploreResult r = explore(library, transformed, options);
  StrategyOutcome out;
  out.strategy = "serialized";
  out.cost = r.cost;
  out.mapping = r.mapping;
  out.decisions = r.decisions;
  out.feasible = r.found_feasible;
  out.detail = "order " + order_string(apps, seq);
  return out;
}

StrategyOutcome synthesize_incremental(const ImplLibrary& library,
                                       const std::vector<Application>& apps,
                                       const std::vector<std::size_t>& order,
                                       const ExploreOptions& options) {
  const auto seq = effective_order(apps, order);

  StrategyOutcome out;
  out.strategy = "incremental";
  out.feasible = true;

  Mapping decided;
  std::vector<Application> considered;
  for (std::size_t i : seq) {
    considered.push_back(apps[i]);
    ExploreResult r = explore_with_fixed(library, considered, decided, options);
    out.decisions += r.decisions;
    if (!r.found_feasible) {
      // Inherited decisions block the new variant: re-open everything for
      // this and all previous variants (counted as extra design effort).
      r = explore(library, considered, options);
      out.decisions += r.decisions;
      out.detail += "[re-design at '" + apps[i].name + "'] ";
    }
    out.feasible = out.feasible && r.found_feasible;
    decided = r.mapping;
  }

  out.mapping = decided;
  out.cost = evaluate(library, apps, decided);
  out.feasible = out.feasible && out.cost.feasible;
  out.detail += "order " + order_string(apps, seq);
  return out;
}

}  // namespace spivar::synth
