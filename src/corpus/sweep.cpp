#include "corpus/sweep.hpp"

namespace spivar::corpus {

namespace {

/// An empty axis collapses to the default value of the knob.
template <typename T>
std::vector<T> axis(const std::vector<T>& values, T fallback) {
  if (values.empty()) return {fallback};
  return values;
}

}  // namespace

std::vector<CorpusEntry> expand(const SweepGrammar& grammar) {
  const models::SyntheticSpec defaults{};
  const auto ps = axis(grammar.shared_processes, defaults.shared_processes);
  const auto is = axis(grammar.interfaces, defaults.interfaces);
  const auto vs = axis(grammar.variants, defaults.variants);
  const auto cs = axis(grammar.cluster_size, defaults.cluster_size);
  const auto ms = axis(grammar.modes, defaults.modes);
  const auto ds = axis(grammar.predicate_depth, defaults.predicate_depth);
  const auto profiles = axis(grammar.profiles, LibraryProfile::kBalanced);
  const auto seeds = axis(grammar.seeds, defaults.seed);

  std::vector<CorpusEntry> entries;
  entries.reserve(ps.size() * is.size() * vs.size() * cs.size() * ms.size() * ds.size() *
                  profiles.size() * seeds.size());
  for (std::size_t p : ps)
    for (std::size_t i : is)
      for (std::size_t v : vs)
        for (std::size_t c : cs)
          for (std::size_t m : ms)
            for (std::size_t d : ds)
              for (LibraryProfile profile : profiles)
                for (std::uint64_t seed : seeds) {
                  CorpusSpec spec;
                  spec.spec.shared_processes = p;
                  spec.spec.interfaces = i;
                  spec.spec.variants = v;
                  spec.spec.cluster_size = c;
                  spec.spec.modes = m;
                  spec.spec.predicate_depth = d;
                  spec.spec.seed = seed;
                  spec.profile = profile;
                  entries.push_back({format_name(spec), spec});
                }
  return entries;
}

std::vector<CorpusEntry> default_corpus() {
  std::vector<CorpusEntry> corpus;
  auto append = [&corpus](const SweepGrammar& grammar) {
    auto part = expand(grammar);
    corpus.insert(corpus.end(), part.begin(), part.end());
  };

  // Scale family: structural growth along every production-variant axis.
  append({.shared_processes = {2, 4, 8},
          .interfaces = {1, 2},
          .variants = {2, 3, 4},
          .cluster_size = {1, 3}});
  // Mode/predicate family: behavioral richness at a fixed small structure.
  append({.cluster_size = {2}, .modes = {2, 3}, .predicate_depth = {0, 1, 2}});
  // Profile family: identical structures under the three cost regimes.
  append({.interfaces = {2},
          .cluster_size = {2},
          .profiles = {LibraryProfile::kBalanced, LibraryProfile::kTight,
                       LibraryProfile::kRelaxed},
          .seeds = {42, 43, 44}});
  // Seed family: library/latency variation at one structure.
  append({.variants = {3}, .seeds = {1, 2, 3, 4, 5, 6, 7, 8}});
  return corpus;
}

std::vector<CorpusEntry> smoke_corpus() {
  std::vector<CorpusEntry> corpus;
  auto append = [&corpus](const SweepGrammar& grammar) {
    auto part = expand(grammar);
    corpus.insert(corpus.end(), part.begin(), part.end());
  };
  append({.shared_processes = {2}, .cluster_size = {1}, .seeds = {42, 43}});
  append({.shared_processes = {2}, .interfaces = {2}, .cluster_size = {1}});
  append({.shared_processes = {3}, .cluster_size = {2}, .modes = {2}});
  append({.shared_processes = {2}, .cluster_size = {1}, .predicate_depth = {1}});
  append({.shared_processes = {2},
          .variants = {3},
          .cluster_size = {1},
          .profiles = {LibraryProfile::kTight}});
  return corpus;
}

}  // namespace spivar::corpus
