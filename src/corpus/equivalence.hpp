// Cross-strategy equivalence checking (the corpus as a correctness fuzzer).
//
// Two independent gates per corpus model:
//
//  * Behavioral: for every complete variant binding, the flattened product
//    (paper §4 — clusters spliced in, interfaces removed) must simulate
//    identically to the variant-annotated model pinned to the same choice
//    (interface-aware simulation with the cluster fixed). The two runs take
//    entirely different simulator code paths, so agreement exercises the
//    paper's behavior-preservation claim; inactive-cluster processes must
//    stay silent and are projected out before comparison.
//
//  * Strategy: every synthesis outcome must cover exactly the elements of
//    its applications, and — where the strategy's cost is re-derivable from
//    its published mapping (all but the serialized baseline, whose cost is
//    defined over a transformed task chain) — a fresh cost evaluation must
//    reproduce the reported total and feasibility.
//
// Failures come back as Mismatch records carrying a reproducer command line
// for `spivar_experiments check`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "synth/from_model.hpp"
#include "synth/strategies.hpp"
#include "variant/model.hpp"

namespace spivar::corpus {

/// Name-keyed behavioral fingerprint of one run — comparable across
/// structurally different graphs (flattened vs pinned).
struct BehaviorSignature {
  std::map<std::string, std::int64_t> process_firings;
  /// produced/consumed token counts per channel.
  std::map<std::string, std::pair<std::int64_t, std::int64_t>> channel_io;
  support::TimePoint end_time{};
  bool quiescent = false;

  friend bool operator==(const BehaviorSignature&, const BehaviorSignature&) = default;
};

[[nodiscard]] BehaviorSignature signature_of(const spi::Graph& graph,
                                             const sim::SimResult& result);

/// Empty string when equal; otherwise a one-line description of the first
/// difference (missing entity, diverging count, diverging end time).
[[nodiscard]] std::string first_difference(const BehaviorSignature& a,
                                           const BehaviorSignature& b);

/// One synthesis outcome to validate. `scope` is "system" for joint
/// strategies or the application (binding) name for independent rows.
struct StrategyResult {
  std::string strategy;
  std::string scope = "system";
  synth::StrategyOutcome outcome;
};

struct EquivalenceOptions {
  sim::SimOptions sim{};
  synth::ProblemOptions problem{.granularity = synth::ElementGranularity::kProcess};
  /// Test seam: when non-null, flattened baselines are produced from this
  /// model instead of the checked one — used to prove the checker catches
  /// injected behavioral divergence.
  const variant::VariantModel* baseline_override = nullptr;
};

struct Mismatch {
  std::string model;
  std::string binding;   ///< empty for strategy-level findings
  std::string strategy;  ///< empty for behavioral findings
  std::string detail;
  std::string reproducer;  ///< `spivar_experiments check ...` command line
};

struct EquivalenceReport {
  std::size_t bindings_checked = 0;
  std::size_t strategy_checks = 0;
  std::vector<Mismatch> mismatches;

  [[nodiscard]] bool ok() const noexcept { return mismatches.empty(); }
};

/// Runs both gates. `results` may be empty (behavioral gate only).
[[nodiscard]] EquivalenceReport check_equivalence(const std::string& model_name,
                                                  const variant::VariantModel& model,
                                                  const synth::ImplLibrary& library,
                                                  const std::vector<StrategyResult>& results,
                                                  const EquivalenceOptions& options = {});

}  // namespace spivar::corpus
