#include "corpus/equivalence.hpp"

#include <cmath>
#include <optional>
#include <set>

#include "synth/cost.hpp"
#include "variant/flatten.hpp"

namespace spivar::corpus {

namespace {

using synth::Application;

std::string render_time(support::TimePoint t) {
  return std::to_string(t.count()) + "us";
}

/// Pins every interface of a copy of `model` to the binding's cluster and
/// strips the selection function, so interface-aware simulation keeps the
/// choice fixed without paying any reconfiguration.
variant::VariantModel pin_binding(const variant::VariantModel& model,
                                  const variant::FlattenChoice& choice) {
  variant::VariantModel pinned = model;
  for (const auto& [iface, cluster] : choice) {
    variant::Interface& target = pinned.interface(iface);
    target.selection.clear();
    target.initial = cluster;
  }
  return pinned;
}

bool close_enough(double a, double b) { return std::abs(a - b) <= 1e-9 * (1.0 + std::abs(a)); }

std::string join(const std::set<std::string>& names, std::size_t limit = 5) {
  std::string out;
  std::size_t shown = 0;
  for (const std::string& name : names) {
    if (shown == limit) {
      out += ", ...";
      break;
    }
    if (!out.empty()) out += ", ";
    out += name;
    ++shown;
  }
  return out;
}

}  // namespace

BehaviorSignature signature_of(const spi::Graph& graph, const sim::SimResult& result) {
  BehaviorSignature sig;
  for (support::ProcessId pid : graph.process_ids()) {
    sig.process_firings[graph.process(pid).name] = result.process(pid).firings;
  }
  for (support::ChannelId cid : graph.channel_ids()) {
    const sim::ChannelStats& stats = result.channel(cid);
    sig.channel_io[graph.channel(cid).name] = {stats.produced, stats.consumed};
  }
  sig.end_time = result.end_time;
  sig.quiescent = result.quiescent;
  return sig;
}

std::string first_difference(const BehaviorSignature& a, const BehaviorSignature& b) {
  for (const auto& [name, firings] : a.process_firings) {
    const auto it = b.process_firings.find(name);
    if (it == b.process_firings.end()) return "process '" + name + "' missing from second run";
    if (it->second != firings) {
      return "process '" + name + "' fired " + std::to_string(firings) + " vs " +
             std::to_string(it->second);
    }
  }
  for (const auto& [name, firings] : b.process_firings) {
    if (!a.process_firings.contains(name)) {
      return "process '" + name + "' missing from first run";
    }
    (void)firings;
  }
  for (const auto& [name, io] : a.channel_io) {
    const auto it = b.channel_io.find(name);
    if (it == b.channel_io.end()) return "channel '" + name + "' missing from second run";
    if (it->second != io) {
      return "channel '" + name + "' moved " + std::to_string(io.first) + "/" +
             std::to_string(io.second) + " vs " + std::to_string(it->second.first) + "/" +
             std::to_string(it->second.second) + " tokens (produced/consumed)";
    }
  }
  for (const auto& [name, io] : b.channel_io) {
    if (!a.channel_io.contains(name)) return "channel '" + name + "' missing from first run";
    (void)io;
  }
  if (a.end_time != b.end_time) {
    return "end time " + render_time(a.end_time) + " vs " + render_time(b.end_time);
  }
  if (a.quiescent != b.quiescent) {
    return std::string{"quiescence "} + (a.quiescent ? "true" : "false") + " vs " +
           (b.quiescent ? "true" : "false");
  }
  return "";
}

namespace {

void check_behavior(const std::string& model_name, const variant::VariantModel& model,
                    const EquivalenceOptions& options, EquivalenceReport& report) {
  const variant::VariantModel& baseline =
      options.baseline_override != nullptr ? *options.baseline_override : model;
  for (const variant::FlattenChoice& choice : variant::enumerate_bindings(model)) {
    const std::string binding = variant::binding_name(model, choice);
    const variant::VariantModel flat = variant::flatten(baseline, choice);
    const sim::SimResult flat_result = sim::Simulator{flat.graph(), options.sim}.run();
    BehaviorSignature flat_sig = signature_of(flat.graph(), flat_result);

    const variant::VariantModel pinned = pin_binding(model, choice);
    const sim::SimResult pinned_result = sim::Simulator{pinned, options.sim}.run();
    BehaviorSignature pinned_sig = signature_of(pinned.graph(), pinned_result);

    ++report.bindings_checked;
    const std::string reproducer =
        "spivar_experiments check " + model_name + " --binding '" + binding + "'";

    // Entities absent from the product belong to unchosen clusters: they
    // must have stayed completely silent, then they are projected out.
    bool silent = true;
    for (auto it = pinned_sig.process_firings.begin(); it != pinned_sig.process_firings.end();) {
      if (flat_sig.process_firings.contains(it->first)) {
        ++it;
        continue;
      }
      if (it->second != 0) {
        report.mismatches.push_back({model_name, binding, "",
                                     "inactive process '" + it->first + "' fired " +
                                         std::to_string(it->second) + " times",
                                     reproducer});
        silent = false;
      }
      it = pinned_sig.process_firings.erase(it);
    }
    for (auto it = pinned_sig.channel_io.begin(); it != pinned_sig.channel_io.end();) {
      if (flat_sig.channel_io.contains(it->first)) {
        ++it;
        continue;
      }
      if (it->second != std::pair<std::int64_t, std::int64_t>{0, 0}) {
        report.mismatches.push_back({model_name, binding, "",
                                     "inactive channel '" + it->first + "' moved tokens",
                                     reproducer});
        silent = false;
      }
      it = pinned_sig.channel_io.erase(it);
    }
    if (!silent) continue;

    if (const std::string diff = first_difference(flat_sig, pinned_sig); !diff.empty()) {
      report.mismatches.push_back(
          {model_name, binding, "", "flattened vs pinned simulation: " + diff, reproducer});
    }
  }
}

const Application* find_app(const std::vector<Application>& apps, const std::string& name) {
  for (const Application& app : apps) {
    if (app.name == name) return &app;
  }
  return nullptr;
}

/// Mapping must assign exactly the given element set.
bool check_coverage(const synth::Mapping& mapping, const std::set<std::string>& elements,
                    std::string& detail) {
  std::set<std::string> missing;
  std::set<std::string> extra;
  for (const std::string& element : elements) {
    if (!mapping.contains(element)) missing.insert(element);
  }
  for (const auto& [element, target] : mapping.assignments()) {
    if (!elements.contains(element)) extra.insert(element);
    (void)target;
  }
  if (!missing.empty()) {
    detail = "mapping misses element(s): " + join(missing);
    return false;
  }
  if (!extra.empty()) {
    detail = "mapping assigns foreign element(s): " + join(extra);
    return false;
  }
  return true;
}

void check_strategies(const std::string& model_name, const variant::VariantModel& model,
                      const synth::ImplLibrary& library,
                      const std::vector<StrategyResult>& results,
                      const EquivalenceOptions& options, EquivalenceReport& report) {
  if (results.empty()) return;
  const synth::SynthesisProblem problem = synth::problem_from_model(model, options.problem);

  for (const StrategyResult& result : results) {
    ++report.strategy_checks;
    const std::string reproducer =
        "spivar_experiments check " + model_name + " --strategy " + result.strategy;
    auto mismatch = [&](std::string detail) {
      report.mismatches.push_back(
          {model_name, "", result.strategy, std::move(detail), reproducer});
    };

    // Which applications and cost re-derivation apply to this row.
    std::vector<Application> scope_apps;
    if (result.scope != "system") {
      const Application* app = find_app(problem.apps, result.scope);
      if (app == nullptr) {
        mismatch("outcome scoped to unknown application '" + result.scope + "'");
        continue;
      }
      scope_apps = {*app};
    } else {
      scope_apps = problem.apps;
    }

    std::optional<synth::CostBreakdown> rechecked;
    if (result.strategy == "superposition") {
      if (result.outcome.per_app.size() != scope_apps.size()) {
        mismatch("superposition carries " + std::to_string(result.outcome.per_app.size()) +
                 " per-app mappings for " + std::to_string(scope_apps.size()) + " applications");
        continue;
      }
      bool covered = true;
      for (std::size_t i = 0; i < scope_apps.size(); ++i) {
        std::set<std::string> elements{scope_apps[i].elements.begin(),
                                       scope_apps[i].elements.end()};
        std::string detail;
        if (!check_coverage(result.outcome.per_app[i], elements, detail)) {
          mismatch("application '" + scope_apps[i].name + "': " + detail);
          covered = false;
        }
      }
      if (!covered) continue;
      rechecked = synth::evaluate_superposition(library, scope_apps, result.outcome.per_app);
    } else {
      std::set<std::string> elements;
      for (const Application& app : scope_apps) {
        elements.insert(app.elements.begin(), app.elements.end());
      }
      std::string detail;
      if (!check_coverage(result.outcome.mapping, elements, detail)) {
        mismatch(detail);
        continue;
      }
      // The serialized baseline prices a transformed task chain (prefix
      // deadlines over the united application), so its cost is not
      // re-derivable from the published mapping alone — coverage only.
      if (result.strategy != "serialized") {
        rechecked = synth::evaluate(library, scope_apps, result.outcome.mapping);
      }
    }

    if (rechecked) {
      if (rechecked->feasible != result.outcome.cost.feasible) {
        mismatch(std::string{"re-evaluation says "} +
                 (rechecked->feasible ? "feasible" : "infeasible") + ", outcome says " +
                 (result.outcome.cost.feasible ? "feasible" : "infeasible"));
      } else if (!close_enough(rechecked->total, result.outcome.cost.total)) {
        mismatch("re-evaluated cost " + std::to_string(rechecked->total) +
                 " != reported " + std::to_string(result.outcome.cost.total));
      }
    }
  }
}

}  // namespace

EquivalenceReport check_equivalence(const std::string& model_name,
                                    const variant::VariantModel& model,
                                    const synth::ImplLibrary& library,
                                    const std::vector<StrategyResult>& results,
                                    const EquivalenceOptions& options) {
  EquivalenceReport report;
  check_behavior(model_name, model, options, report);
  check_strategies(model_name, model, library, results, options, report);
  return report;
}

}  // namespace spivar::corpus
