#include "corpus/spec.hpp"

#include <charconv>
#include <cstdint>

#include "support/rng.hpp"

namespace spivar::corpus {

std::string_view profile_name(LibraryProfile profile) {
  switch (profile) {
    case LibraryProfile::kBalanced:
      return "balanced";
    case LibraryProfile::kTight:
      return "tight";
    case LibraryProfile::kRelaxed:
      return "relaxed";
  }
  return "balanced";
}

std::optional<LibraryProfile> profile_from_letter(char letter) {
  switch (letter) {
    case 'b':
      return LibraryProfile::kBalanced;
    case 't':
      return LibraryProfile::kTight;
    case 'r':
      return LibraryProfile::kRelaxed;
    default:
      return std::nullopt;
  }
}

bool is_corpus_name(std::string_view name) {
  return name.substr(0, kCorpusPrefix.size()) == kCorpusPrefix;
}

std::string format_name(const CorpusSpec& spec) {
  const models::SyntheticSpec defaults{};
  const models::SyntheticSpec& s = spec.spec;
  std::string knobs;
  auto knob = [&knobs](char letter, std::size_t value, std::size_t default_value) {
    if (value != default_value) knobs += letter + std::to_string(value);
  };
  knob('p', s.shared_processes, defaults.shared_processes);
  knob('i', s.interfaces, defaults.interfaces);
  knob('v', s.variants, defaults.variants);
  knob('c', s.cluster_size, defaults.cluster_size);
  knob('m', s.modes, defaults.modes);
  knob('d', s.predicate_depth, defaults.predicate_depth);
  if (spec.profile != LibraryProfile::kBalanced) {
    knobs += static_cast<char>(spec.profile);
  }
  std::string name{kCorpusPrefix};
  name += knobs;
  if (!knobs.empty()) name += '-';
  name += 's' + std::to_string(s.seed);
  return name;
}

namespace {

bool fail(std::string* error, std::string message) {
  if (error != nullptr) {
    *error = std::move(message) +
             " (grammar: sweep/[p<n>][i<n>][v<n>][c<n>][m<n>][d<n>][b|t|r][-s<seed>])";
  }
  return false;
}

/// Consumes the digits following a knob letter; false when none follow.
bool read_number(std::string_view text, std::size_t& pos, std::uint64_t& out) {
  const std::size_t start = pos;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
  if (pos == start) return false;
  const auto [end, ec] = std::from_chars(text.data() + start, text.data() + pos, out);
  return ec == std::errc{} && end == text.data() + pos;
}

}  // namespace

std::optional<CorpusSpec> parse_name(std::string_view name, std::string* error) {
  if (!is_corpus_name(name)) {
    fail(error, std::string{"'"} + std::string{name} + "' is not a corpus name: missing 'sweep/' prefix");
    return std::nullopt;
  }
  const std::string_view body = name.substr(kCorpusPrefix.size());
  CorpusSpec spec;
  bool seen[6] = {};
  bool seen_profile = false;
  bool seen_seed = false;
  std::size_t pos = 0;
  while (pos < body.size()) {
    const char letter = body[pos];
    if (letter == '-') {
      ++pos;
      continue;
    }
    ++pos;
    std::size_t* knob = nullptr;
    std::size_t knob_index = 0;
    switch (letter) {
      case 'p':
        knob = &spec.spec.shared_processes;
        knob_index = 0;
        break;
      case 'i':
        knob = &spec.spec.interfaces;
        knob_index = 1;
        break;
      case 'v':
        knob = &spec.spec.variants;
        knob_index = 2;
        break;
      case 'c':
        knob = &spec.spec.cluster_size;
        knob_index = 3;
        break;
      case 'm':
        knob = &spec.spec.modes;
        knob_index = 4;
        break;
      case 'd':
        knob = &spec.spec.predicate_depth;
        knob_index = 5;
        break;
      default:
        break;
    }
    if (knob != nullptr) {
      std::uint64_t value = 0;
      if (seen[knob_index]) {
        fail(error, std::string{"duplicate knob '"} + std::string(1, letter) + "' in '" + std::string{name} +
                        "'");
        return std::nullopt;
      }
      if (!read_number(body, pos, value)) {
        fail(error, std::string{"knob '"} + std::string(1, letter) + "' needs a number in '" +
                        std::string{name} + "'");
        return std::nullopt;
      }
      seen[knob_index] = true;
      *knob = static_cast<std::size_t>(value);
      continue;
    }
    if (letter == 's') {
      std::uint64_t value = 0;
      if (seen_seed || !read_number(body, pos, value)) {
        fail(error, std::string{"bad seed in '"} + std::string{name} + "'");
        return std::nullopt;
      }
      seen_seed = true;
      spec.spec.seed = value;
      continue;
    }
    if (const auto profile = profile_from_letter(letter)) {
      if (seen_profile) {
        fail(error, std::string{"duplicate library profile in '"} + std::string{name} + "'");
        return std::nullopt;
      }
      seen_profile = true;
      spec.profile = *profile;
      continue;
    }
    fail(error, std::string{"unknown knob '"} + std::string(1, letter) + "' in '" + std::string{name} + "'");
    return std::nullopt;
  }
  if (!seen_seed) {
    fail(error, std::string{"'"} + std::string{name} + "' is missing the mandatory seed suffix");
    return std::nullopt;
  }
  if (spec.spec.variants < 1 || spec.spec.cluster_size < 1 || spec.spec.modes < 1) {
    fail(error, std::string{"'"} + std::string{name} + "' needs variants/cluster_size/modes >= 1");
    return std::nullopt;
  }
  return spec;
}

models::SyntheticLibraryOptions library_options(const CorpusSpec& spec) {
  models::SyntheticLibraryOptions options;
  // Decouple the library RNG stream from the model's structural stream while
  // staying a pure function of the corpus point.
  options.seed = support::SplitMix64{spec.spec.seed}.next();
  switch (spec.profile) {
    case LibraryProfile::kBalanced:
      break;
    case LibraryProfile::kTight:
      options.processor_cost = 25.0;
      options.target_single_variant_load = 1.7;
      break;
    case LibraryProfile::kRelaxed:
      options.processor_cost = 10.0;
      options.target_single_variant_load = 0.9;
      break;
  }
  return options;
}

}  // namespace spivar::corpus
