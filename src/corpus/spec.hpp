// Corpus specs: named points in the synthetic-model design space.
//
// A CorpusSpec pairs a models::SyntheticSpec with a library cost profile and
// owns a stable, compact name grammar under the `sweep/` prefix:
//
//   sweep/i2v4c3-s42        (2 interfaces, 4 variants, clusters of 3, seed 42)
//   sweep/p8i2v3c3m2d1t-s7  (every knob spelled out, tight library profile)
//
// Knob letters, in canonical order: p = shared_processes, i = interfaces,
// v = variants, c = cluster_size, m = modes, d = predicate_depth; then an
// optional profile letter (b/t/r) and the seed as `s<seed>`. format_name
// omits default-valued knobs, so names stay short, and parse_name accepts
// any subset — parse(format(x)) == x for every spec.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "models/synthetic.hpp"

namespace spivar::corpus {

/// How make_synthetic_library is calibrated for a corpus model. Balanced is
/// the repo-wide default regime (single variant slightly overloads the
/// processor); tight forces more repair moves, relaxed makes all-software
/// feasible so strategies can agree on the trivial mapping.
enum class LibraryProfile : char {
  kBalanced = 'b',
  kTight = 't',
  kRelaxed = 'r',
};

[[nodiscard]] std::string_view profile_name(LibraryProfile profile);
[[nodiscard]] std::optional<LibraryProfile> profile_from_letter(char letter);

struct CorpusSpec {
  models::SyntheticSpec spec{};
  LibraryProfile profile = LibraryProfile::kBalanced;

  friend bool operator==(const CorpusSpec&, const CorpusSpec&) = default;
};

inline constexpr std::string_view kCorpusPrefix = "sweep/";

/// True when `name` is in corpus namespace (starts with `sweep/`).
[[nodiscard]] bool is_corpus_name(std::string_view name);

/// Canonical compact name (always carries the seed, omits default knobs).
[[nodiscard]] std::string format_name(const CorpusSpec& spec);

/// Parses a `sweep/...` name; on failure returns nullopt and, when `error`
/// is non-null, stores a human-readable reason mentioning the grammar.
[[nodiscard]] std::optional<CorpusSpec> parse_name(std::string_view name,
                                                   std::string* error = nullptr);

/// Library generator options implied by the spec: the profile fixes the cost
/// regime and the library seed is derived from the model seed so distinct
/// corpus points get distinct (but reproducible) libraries.
[[nodiscard]] models::SyntheticLibraryOptions library_options(const CorpusSpec& spec);

}  // namespace spivar::corpus
