// Sweep grammar: cross-products over the synthetic-model knobs.
//
// A SweepGrammar lists candidate values per knob (an empty axis means "keep
// the default"); expand() walks the cross-product in canonical knob order
// and mints one named CorpusEntry per point. default_corpus() is the graded
// standing corpus used by the experiments runner (>= 50 models across scale,
// mode, predicate-depth, cost-profile and seed families); smoke_corpus() is
// the tiny slice CI can afford on every push.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/spec.hpp"

namespace spivar::corpus {

struct SweepGrammar {
  std::vector<std::size_t> shared_processes;
  std::vector<std::size_t> interfaces;
  std::vector<std::size_t> variants;
  std::vector<std::size_t> cluster_size;
  std::vector<std::size_t> modes;
  std::vector<std::size_t> predicate_depth;
  std::vector<LibraryProfile> profiles;
  std::vector<std::uint64_t> seeds;
};

struct CorpusEntry {
  std::string name;  ///< canonical `sweep/...` name (format_name of spec)
  CorpusSpec spec;
};

/// Cross-product of the grammar, outermost axis first (shared_processes,
/// interfaces, variants, cluster_size, modes, predicate_depth, profile,
/// seed). Deterministic: same grammar, same order, same names.
[[nodiscard]] std::vector<CorpusEntry> expand(const SweepGrammar& grammar);

/// The standing experiments corpus (>= 50 graded models).
[[nodiscard]] std::vector<CorpusEntry> default_corpus();

/// A few tiny models for CI smoke runs (sub-second per suite).
[[nodiscard]] std::vector<CorpusEntry> smoke_corpus();

}  // namespace spivar::corpus
