#include "sim/engine.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "support/diagnostics.hpp"

namespace spivar::sim {

namespace {

constexpr std::int64_t kUnbounded = std::numeric_limits<std::int64_t>::max() / 4;
constexpr std::size_t kConstraintSampleCap = 100'000;

/// Predicate view over the live token store.
class LiveView final : public spi::ChannelStateView {
 public:
  explicit LiveView(const std::vector<std::deque<spi::Token>>& tokens) : tokens_(tokens) {}

  [[nodiscard]] std::int64_t available(ChannelId channel) const override {
    return static_cast<std::int64_t>(tokens_[channel.index()].size());
  }

  [[nodiscard]] const spi::TagSet* first_token_tags(ChannelId channel) const override {
    const auto& q = tokens_[channel.index()];
    if (q.empty()) return nullptr;
    return &q.front().tags;
  }

 private:
  const std::vector<std::deque<spi::Token>>& tokens_;
};

}  // namespace

Simulator::Simulator(const spi::Graph& graph, SimOptions options)
    : graph_(graph), options_(options), rng_(options.seed) {
  init_state();
}

Simulator::Simulator(const variant::VariantModel& model, SimOptions options)
    : graph_(model.graph()), model_(&model), options_(options), rng_(options.seed) {
  init_state();
}

void Simulator::init_state() {
  channels_.resize(graph_.channel_count());
  processes_.resize(graph_.process_count());
  result_.processes.resize(graph_.process_count());
  result_.channels.resize(graph_.channel_count());
  result_.trace = Trace{options_.record_trace ? options_.trace_limit : 0};

  for (ChannelId cid : graph_.channel_ids()) {
    const spi::Channel& ch = graph_.channel(cid);
    for (std::int64_t i = 0; i < ch.initial_tokens; ++i) {
      channels_[cid.index()].push_back(spi::Token{ch.initial_tags});
    }
    result_.channels[cid.index()].occupancy = ch.initial_tokens;
    result_.channels[cid.index()].max_occupancy = ch.initial_tokens;
  }

  for (ProcessId pid : graph_.process_ids()) {
    processes_[pid.index()].conf_cur = graph_.process(pid).initial_configuration;
    result_.processes[pid.index()].mode_firings.resize(graph_.process(pid).modes.size(), 0);
  }

  if (model_ != nullptr) {
    interfaces_.resize(model_->interface_count());
    for (support::InterfaceId iid : model_->interface_ids()) {
      interfaces_[iid.index()].cur = model_->interface(iid).initial;
      result_.interfaces[iid];  // stats entry exists even if never touched
    }
    owner_.assign(graph_.process_count(), support::ClusterId{});
    for (support::ClusterId cid : model_->cluster_ids()) {
      for (ProcessId pid : model_->cluster(cid).processes) {
        owner_[pid.index()] = cid;
      }
    }
  }

  materialize_rules();

  latency_starts_.resize(graph_.constraints().latency.size());
  latency_ends_.resize(graph_.constraints().latency.size());
  throughput_stamps_.resize(graph_.constraints().throughput.size());
}

void Simulator::materialize_rules() {
  for (ProcessId pid : graph_.process_ids()) {
    const spi::Process& p = graph_.process(pid);
    ProcessRuntime& rt = processes_[pid.index()];
    if (!p.activation.empty()) {
      rt.rules = p.activation.rules();
      continue;
    }
    // Implicit data-driven activation: a mode is enabled as soon as every
    // input edge holds at least the lower consumption bound.
    for (std::size_t mi = 0; mi < p.modes.size(); ++mi) {
      const spi::Mode& m = p.modes[mi];
      spi::Predicate pred = spi::Predicate::always();
      bool have_term = false;
      for (const auto& [edge, rate] : m.consumption) {
        if (rate.lo() <= 0) continue;
        auto term = spi::Predicate::num_at_least(graph_.edge(edge).channel, rate.lo());
        pred = have_term ? (pred && term) : term;
        have_term = true;
      }
      rt.rules.push_back({"implicit/" + m.name, std::move(pred),
                          support::ModeId{static_cast<std::uint32_t>(mi)}});
    }
  }
}

void Simulator::push_event(TimePoint time, Event::Kind kind, std::int64_t payload) {
  events_.push(Event{time, next_sequence_++, kind, payload});
}

std::int64_t Simulator::resolve(support::Interval iv) {
  if (iv.is_point()) return iv.lo();
  switch (options_.resolution) {
    case Resolution::kLowerBound: return iv.lo();
    case Resolution::kUpperBound: return iv.hi();
    case Resolution::kRandom: return rng_.pick(iv);
  }
  return iv.lo();
}

support::Duration Simulator::resolve(support::DurationInterval iv) {
  return support::Duration{resolve(iv.raw())};
}

std::int64_t Simulator::available(ChannelId cid) const {
  return static_cast<std::int64_t>(channels_[cid.index()].size());
}

std::int64_t Simulator::space(ChannelId cid) const {
  const spi::Channel& ch = graph_.channel(cid);
  if (ch.kind == spi::ChannelKind::kRegister) return 1;  // overwrite always possible
  if (!ch.capacity) return kUnbounded;
  return *ch.capacity - available(cid);
}

void Simulator::produce_tokens(support::EdgeId edge, std::int64_t count, const spi::Mode& mode,
                               TimePoint now) {
  if (count <= 0) return;
  const ChannelId cid = graph_.edge(edge).channel;
  const spi::Channel& ch = graph_.channel(cid);
  ChannelStats& stats = result_.channels[cid.index()];
  const spi::TagSet tags = mode.tags_on(edge);

  if (ch.kind == spi::ChannelKind::kRegister) {
    // Destructive write: the last written value survives.
    channels_[cid.index()].clear();
    channels_[cid.index()].push_back(spi::Token{tags});
    stats.produced += count;
    stats.occupancy = 1;
    stats.max_occupancy = std::max<std::int64_t>(stats.max_occupancy, 1);
  } else {
    const std::int64_t delivered = std::min(count, space(cid));
    for (std::int64_t i = 0; i < delivered; ++i) {
      channels_[cid.index()].push_back(spi::Token{tags});
    }
    stats.produced += delivered;
    stats.occupancy = available(cid);
    stats.max_occupancy = std::max(stats.max_occupancy, stats.occupancy);
  }

  for (std::size_t i = 0; i < graph_.constraints().throughput.size(); ++i) {
    if (graph_.constraints().throughput[i].channel == cid &&
        throughput_stamps_[i].size() < kConstraintSampleCap) {
      for (std::int64_t k = 0; k < count; ++k) throughput_stamps_[i].push_back(now);
    }
  }
}

void Simulator::consume_tokens(support::EdgeId edge, std::int64_t count) {
  const ChannelId cid = graph_.edge(edge).channel;
  const spi::Channel& ch = graph_.channel(cid);
  if (ch.kind == spi::ChannelKind::kRegister) return;  // non-destructive read
  auto& q = channels_[cid.index()];
  ChannelStats& stats = result_.channels[cid.index()];
  const std::int64_t n = std::min<std::int64_t>(count, static_cast<std::int64_t>(q.size()));
  for (std::int64_t i = 0; i < n; ++i) q.pop_front();
  stats.consumed += n;
  stats.occupancy = available(cid);
}

bool Simulator::process_live(ProcessId pid) const {
  if (model_ == nullptr) return true;
  const support::ClusterId cid = owner_[pid.index()];
  if (!cid.valid()) return true;  // common part
  const support::InterfaceId iid = model_->cluster(cid).interface;
  const InterfaceRuntime& irt = interfaces_[iid.index()];
  return !irt.reconfiguring && irt.cur == cid;
}

bool Simulator::try_fire(ProcessId pid, TimePoint now) {
  const spi::Process& p = graph_.process(pid);
  ProcessRuntime& rt = processes_[pid.index()];
  if (rt.executing) return false;
  if (p.max_firings && rt.firings >= *p.max_firings) return false;
  if (!process_live(pid)) return false;
  if (now < rt.next_release) {
    if (rt.next_release <= options_.max_time) push_event(rt.next_release, Event::Kind::kWake, 0);
    return false;
  }

  const LiveView view{channels_};

  // First enabled rule whose mode can actually execute (inputs hold the
  // lower consumption bound; bounded outputs have room for the lower
  // production bound).
  const spi::Mode* chosen = nullptr;
  support::ModeId chosen_id;
  for (const spi::ActivationRule& rule : rt.rules) {
    if (!rule.predicate.evaluate(view)) continue;
    const spi::Mode& m = p.mode(rule.mode);
    bool ok = true;
    for (const auto& [edge, rate] : m.consumption) {
      if (available(graph_.edge(edge).channel) < rate.lo()) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (const auto& [edge, rate] : m.production) {
        if (space(graph_.edge(edge).channel) < rate.lo()) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) continue;
    chosen = &m;
    chosen_id = rule.mode;
    break;
  }
  if (chosen == nullptr) return false;

  // --- consume at start ------------------------------------------------------
  for (const auto& [edge, rate] : chosen->consumption) {
    const std::int64_t avail = available(graph_.edge(edge).channel);
    const std::int64_t n = std::clamp(resolve(rate), rate.lo(), std::min(rate.hi(), avail));
    consume_tokens(edge, n);
  }

  // --- Def. 4 reconfiguration ---------------------------------------------------
  support::Duration extra = support::Duration::zero();
  if (p.has_configurations()) {
    const support::ConfigurationId conf = p.configuration_of(chosen_id);
    if (conf.valid() && (!rt.conf_cur || *rt.conf_cur != conf)) {
      extra = p.configurations[conf.index()].t_conf;
      rt.conf_cur = conf;
      ProcessStats& ps = result_.processes[pid.index()];
      ps.reconfigurations += 1;
      ps.reconfig_time += extra;
      if (options_.record_trace) {
        result_.trace.record(now, TraceKind::kReconfigure, p.name,
                             p.configurations[conf.index()].name);
      }
    }
  }

  const support::Duration latency = resolve(chosen->latency) + extra;

  // --- schedule completion -----------------------------------------------------
  PendingCompletion completion;
  completion.firing_id = next_firing_id_++;
  completion.process = pid;
  completion.mode = chosen_id;
  for (const auto& [edge, rate] : chosen->production) {
    completion.production.emplace_back(edge, std::clamp(resolve(rate), rate.lo(), rate.hi()));
  }
  const auto index = static_cast<std::int64_t>(completions_.size());
  completions_.push_back(std::move(completion));
  completion_cancelled_.push_back(false);

  rt.executing = true;
  rt.current_firing = index;
  rt.firings += 1;
  if (p.min_period) {
    rt.next_release = now + *p.min_period;
    if (rt.next_release <= options_.max_time) push_event(rt.next_release, Event::Kind::kWake, 0);
  }

  ProcessStats& ps = result_.processes[pid.index()];
  ps.firings += 1;
  ps.busy += latency;
  ps.mode_firings[chosen_id.index()] += 1;
  result_.total_firings += 1;

  if (options_.record_trace) {
    result_.trace.record(now, TraceKind::kFire, p.name, chosen->name);
  }

  // Latency-constraint start stamps.
  for (std::size_t i = 0; i < graph_.constraints().latency.size(); ++i) {
    const auto& c = graph_.constraints().latency[i];
    if (!c.path.empty() && c.path.front() == pid &&
        latency_starts_[i].size() < kConstraintSampleCap) {
      latency_starts_[i].push_back(now);
    }
  }

  push_event(now + latency, Event::Kind::kCompletion, index);
  return true;
}

void Simulator::apply_completion(const PendingCompletion& completion, TimePoint now) {
  const spi::Process& p = graph_.process(completion.process);
  const spi::Mode& mode = p.mode(completion.mode);
  ProcessRuntime& rt = processes_[completion.process.index()];
  rt.executing = false;
  rt.current_firing = -1;

  for (const auto& [edge, count] : completion.production) {
    produce_tokens(edge, count, mode, now);
  }

  if (options_.record_trace) {
    result_.trace.record(now, TraceKind::kComplete, p.name, mode.name);
  }

  for (std::size_t i = 0; i < graph_.constraints().latency.size(); ++i) {
    const auto& c = graph_.constraints().latency[i];
    if (!c.path.empty() && c.path.back() == completion.process &&
        latency_ends_[i].size() < kConstraintSampleCap) {
      latency_ends_[i].push_back(now);
    }
  }
}

void Simulator::start_reconfiguration(support::InterfaceId iid, support::ClusterId target,
                                      TimePoint now) {
  const variant::Interface& iface = model_->interface(iid);
  InterfaceRuntime& irt = interfaces_[iid.index()];

  // Terminate the running cluster: cancel executions in flight and lose the
  // data on its internal channels (paper §4).
  if (irt.cur) {
    const variant::Cluster& old_cluster = model_->cluster(*irt.cur);
    for (ProcessId pid : old_cluster.processes) {
      ProcessRuntime& rt = processes_[pid.index()];
      if (rt.executing && rt.current_firing >= 0) {
        completion_cancelled_[static_cast<std::size_t>(rt.current_firing)] = true;
        rt.executing = false;
        rt.current_firing = -1;
        result_.processes[pid.index()].cancelled += 1;
        if (options_.record_trace) {
          result_.trace.record(now, TraceKind::kCancel, graph_.process(pid).name,
                               "cluster replaced");
        }
      }
    }
    for (ChannelId cid : old_cluster.channels) {
      auto& q = channels_[cid.index()];
      if (!q.empty()) {
        result_.channels[cid.index()].dropped += static_cast<std::int64_t>(q.size());
        result_.channels[cid.index()].occupancy = 0;
        if (options_.record_trace) {
          result_.trace.record(now, TraceKind::kDrop, graph_.channel(cid).name,
                               std::to_string(q.size()) + " token(s) lost");
        }
        q.clear();
      }
    }
  }

  const support::Duration t_conf = iface.conf_latency(target);
  irt.reconfiguring = true;
  irt.pending = target;

  InterfaceStats& stats = result_.interfaces[iid];
  stats.reconfigurations += 1;
  stats.reconfig_time += t_conf;
  if (options_.record_trace) {
    result_.trace.record(now, TraceKind::kSelect, iface.name, model_->cluster(target).name);
  }

  push_event(now + t_conf, Event::Kind::kReconfigDone, static_cast<std::int64_t>(iid.value()));
}

void Simulator::finish_reconfiguration(support::InterfaceId iid, TimePoint now) {
  InterfaceRuntime& irt = interfaces_[iid.index()];
  irt.cur = irt.pending;
  irt.pending.reset();
  irt.reconfiguring = false;
  if (options_.record_trace) {
    result_.trace.record(now, TraceKind::kReconfigure, model_->interface(iid).name,
                         irt.cur ? model_->cluster(*irt.cur).name : "<none>");
  }
}

int Simulator::sweep(TimePoint now) {
  int fired = 0;

  // Interface selection (Def. 3) before process activation.
  if (model_ != nullptr) {
    const LiveView view{channels_};
    for (support::InterfaceId iid : model_->interface_ids()) {
      InterfaceRuntime& irt = interfaces_[iid.index()];
      if (irt.reconfiguring) continue;
      const variant::Interface& iface = model_->interface(iid);
      for (const variant::SelectionRule& rule : iface.selection) {
        if (!rule.predicate.evaluate(view)) continue;
        // The rule fired: dynamic request queues consume the request token.
        if (iface.consume_selection_token) {
          for (ChannelId rc : rule.predicate.referenced_channels()) {
            if (graph_.channel(rc).kind == spi::ChannelKind::kQueue && available(rc) > 0) {
              auto& q = channels_[rc.index()];
              q.pop_front();
              result_.channels[rc.index()].consumed += 1;
              result_.channels[rc.index()].occupancy = available(rc);
            }
          }
          result_.interfaces[iid].selections += 1;
        } else if (irt.cur != std::optional<support::ClusterId>{rule.cluster}) {
          result_.interfaces[iid].selections += 1;
        }
        if (irt.cur != std::optional<support::ClusterId>{rule.cluster}) {
          start_reconfiguration(iid, rule.cluster, now);
          ++fired;
        }
        break;  // first enabled rule decides
      }
    }
  }

  for (ProcessId pid : graph_.process_ids()) {
    if (try_fire(pid, now)) ++fired;
  }
  return fired;
}

SimResult Simulator::run() {
  if (ran_) throw support::ModelError("Simulator::run() may only be called once");
  ran_ = true;

  TimePoint now = TimePoint::zero();
  push_event(now, Event::Kind::kWake, 0);

  while (!events_.empty()) {
    if (result_.total_firings >= options_.max_total_firings) {
      result_.hit_limit = true;
      break;
    }

    const Event event = events_.top();
    events_.pop();
    now = event.time;

    switch (event.kind) {
      case Event::Kind::kCompletion: {
        const auto index = static_cast<std::size_t>(event.payload);
        if (completion_cancelled_[index]) break;  // execution was terminated
        apply_completion(completions_[index], now);
        result_.end_time = now;
        break;
      }
      case Event::Kind::kReconfigDone:
        finish_reconfiguration(support::InterfaceId{static_cast<std::uint32_t>(event.payload)},
                               now);
        result_.end_time = now;
        break;
      case Event::Kind::kWake:
        break;
    }

    // New firings only start while within the time budget.
    if (now <= options_.max_time) {
      while (sweep(now) > 0) {
        if (result_.total_firings >= options_.max_total_firings) break;
      }
    } else {
      result_.hit_limit = true;
    }
  }

  result_.quiescent = events_.empty() && !result_.hit_limit;
  measure_constraints();
  return std::move(result_);
}

void Simulator::measure_constraints() {
  for (std::size_t i = 0; i < graph_.constraints().latency.size(); ++i) {
    const auto& c = graph_.constraints().latency[i];
    ConstraintMeasurement m;
    m.name = c.name;
    m.bound = static_cast<double>(c.max_total.count());
    const std::size_t n = std::min(latency_starts_[i].size(), latency_ends_[i].size());
    m.samples = static_cast<std::int64_t>(n);
    for (std::size_t k = 0; k < n; ++k) {
      const double lat = static_cast<double>((latency_ends_[i][k] - latency_starts_[i][k]).count());
      m.observed = std::max(m.observed, lat);
    }
    m.satisfied = m.observed <= m.bound;
    result_.constraints.push_back(std::move(m));
  }

  for (std::size_t i = 0; i < graph_.constraints().throughput.size(); ++i) {
    const auto& c = graph_.constraints().throughput[i];
    ConstraintMeasurement m;
    m.name = c.name;
    m.bound = static_cast<double>(c.min_tokens);
    const auto& stamps = throughput_stamps_[i];
    m.samples = static_cast<std::int64_t>(stamps.size());
    if (!stamps.empty()) {
      // Worst window fully inside the observed span. The infimum over all
      // window placements is attained either at a token arrival (window
      // [t, t+W)) or just after one (window (t, t+W]), so both anchors are
      // checked per stamp.
      std::int64_t worst = std::numeric_limits<std::int64_t>::max();
      for (std::size_t a = 0; a < stamps.size(); ++a) {
        const TimePoint window_end = stamps[a] + c.window;
        if (window_end > result_.end_time) break;  // partial window: not evidence
        std::int64_t at_count = 0;
        std::int64_t after_count = 0;
        for (std::size_t b = a; b < stamps.size() && stamps[b] <= window_end; ++b) {
          if (stamps[b] < window_end) ++at_count;
          if (stamps[b] > stamps[a]) ++after_count;
        }
        worst = std::min({worst, at_count, after_count});
      }
      if (worst != std::numeric_limits<std::int64_t>::max()) {
        m.observed = static_cast<double>(worst);
        m.satisfied = worst >= c.min_tokens;
      }
    }
    result_.constraints.push_back(std::move(m));
  }
}

}  // namespace spivar::sim
