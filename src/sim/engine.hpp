// Discrete-event simulator for SPI models.
//
// Executes the update-rule semantics of the paper's §2 plus the variant
// extensions of §3/§4:
//
//  * data-driven activation — ordered rules, first enabled rule fires; a
//    process without explicit rules activates a mode as soon as every input
//    holds the mode's lower consumption bound;
//  * interval resolution by policy (lower/upper/seeded-random), making every
//    run deterministic;
//  * queue channels (destructive read, optional capacity back-pressure) and
//    register channels (destructive write, non-destructive read);
//  * Def. 4 configurations — a firing whose mode lies outside `conf_cur`
//    first pays the configuration latency;
//  * interface-aware mode — the cluster selection function (Def. 3) picks
//    the active cluster; replacement pays t_conf, cancels running executions
//    of the outgoing cluster, and drops tokens on its internal channels.
//
// Construct from a plain Graph for flat simulation, or from a VariantModel
// for interface-aware simulation.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <queue>
#include <vector>

#include "sim/options.hpp"
#include "sim/stats.hpp"
#include "spi/graph.hpp"
#include "support/rng.hpp"
#include "variant/model.hpp"

namespace spivar::sim {

class Simulator {
 public:
  /// Flat simulation: every process in the graph is always eligible. The
  /// graph must outlive the simulator (a full-expression temporary is fine
  /// for the common `Simulator{graph}.run()` pattern).
  explicit Simulator(const spi::Graph& graph, SimOptions options = {});

  /// Interface-aware simulation: only the currently selected cluster of each
  /// interface is live. The model must outlive the simulator.
  explicit Simulator(const variant::VariantModel& model, SimOptions options = {});

  /// Runs to quiescence or to the configured limits and returns the result.
  /// May be called once per simulator instance; a second call throws
  /// ModelError (api::Session constructs a fresh simulator per request, so
  /// facade callers never see this).
  [[nodiscard]] SimResult run();

 private:
  /// Buffered tokens per channel; registers hold at most one.
  using TokenStore = std::vector<std::deque<spi::Token>>;

  struct PendingCompletion {
    std::int64_t firing_id = 0;  ///< unique per firing; used for cancellation
    ProcessId process;
    support::ModeId mode;
    /// Resolved production per output edge (token count + tags).
    std::vector<std::pair<support::EdgeId, std::int64_t>> production;
  };

  struct Event {
    TimePoint time;
    std::int64_t sequence = 0;  ///< FIFO tie-break for equal times
    enum class Kind : std::uint8_t { kCompletion, kWake, kReconfigDone } kind = Kind::kWake;
    std::int64_t payload = 0;  ///< completion index / interface id

    friend bool operator>(const Event& a, const Event& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  struct ProcessRuntime {
    bool executing = false;
    std::int64_t current_firing = -1;
    std::int64_t firings = 0;
    TimePoint next_release{};  ///< earliest next start (min_period pacing)
    std::optional<support::ConfigurationId> conf_cur;
    /// Materialized activation rules (explicit or generated implicit ones).
    std::vector<spi::ActivationRule> rules;
  };

  struct InterfaceRuntime {
    std::optional<support::ClusterId> cur;  ///< Def. 3 `cur` parameter
    bool reconfiguring = false;
    std::optional<support::ClusterId> pending;  ///< target of a running reconfiguration
  };

  // --- setup ---------------------------------------------------------------
  void init_state();
  void materialize_rules();

  // --- core loop -------------------------------------------------------------
  void push_event(TimePoint time, Event::Kind kind, std::int64_t payload);
  void apply_completion(const PendingCompletion& completion, TimePoint now);
  /// One activation sweep over interfaces + processes; returns #fires.
  int sweep(TimePoint now);
  bool try_fire(ProcessId pid, TimePoint now);
  void start_reconfiguration(support::InterfaceId iid, support::ClusterId target,
                             TimePoint now);
  void finish_reconfiguration(support::InterfaceId iid, TimePoint now);
  [[nodiscard]] bool process_live(ProcessId pid) const;

  // --- helpers ----------------------------------------------------------------
  [[nodiscard]] std::int64_t resolve(support::Interval iv);
  [[nodiscard]] support::Duration resolve(support::DurationInterval iv);
  [[nodiscard]] std::int64_t available(ChannelId cid) const;
  [[nodiscard]] std::int64_t space(ChannelId cid) const;
  void produce_tokens(support::EdgeId edge, std::int64_t count, const spi::Mode& mode,
                      TimePoint now);
  void consume_tokens(support::EdgeId edge, std::int64_t count);
  void measure_constraints();

  const spi::Graph& graph_;
  const variant::VariantModel* model_ = nullptr;  ///< null in flat simulation
  SimOptions options_;
  support::SplitMix64 rng_;

  TokenStore channels_;
  std::vector<ProcessRuntime> processes_;
  std::vector<InterfaceRuntime> interfaces_;
  /// Owner cluster per process (invalid = common part); empty in flat mode.
  std::vector<support::ClusterId> owner_;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::vector<PendingCompletion> completions_;  ///< indexed by Event::payload
  std::vector<bool> completion_cancelled_;
  std::int64_t next_sequence_ = 0;
  std::int64_t next_firing_id_ = 0;

  SimResult result_;
  bool ran_ = false;

  // Constraint measurement buffers: start times of the first process and
  // completion times of the last process of each latency constraint; token
  // production timestamps for throughput constraints.
  std::vector<std::vector<TimePoint>> latency_starts_;
  std::vector<std::vector<TimePoint>> latency_ends_;
  std::vector<std::vector<TimePoint>> throughput_stamps_;
};

}  // namespace spivar::sim
