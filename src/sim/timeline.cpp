#include "sim/timeline.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

namespace spivar::sim {

std::string render_timeline(const spi::Graph& graph, const SimResult& result,
                            const TimelineOptions& options) {
  const auto& events = result.trace.events();
  if (events.empty()) return "(empty trace — enable SimOptions::record_trace)\n";

  const auto span = std::max<std::int64_t>(result.end_time.count(), 1);
  const auto columns = std::max<std::size_t>(options.columns, 8);
  auto bucket_of = [&](TimePoint t) {
    return std::min(columns - 1,
                    static_cast<std::size_t>(t.count() * static_cast<std::int64_t>(columns) /
                                             (span + 1)));
  };

  // Row per process, in id order.
  std::map<std::string, std::string> rows;
  std::vector<std::string> order;
  for (auto pid : graph.process_ids()) {
    const spi::Process& p = graph.process(pid);
    if (p.is_virtual && !options.include_virtual) continue;
    rows.emplace(p.name, std::string(columns, '.'));
    order.push_back(p.name);
  }

  // Fire..complete intervals fill with the first letter of the mode name;
  // reconfigurations overwrite with uppercase.
  std::map<std::string, std::pair<TimePoint, char>> open;  // subject -> (start, letter)
  for (const TraceEvent& e : events) {
    auto row = rows.find(e.subject);
    if (row == rows.end()) continue;
    switch (e.kind) {
      case TraceKind::kFire: {
        const char letter = e.detail.empty() ? 'x' : e.detail[0];
        open[e.subject] = {e.time, letter};
        break;
      }
      case TraceKind::kComplete: {
        auto it = open.find(e.subject);
        if (it == open.end()) break;
        const auto [start, letter] = it->second;
        open.erase(it);
        for (std::size_t b = bucket_of(start); b <= bucket_of(e.time); ++b) {
          row->second[b] = letter;
        }
        break;
      }
      case TraceKind::kReconfigure:
      case TraceKind::kSelect:
        row->second[bucket_of(e.time)] =
            static_cast<char>(std::toupper(e.detail.empty() ? 'R' : e.detail[0]));
        break;
      case TraceKind::kCancel:
        row->second[bucket_of(e.time)] = '!';
        break;
      case TraceKind::kDrop:
        break;
    }
  }
  // Still-running executions extend to the end of the chart.
  for (const auto& [subject, start_letter] : open) {
    auto row = rows.find(subject);
    if (row == rows.end()) continue;
    for (std::size_t b = bucket_of(start_letter.first); b < columns; ++b) {
      row->second[b] = start_letter.second;
    }
  }

  std::size_t label_width = 0;
  for (const std::string& name : order) label_width = std::max(label_width, name.size());

  std::ostringstream os;
  os << "timeline over " << result.end_time << " (" << columns << " buckets of "
     << support::Duration{span / static_cast<std::int64_t>(columns)} << ")\n";
  for (const std::string& name : order) {
    os << name << std::string(label_width - name.size(), ' ') << " |" << rows.at(name) << "\n";
  }
  return os.str();
}

}  // namespace spivar::sim
