// Simulation statistics and results.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/trace.hpp"
#include "support/duration.hpp"
#include "support/ids.hpp"

namespace spivar::sim {

using support::ChannelId;
using support::Duration;
using support::InterfaceId;
using support::ProcessId;
using support::TimePoint;

struct ProcessStats {
  std::int64_t firings = 0;
  Duration busy = Duration::zero();
  std::int64_t reconfigurations = 0;       ///< Def. 4 configuration switches
  Duration reconfig_time = Duration::zero();
  std::int64_t cancelled = 0;              ///< executions killed by cluster replacement
  std::vector<std::int64_t> mode_firings;  ///< per-mode firing counts

  [[nodiscard]] std::int64_t firings_in_mode(std::size_t mode_index) const {
    return mode_index < mode_firings.size() ? mode_firings[mode_index] : 0;
  }
};

struct ChannelStats {
  std::int64_t produced = 0;   ///< tokens written over the whole run
  std::int64_t consumed = 0;   ///< tokens destructively read
  std::int64_t dropped = 0;    ///< tokens lost to cluster replacement
  std::int64_t occupancy = 0;  ///< tokens present at end of run
  std::int64_t max_occupancy = 0;
};

struct InterfaceStats {
  std::int64_t selections = 0;        ///< selection function activations
  std::int64_t reconfigurations = 0;  ///< actual cluster replacements
  Duration reconfig_time = Duration::zero();
};

/// Measured compliance of one timing constraint.
struct ConstraintMeasurement {
  std::string name;
  bool satisfied = true;
  /// Latency constraints: worst observed path latency. Throughput
  /// constraints: worst observed token count in a window.
  double observed = 0.0;
  double bound = 0.0;
  std::int64_t samples = 0;
};

struct SimResult {
  TimePoint end_time{};
  std::int64_t total_firings = 0;
  bool quiescent = false;   ///< stopped because nothing could ever fire again
  bool hit_limit = false;   ///< stopped on max_time / max_total_firings

  std::vector<ProcessStats> processes;   // indexed by ProcessId
  std::vector<ChannelStats> channels;    // indexed by ChannelId
  std::map<InterfaceId, InterfaceStats> interfaces;
  std::vector<ConstraintMeasurement> constraints;

  Trace trace{0};

  [[nodiscard]] const ProcessStats& process(ProcessId id) const {
    return processes.at(id.index());
  }
  [[nodiscard]] const ChannelStats& channel(ChannelId id) const {
    return channels.at(id.index());
  }
  [[nodiscard]] bool all_constraints_satisfied() const {
    for (const auto& c : constraints) {
      if (!c.satisfied) return false;
    }
    return true;
  }
};

}  // namespace spivar::sim
