// Simulation options.
#pragma once

#include <cstdint>

#include "support/duration.hpp"

namespace spivar::sim {

/// How interval-valued parameters (rates, latencies) are resolved to a
/// concrete value at each firing. Every choice is deterministic given the
/// seed, so simulations are reproducible.
enum class Resolution : std::uint8_t {
  kLowerBound,  ///< optimistic: smallest consumption/production/latency
  kUpperBound,  ///< pessimistic: largest values
  kRandom,      ///< seeded uniform draw from the interval
};

[[nodiscard]] constexpr const char* to_string(Resolution r) noexcept {
  switch (r) {
    case Resolution::kLowerBound: return "lower";
    case Resolution::kUpperBound: return "upper";
    case Resolution::kRandom: return "random";
  }
  return "?";
}

struct SimOptions {
  Resolution resolution = Resolution::kLowerBound;
  std::uint64_t seed = 1;

  /// Hard stop: no firing starts after this time.
  support::TimePoint max_time{support::TimePoint{1'000'000'000}};  // 1000 s

  /// Hard stop on the total number of firings (guards runaway sources).
  std::int64_t max_total_firings = 1'000'000;

  /// Record a bounded execution trace (off by default: hot-path cost).
  bool record_trace = false;
  std::size_t trace_limit = 100'000;
};

}  // namespace spivar::sim
