// Execution traces.
//
// A bounded sequence of simulator events for tests, debugging, and the
// examples' narrative output. Subjects and details are plain strings so
// traces remain readable without graph context.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/duration.hpp"

namespace spivar::sim {

enum class TraceKind : std::uint8_t {
  kFire,          ///< process started executing (tokens consumed)
  kComplete,      ///< process finished (tokens produced)
  kReconfigure,   ///< process/interface switched configuration (Def. 3/4)
  kSelect,        ///< interface selection function chose a cluster
  kCancel,        ///< running execution terminated by cluster replacement
  kDrop,          ///< internal channel data lost on cluster replacement
};

[[nodiscard]] constexpr const char* to_string(TraceKind k) noexcept {
  switch (k) {
    case TraceKind::kFire: return "fire";
    case TraceKind::kComplete: return "complete";
    case TraceKind::kReconfigure: return "reconfigure";
    case TraceKind::kSelect: return "select";
    case TraceKind::kCancel: return "cancel";
    case TraceKind::kDrop: return "drop";
  }
  return "?";
}

struct TraceEvent {
  support::TimePoint time;
  TraceKind kind = TraceKind::kFire;
  std::string subject;  ///< process/interface name
  std::string detail;   ///< mode/cluster/extra information
};

class Trace {
 public:
  explicit Trace(std::size_t limit = 100'000) : limit_(limit) {}

  void record(support::TimePoint time, TraceKind kind, std::string subject,
              std::string detail) {
    if (events_.size() >= limit_) {
      truncated_ = true;
      return;
    }
    events_.push_back({time, kind, std::move(subject), std::move(detail)});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept { return events_; }
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }

  /// Events of one kind, in order.
  [[nodiscard]] std::vector<TraceEvent> of_kind(TraceKind kind) const {
    std::vector<TraceEvent> out;
    for (const TraceEvent& e : events_) {
      if (e.kind == kind) out.push_back(e);
    }
    return out;
  }

  /// Events concerning one subject, in order.
  [[nodiscard]] std::vector<TraceEvent> of_subject(const std::string& subject) const {
    std::vector<TraceEvent> out;
    for (const TraceEvent& e : events_) {
      if (e.subject == subject) out.push_back(e);
    }
    return out;
  }

 private:
  std::vector<TraceEvent> events_;
  std::size_t limit_;
  bool truncated_ = false;
};

}  // namespace spivar::sim
