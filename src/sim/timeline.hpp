// ASCII timeline (Gantt) rendering of execution traces.
//
// Turns a recorded trace into a per-process activity chart — handy for
// inspecting reconfiguration sequences in examples and docs:
//
//   PIn      |ppp...ddd...ppppp
//   P1       |rrrr..RRRRRRrrrr.
//   PControl |.s.........f.....
//
// One column per time bucket; '.' idle, lowercase = executing, uppercase
// first letter marks the bucket where a reconfiguration started.
#pragma once

#include <string>

#include "sim/stats.hpp"
#include "spi/graph.hpp"
#include "support/duration.hpp"

namespace spivar::sim {

struct TimelineOptions {
  std::size_t columns = 80;           ///< chart width in buckets
  bool include_virtual = false;       ///< show environment processes too
};

/// Renders the trace of `result` (which must have been recorded with
/// `SimOptions::record_trace`) against the graph it came from.
[[nodiscard]] std::string render_timeline(const spi::Graph& graph, const SimResult& result,
                                          const TimelineOptions& options = {});

}  // namespace spivar::sim
