#include "models/video_system.hpp"

#include "spi/builder.hpp"

namespace spivar::models {

using spi::Predicate;
using support::Duration;

namespace {

/// Builds one abstracted chain process (P1-like or P2-like) with variant
/// configurations A/B. `stage` is 1 or 2; stage 2 additionally classifies
/// frames as consistent ('ok') or mismatched ('invalid') using the variant
/// stamp attached by stage 1.
void build_stage(spi::GraphBuilder& b, int stage, spi::ChannelId video_in,
                 spi::ChannelId video_out, spi::ChannelId req, spi::ChannelId con,
                 Duration t_conf) {
  const std::string name = "P" + std::to_string(stage);
  auto p = b.process(name);

  // Own state register: which variant the process is configured for. The
  // acknowledge modes write it; the run modes read it. This realizes the
  // paper's observation that the mode of the next execution depends on the
  // incoming data only — conf_cur itself is not visible to predicates.
  auto state = b.reg("R" + std::to_string(stage)).initial(1, {"A"}).mark_virtual();

  const auto tag_va = b.tag("VA");
  const auto tag_vb = b.tag("VB");
  const auto tag_a = b.tag("A");
  const auto tag_b = b.tag("B");
  const auto tag_fa = b.tag("fA");
  const auto tag_fb = b.tag("fB");

  if (stage == 1) {
    // Run modes stamp frames with the active variant.
    p.mode("runA").latency(Duration::millis(4)).consume(video_in, 1).produce(video_out, 1,
                                                                             {"fA"});
    p.mode("runB").latency(Duration::millis(4)).consume(video_in, 1).produce(video_out, 1,
                                                                             {"fB"});
  } else {
    // Stage 2 classifies: frame stamp matches own variant -> 'ok', else
    // 'invalid'. Four run modes (2 variants x match/mismatch).
    p.mode("runA").latency(Duration::millis(3)).consume(video_in, 1).produce(video_out, 1,
                                                                             {"ok"});
    p.mode("runB").latency(Duration::millis(3)).consume(video_in, 1).produce(video_out, 1,
                                                                             {"ok"});
    p.mode("misA").latency(Duration::millis(3)).consume(video_in, 1).produce(video_out, 1,
                                                                             {"invalid"});
    p.mode("misB").latency(Duration::millis(3)).consume(video_in, 1).produce(video_out, 1,
                                                                             {"invalid"});
  }

  // Acknowledge modes: consume the request, confirm completion, move the
  // state register. The confirm token is "part of the selected mode", not of
  // the reconfiguration step (§5).
  p.mode("ackA")
      .latency(Duration::micros(500))
      .consume(req, 1)
      .produce(con, 1, {"done"})
      .produce(state, 1, {"A"});
  p.mode("ackB")
      .latency(Duration::micros(500))
      .consume(req, 1)
      .produce(con, 1, {"done"})
      .produce(state, 1, {"B"});

  // The rules observe the state register: declare the (non-destructive)
  // read edge explicitly.
  p.input(state);

  // Requests take priority over frame processing.
  p.rule("reqA", Predicate::num_at_least(req, 1) && Predicate::has_tag(req, tag_va), "ackA");
  p.rule("reqB", Predicate::num_at_least(req, 1) && Predicate::has_tag(req, tag_vb), "ackB");
  if (stage == 1) {
    p.rule("runA", Predicate::num_at_least(video_in, 1) && Predicate::has_tag(state, tag_a),
           "runA");
    p.rule("runB", Predicate::num_at_least(video_in, 1) && Predicate::has_tag(state, tag_b),
           "runB");
  } else {
    p.rule("okA",
           Predicate::num_at_least(video_in, 1) && Predicate::has_tag(video_in, tag_fa) &&
               Predicate::has_tag(state, tag_a),
           "runA");
    p.rule("okB",
           Predicate::num_at_least(video_in, 1) && Predicate::has_tag(video_in, tag_fb) &&
               Predicate::has_tag(state, tag_b),
           "runB");
    p.rule("misA", Predicate::num_at_least(video_in, 1) && Predicate::has_tag(state, tag_a),
           "misA");
    p.rule("misB", Predicate::num_at_least(video_in, 1) && Predicate::has_tag(state, tag_b),
           "misB");
  }

  // Def. 4 configurations: modes extracted from variant A form confA, etc.
  if (stage == 1) {
    p.configuration("confA", {"runA", "ackA"}, t_conf);
    p.configuration("confB", {"runB", "ackB"}, t_conf);
  } else {
    p.configuration("confA", {"runA", "misA", "ackA"}, t_conf);
    p.configuration("confB", {"runB", "misB", "ackB"}, t_conf);
  }
  // The system boots configured for variant A.
  b.graph().process(p.id()).initial_configuration = support::ConfigurationId{0};
}

}  // namespace

spi::Graph make_video_system(const VideoOptions& options) {
  spi::GraphBuilder b{"video-system"};

  // --- channels ---------------------------------------------------------------
  auto cvin = b.queue("CVin");
  auto cv1 = b.queue("CV1");
  auto cv2 = b.queue("CV2");
  auto cv3 = b.queue("CV3");
  auto cvout = b.queue("CVout");

  auto cuser = b.queue("CUser");
  auto cctrl = b.reg("CCTRL").initial(1, {"idle"});
  auto cin = b.reg("CIn").initial(1, {"run"});
  auto ccout = b.reg("COut").initial(1, {"run"});
  auto creq1 = b.queue("CReq1");
  auto ccon1 = b.queue("CCon1");
  auto creq2 = b.queue("CReq2");
  auto ccon2 = b.queue("CCon2");

  const auto tag_suspend = b.tag("suspend");
  const auto tag_run = b.tag("run");
  const auto tag_idle = b.tag("idle");
  const auto tag_wait = b.tag("wait");
  const auto tag_to_a = b.tag("toA");
  const auto tag_to_b = b.tag("toB");
  const auto tag_ok = b.tag("ok");
  const auto tag_invalid = b.tag("invalid");
  const auto tag_out_ok = b.tag("out_ok");
  const auto tag_out_repeat = b.tag("out_repeat");
  const auto tag_out_invalid = b.tag("out_invalid");

  // --- video source -------------------------------------------------------------
  b.process("VIn")
      .mark_virtual()
      .latency(Duration::zero())
      .produces(cvin, 1)
      .min_period(options.frame_period)
      .max_firings(options.frames);

  // --- input valve PIn -------------------------------------------------------------
  {
    auto pin = b.process("PIn");
    pin.mode("pass").latency(Duration::millis(1)).consume(cvin, 1).produce(cv1, 1);
    pin.mode("drop").latency(Duration::millis(1)).consume(cvin, 1);
    pin.input(cin);  // observes the control register
    if (options.input_valve) {
      pin.rule("suspended",
               Predicate::num_at_least(cvin, 1) && Predicate::has_tag(cin, tag_suspend),
               "drop");
    }
    pin.rule("normal", Predicate::num_at_least(cvin, 1), "pass");
  }

  // --- chain stages ------------------------------------------------------------------
  build_stage(b, 1, cv1, cv2, creq1, ccon1, options.t_conf);
  build_stage(b, 2, cv2, cv3, creq2, ccon2, options.t_conf);

  // --- output valve POut -----------------------------------------------------------------
  {
    auto pout = b.process("POut");
    pout.mode("pass").latency(Duration::millis(1)).consume(cv3, 1).produce(cvout, 1,
                                                                           {"out_ok"});
    pout.mode("repeat").latency(Duration::millis(1)).consume(cv3, 1).produce(cvout, 1,
                                                                             {"out_repeat"});
    pout.mode("leak").latency(Duration::millis(1)).consume(cv3, 1).produce(cvout, 1,
                                                                           {"out_invalid"});
    pout.input(ccout);  // observes the control register
    if (options.output_valve) {
      // While suspended, or whenever a mismatched frame arrives, output the
      // last complete image instead.
      pout.rule("suspended",
                Predicate::num_at_least(cv3, 1) && Predicate::has_tag(ccout, tag_suspend),
                "repeat");
      pout.rule("mask",
                Predicate::num_at_least(cv3, 1) && Predicate::has_tag(cv3, tag_invalid),
                "repeat");
      pout.rule("normal", Predicate::num_at_least(cv3, 1) && Predicate::has_tag(cv3, tag_ok),
                "pass");
    } else {
      pout.rule("normal", Predicate::num_at_least(cv3, 1) && Predicate::has_tag(cv3, tag_ok),
                "pass");
      pout.rule("leak",
                Predicate::num_at_least(cv3, 1) && Predicate::has_tag(cv3, tag_invalid),
                "leak");
    }
  }

  // --- controller -------------------------------------------------------------------------
  {
    auto ctrl = b.process("PControl");
    ctrl.mode("sendA")
        .latency(Duration::micros(200))
        .consume(cuser, 1)
        .produce(creq1, 1, {"VA"})
        .produce(creq2, 1, {"VA"})
        .produce(cin, 1, {"suspend"})
        .produce(ccout, 1, {"suspend"})
        .produce(cctrl, 1, {"wait"});
    ctrl.mode("sendB")
        .latency(Duration::micros(200))
        .consume(cuser, 1)
        .produce(creq1, 1, {"VB"})
        .produce(creq2, 1, {"VB"})
        .produce(cin, 1, {"suspend"})
        .produce(ccout, 1, {"suspend"})
        .produce(cctrl, 1, {"wait"});
    ctrl.mode("finish")
        .latency(Duration::micros(200))
        .consume(ccon1, 1)
        .consume(ccon2, 1)
        .produce(cin, 1, {"run"})
        .produce(ccout, 1, {"run"})
        .produce(cctrl, 1, {"idle"});

    ctrl.input(cctrl);  // observes its own state register
    ctrl.rule("userA",
              Predicate::num_at_least(cuser, 1) && Predicate::has_tag(cuser, tag_to_a) &&
                  Predicate::has_tag(cctrl, tag_idle),
              "sendA");
    ctrl.rule("userB",
              Predicate::num_at_least(cuser, 1) && Predicate::has_tag(cuser, tag_to_b) &&
                  Predicate::has_tag(cctrl, tag_idle),
              "sendB");
    ctrl.rule("confirm",
              Predicate::num_at_least(ccon1, 1) && Predicate::num_at_least(ccon2, 1) &&
                  Predicate::has_tag(cctrl, tag_wait),
              "finish");
  }

  // --- user: alternating reconfiguration requests (B, A, B, ...) ---------------
  {
    auto ru = b.reg("RU").initial(1, {"a"}).mark_virtual();
    const auto tag_sa = b.tag("a");
    const auto tag_sb = b.tag("b");
    auto user = b.process("PUser").mark_virtual();
    user.mode("askB")
        .latency(Duration::zero())
        .produce(cuser, 1, {"toB"})
        .produce(ru, 1, {"b"});
    user.mode("askA")
        .latency(Duration::zero())
        .produce(cuser, 1, {"toA"})
        .produce(ru, 1, {"a"});
    user.rule("alternate-to-b", Predicate::has_tag(ru, tag_sa), "askB");
    user.rule("alternate-to-a", Predicate::has_tag(ru, tag_sb), "askA");
    user.min_period(options.request_period).max_firings(options.requests);
    // The register read is non-destructive; without an input edge the rules
    // must still reference RU, so declare the read edge explicitly.
    user.input(ru);
  }

  // --- sink classifying output frames ------------------------------------------
  {
    auto vout = b.process("VOut").mark_virtual();
    vout.mode("ok").latency(Duration::zero()).consume(cvout, 1);
    vout.mode("repeat").latency(Duration::zero()).consume(cvout, 1);
    vout.mode("invalid").latency(Duration::zero()).consume(cvout, 1);
    vout.rule("ok", Predicate::num_at_least(cvout, 1) && Predicate::has_tag(cvout, tag_out_ok),
              "ok");
    vout.rule("repeat",
              Predicate::num_at_least(cvout, 1) && Predicate::has_tag(cvout, tag_out_repeat),
              "repeat");
    vout.rule("invalid",
              Predicate::num_at_least(cvout, 1) && Predicate::has_tag(cvout, tag_out_invalid),
              "invalid");
  }

  (void)tag_run;  // documented state value; only ever written, never tested
  return b.take();
}

VideoOutcome harvest_video_outcome(const spi::Graph& graph, const sim::SimResult& result) {
  VideoOutcome out;
  const auto vout = graph.find_process("VOut");
  const auto pin = graph.find_process("PIn");
  const auto p1 = graph.find_process("P1");
  const auto p2 = graph.find_process("P2");

  if (vout) {
    const spi::Process& p = graph.process(*vout);
    const auto& stats = result.process(*vout);
    for (std::size_t mi = 0; mi < p.modes.size(); ++mi) {
      if (p.modes[mi].name == "ok") out.ok_frames = stats.firings_in_mode(mi);
      if (p.modes[mi].name == "repeat") out.repeat_frames = stats.firings_in_mode(mi);
      if (p.modes[mi].name == "invalid") out.invalid_frames = stats.firings_in_mode(mi);
    }
  }
  if (pin) {
    const spi::Process& p = graph.process(*pin);
    const auto& stats = result.process(*pin);
    for (std::size_t mi = 0; mi < p.modes.size(); ++mi) {
      if (p.modes[mi].name == "drop") out.dropped_inputs = stats.firings_in_mode(mi);
    }
  }
  for (const auto& pid : {p1, p2}) {
    if (!pid) continue;
    out.reconfigurations += result.process(*pid).reconfigurations;
    out.reconfig_time += result.process(*pid).reconfig_time;
  }
  return out;
}

}  // namespace spivar::models
