#include "models/fig2.hpp"

#include "support/diagnostics.hpp"
#include "synth/from_model.hpp"
#include "variant/flatten.hpp"

namespace spivar::models {

using support::Duration;
using variant::PortDir;

namespace {

/// Common scaffold of Figures 2 and 3. When `with_user` is set, the PUser /
/// CV selection machinery of Figure 3 is added.
variant::VariantModel build(const Fig2Options& options, bool with_user,
                            const Fig3Options* fig3) {
  variant::VariantBuilder vb{with_user ? "fig3" : "fig2"};

  auto cin = vb.queue("CIn");
  auto ci = vb.queue("Ci");
  auto co = vb.queue("Co");
  auto cout = vb.queue("COut");

  vb.process("PSrc")
      .mark_virtual()
      .latency(Duration::zero())
      .produces(cin, 1)
      .min_period(options.source_period)
      .max_firings(options.source_firings);

  vb.process("PA").latency(Duration::millis(2)).consumes(cin, 1).produces(ci, 1);

  auto theta = vb.interface("theta");
  vb.port(theta, "i", PortDir::kInput, ci);
  vb.port(theta, "o", PortDir::kOutput, co);

  {
    auto cluster1 = vb.begin_cluster(theta, "cluster1");
    auto cx = vb.queue("CX");
    vb.process("P1a").latency(Duration::millis(1)).consumes(ci, 1).produces(cx, 1);
    vb.process("P1b").latency(Duration::millis(2)).consumes(cx, 1).produces(co, 1);
    (void)cluster1;
  }
  {
    auto cluster2 = vb.begin_cluster(theta, "cluster2");
    auto cy1 = vb.queue("CY1");
    auto cy2 = vb.queue("CY2");
    vb.process("P2a").latency(Duration::millis(1)).consumes(ci, 1).produces(cy1, 2);
    vb.process("P2b").latency(Duration::millis(1)).consumes(cy1, 1).produces(cy2, 1);
    vb.process("P2c").latency(Duration::millis(2)).consumes(cy2, 2).produces(co, 1);
    (void)cluster2;
  }

  vb.process("PB").latency(Duration::millis(1)).consumes(co, 1).produces(cout, 1);
  vb.process("PSink").mark_virtual().latency(Duration::zero()).consumes(cout, 1);

  if (with_user) {
    auto cv = vb.queue("CV");
    const char* tag = fig3->user_choice == 1 ? "V1" : "V2";
    vb.process("PUser")
        .mark_virtual()
        .latency(Duration::zero())
        .produces(cv, 1, {tag})
        .max_firings(1);

    // CV is an input port of the interface: the selection function observes
    // it (Def. 3 predicates range over the interface's input channels).
    vb.port(theta, "v", PortDir::kInput, cv);
    vb.selection_rule(theta, "r1", spi::Predicate::has_tag(cv, vb.tag("V1")), "cluster1");
    vb.selection_rule(theta, "r2", spi::Predicate::has_tag(cv, vb.tag("V2")), "cluster2");
    vb.t_conf(theta, "cluster1", fig3->t_conf1);
    vb.t_conf(theta, "cluster2", fig3->t_conf2);
  }

  return vb.take();
}

}  // namespace

variant::VariantModel make_fig2(const Fig2Options& options) {
  return build(options, /*with_user=*/false, nullptr);
}

variant::VariantModel make_fig3(const Fig3Options& options) {
  if (options.user_choice != 1 && options.user_choice != 2) {
    throw support::ModelError("fig3 user_choice must be 1 or 2");
  }
  return build(options, /*with_user=*/true, &options);
}

synth::ImplLibrary table1_library() {
  synth::ImplLibrary lib;
  lib.processor_cost = 15.0;
  lib.processor_budget = 1.0;
  // Loads calibrated so every single application overloads the processor
  // fully in software (PA+PB+theta_i > 1) and the cheapest repairs are the
  // paper's: move theta_i to hardware independently, move PA jointly.
  lib.add("PA", {.sw_load = 0.50, .sw_wcet = Duration::millis(2), .hw_cost = 26.0,
                 .hw_wcet = Duration::micros(400)});
  lib.add("PB", {.sw_load = 0.30, .sw_wcet = Duration::millis(1), .hw_cost = 30.0,
                 .hw_wcet = Duration::micros(300)});
  lib.add("cluster1", {.sw_load = 0.60, .sw_wcet = Duration::millis(3), .hw_cost = 19.0,
                       .hw_wcet = Duration::micros(600)});
  lib.add("cluster2", {.sw_load = 0.65, .sw_wcet = Duration::millis(4), .hw_cost = 23.0,
                       .hw_wcet = Duration::micros(800)});
  return lib;
}

synth::SynthesisProblem table1_problem() {
  const variant::VariantModel model = make_fig2();
  synth::SynthesisProblem problem = synth::problem_from_model(
      model, {.granularity = synth::ElementGranularity::kClusterAtomic});
  // Paper-facing application names.
  for (synth::Application& app : problem.apps) {
    if (app.name.find("cluster1") != std::string::npos) {
      app.name = "Application 1";
    } else if (app.name.find("cluster2") != std::string::npos) {
      app.name = "Application 2";
    }
  }
  return problem;
}

}  // namespace spivar::models
