#include "models/synthetic.hpp"

#include <optional>
#include <string>
#include <vector>

#include "spi/builder.hpp"
#include "support/diagnostics.hpp"
#include "support/rng.hpp"
#include "variant/flatten.hpp"

namespace spivar::models {

using support::Duration;
using variant::PortDir;

variant::VariantModel make_synthetic(const SyntheticSpec& spec) {
  if (spec.variants < 1 || spec.cluster_size < 1) {
    throw support::ModelError("synthetic spec needs at least one variant and one process");
  }
  if (spec.modes < 1) {
    throw support::ModelError("synthetic spec needs at least one mode per process");
  }
  variant::VariantBuilder vb{"synthetic"};
  support::SplitMix64 rng{spec.seed};

  auto latency = [&rng]() {
    return Duration::millis(1 + static_cast<std::int64_t>(rng.next_below(5)));
  };

  // Shared chain segments alternate with interfaces:
  //   src -> S0 .. -> [iface0] -> Sk .. -> [iface1] -> ... -> sink
  auto source_channel = vb.queue("c_src");
  vb.process("src")
      .mark_virtual()
      .latency(Duration::zero())
      .produces(source_channel, 1)
      .min_period(Duration::millis(10))
      .max_firings(100);

  // Run-time selection scaffold (predicate_depth > 0): a control channel
  // carrying tagged selection tokens, fed by a virtual user process (the
  // fig3 PUser/CV idiom). Every interface observes — never consumes — the
  // token, so the deterministic choice stays cluster 0 while the selection
  // predicates exercise evaluation at the requested structural depth.
  std::optional<spi::ChannelId> control;
  if (spec.predicate_depth > 0) {
    auto ctl = vb.queue("ctl");
    ctl.initial(1, {"v0"});
    control = ctl.id();
    vb.process("user")
        .mark_virtual()
        .latency(Duration::zero())
        .produces(*control, 1, {"v0"})
        .min_period(Duration::millis(20))
        .max_firings(10);
  }

  spi::ChannelId upstream = source_channel;
  std::size_t shared_built = 0;
  std::size_t channel_counter = 0;

  auto add_shared = [&](std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      auto next = vb.queue("c" + std::to_string(channel_counter++));
      vb.process("S" + std::to_string(shared_built++))
          .latency(latency())
          .consumes(upstream, 1)
          .produces(next, 1);
      upstream = next;
    }
  };

  const std::size_t segments = spec.interfaces + 1;
  const std::size_t per_segment = spec.shared_processes / segments;
  std::size_t remainder = spec.shared_processes % segments;

  for (std::size_t k = 0; k < spec.interfaces; ++k) {
    add_shared(per_segment + (remainder > 0 ? 1 : 0));
    if (remainder > 0) --remainder;

    auto out = vb.queue("c" + std::to_string(channel_counter++));
    auto iface = vb.interface("iface" + std::to_string(k));
    vb.port(iface, "i", PortDir::kInput, upstream);
    vb.port(iface, "o", PortDir::kOutput, out);

    for (std::size_t v = 0; v < spec.variants; ++v) {
      const std::string cluster_name =
          "i" + std::to_string(k) + "v" + std::to_string(v);
      auto scope = vb.begin_cluster(iface, cluster_name);
      spi::ChannelId inner = upstream;
      for (std::size_t p = 0; p < spec.cluster_size; ++p) {
        const bool last = p + 1 == spec.cluster_size;
        spi::ChannelId next = out;
        if (!last) {
          next = vb.queue(cluster_name + "_c" + std::to_string(p));
        }
        auto proc = vb.process(cluster_name + "_p" + std::to_string(p));
        if (spec.modes == 1) {
          proc.latency(latency()).consumes(inner, 1).produces(next, 1);
        } else {
          // Backlog-sensitive explicit modes: every mode moves exactly one
          // token (so firing counts stay mode-independent) but runs slower
          // the deeper the mode index; rules are ordered highest-backlog
          // first so m{j} fires when at least j+1 tokens wait.
          const Duration base = latency();
          for (std::size_t m = 0; m < spec.modes; ++m) {
            proc.mode("m" + std::to_string(m))
                .latency(base + Duration::millis(static_cast<std::int64_t>(m)))
                .consume(inner, 1)
                .produce(next, 1);
          }
          for (std::size_t m = spec.modes; m-- > 0;) {
            proc.rule("r" + std::to_string(m),
                      spi::Predicate::num_at_least(inner, static_cast<std::int64_t>(m) + 1),
                      "m" + std::to_string(m));
          }
        }
        inner = next;
      }
      (void)scope;
    }
    if (control) {
      // Run-time selection rules at the requested predicate depth. The core
      // predicate matches the selection token's variant tag; extra depth is
      // added with semantically neutral conjuncts/disjuncts (`num(ctl) >= 1`
      // always holds once the token sits there, the huge threshold never
      // does), so nesting grows without changing which cluster wins.
      for (std::size_t v = 0; v < spec.variants; ++v) {
        const std::string cluster_name =
            "i" + std::to_string(k) + "v" + std::to_string(v);
        const auto tag = vb.tag("v" + std::to_string(v));
        spi::Predicate pred = spi::Predicate::num_at_least(*control, 1) &&
                              spi::Predicate::has_tag(*control, tag);
        for (std::size_t d = 1; d < spec.predicate_depth; ++d) {
          if (d % 2 == 1) {
            pred = pred && spi::Predicate::num_at_least(*control, 1);
          } else {
            pred = pred || spi::Predicate::num_at_least(
                               *control, 1'000'000 + static_cast<std::int64_t>(d));
          }
        }
        vb.selection_rule(iface, "sel" + std::to_string(k) + "v" + std::to_string(v),
                          pred, cluster_name);
        vb.t_conf(iface, cluster_name, Duration::millis(1));
      }
      vb.initial_cluster(iface, "i" + std::to_string(k) + "v0");
    }
    upstream = out;
  }
  add_shared(per_segment);

  vb.process("sink").mark_virtual().latency(Duration::zero()).consumes(upstream, 1);
  return vb.take();
}

synth::ImplLibrary make_synthetic_library(const variant::VariantModel& model,
                                          const SyntheticLibraryOptions& options) {
  support::SplitMix64 rng{options.seed};

  // Collect non-virtual processes and the size of one variant (common part
  // plus one cluster per interface) so loads can be normalized.
  std::vector<std::string> names;
  for (support::ProcessId pid : model.graph().process_ids()) {
    const spi::Process& p = model.graph().process(pid);
    if (!p.is_virtual) names.push_back(p.name);
  }

  std::size_t single_variant_count = 0;
  for (support::ProcessId pid : model.graph().process_ids()) {
    const spi::Process& p = model.graph().process(pid);
    if (p.is_virtual) continue;
    const auto owner = model.cluster_of(pid);
    if (!owner) {
      ++single_variant_count;
      continue;
    }
    // Count only position-0 clusters: one variant's worth of processes.
    const variant::Interface& iface = model.interface(model.cluster(*owner).interface);
    if (!iface.clusters.empty() && iface.clusters.front() == *owner) ++single_variant_count;
  }
  if (single_variant_count == 0) single_variant_count = 1;

  const double mean_load = options.target_single_variant_load /
                           static_cast<double>(single_variant_count);

  synth::ImplLibrary lib;
  lib.processor_cost = options.processor_cost;
  lib.processor_budget = options.processor_budget;
  for (const std::string& name : names) {
    synth::ElementImpl impl;
    // Load in [0.5, 1.5] x mean; hardware cost roughly proportional to load
    // with noise, so cheap relief moves exist but are not free.
    const double jitter = 0.5 + rng.next_double();
    impl.sw_load = mean_load * jitter;
    impl.sw_wcet = Duration::micros(static_cast<std::int64_t>(1000.0 * impl.sw_load * 10.0));
    impl.hw_cost = 10.0 + 40.0 * impl.sw_load + 5.0 * rng.next_double();
    impl.hw_wcet = Duration::micros(static_cast<std::int64_t>(1000.0 * impl.sw_load * 2.0));
    lib.add(name, impl);
  }
  return lib;
}

}  // namespace spivar::models
