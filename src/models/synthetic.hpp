// Scalable synthetic variant systems for the ablation benchmarks.
//
// A chain of shared processes with one or more interfaces spliced in; every
// interface carries a configurable number of cluster variants, each a small
// process chain. The companion library generator draws loads and costs from
// a seeded RNG and scales them so that the all-software mapping of a single
// variant slightly overloads the processor — the regime where the strategies
// of Table 1 genuinely differ.
#pragma once

#include <cstdint>

#include "support/duration.hpp"
#include "synth/target.hpp"
#include "variant/model.hpp"

namespace spivar::models {

struct SyntheticSpec {
  std::size_t shared_processes = 4;  ///< common-part chain length
  std::size_t interfaces = 1;        ///< variant sets spliced into the chain
  std::size_t variants = 2;          ///< clusters per interface
  std::size_t cluster_size = 3;      ///< processes per cluster
  /// Modes per cluster process (>1 adds backlog-sensitive explicit modes
  /// with activation rules; 1 keeps the single-mode shorthand, so default
  /// models — and their fingerprints/spit text — are unchanged).
  std::size_t modes = 1;
  /// Depth of the cluster-selection predicates (>0 adds a control channel
  /// fed by a virtual user process plus run-time selection rules per
  /// interface, nested to this depth; 0 keeps pure production variants).
  std::size_t predicate_depth = 0;
  std::uint64_t seed = 42;

  friend bool operator==(const SyntheticSpec&, const SyntheticSpec&) = default;
};

[[nodiscard]] variant::VariantModel make_synthetic(const SyntheticSpec& spec);

struct SyntheticLibraryOptions {
  std::uint64_t seed = 7;
  double processor_cost = 15.0;
  double processor_budget = 1.0;
  /// Target all-software utilization of one variant (values > budget make
  /// repair moves necessary).
  double target_single_variant_load = 1.3;
};

/// Library covering every non-virtual process of the model (process
/// granularity).
[[nodiscard]] synth::ImplLibrary make_synthetic_library(
    const variant::VariantModel& model, const SyntheticLibraryOptions& options = {});

}  // namespace spivar::models
