#include "models/multistandard_tv.hpp"

#include "spi/builder.hpp"
#include "support/diagnostics.hpp"

namespace spivar::models {

using spi::Predicate;
using support::Duration;
using variant::PortDir;

variant::VariantModel make_multistandard_tv(const TvOptions& options) {
  if (options.region < 0 || options.region > 2) {
    throw support::ModelError("TV region must be 0 (PAL), 1 (NTSC) or 2 (SECAM)");
  }
  variant::VariantBuilder vb{"multistandard-tv"};

  // --- common front end ---------------------------------------------------
  auto antenna = vb.queue("CAntenna");
  auto cvideo_in = vb.queue("CVideoIn");
  auto caudio_in = vb.queue("CAudioIn");
  auto cvideo_out = vb.queue("CVideoOut");
  auto caudio_out = vb.queue("CAudioOut");
  auto cregion = vb.queue("CRegion");

  vb.process("PAerial")
      .mark_virtual()
      .latency(Duration::zero())
      .produces(antenna, 1)
      .min_period(options.frame_period)
      .max_firings(options.frames);

  // Tuner splits the broadcast signal into a video and an audio stream.
  vb.process("PTuner")
      .latency(Duration::millis(1))
      .consumes(antenna, 1)
      .produces(cvideo_in, 1)
      .produces(caudio_in, 1);

  const char* region_tag = options.region == 0 ? "PAL" : options.region == 1 ? "NTSC" : "SECAM";
  vb.process("PBoot")
      .mark_virtual()
      .latency(Duration::zero())
      .produces(cregion, 1, {region_tag})
      .max_firings(1);

  // --- video variant set ---------------------------------------------------
  auto video = vb.interface("video");
  vb.port(video, "in", PortDir::kInput, cvideo_in);
  vb.port(video, "out", PortDir::kOutput, cvideo_out);
  vb.port(video, "sel", PortDir::kInput, cregion);

  struct Standard {
    const char* cluster;
    const char* demod;
    const char* decode;
    int lat_demod_ms;
    int lat_decode_ms;
  };
  const Standard standards[3] = {
      {"pal", "PPalDemod", "PPalDecode", 2, 3},
      {"ntsc", "PNtscDemod", "PNtscDecode", 2, 2},
      {"secam", "PSecamDemod", "PSecamDecode", 3, 3},
  };
  for (const Standard& s : standards) {
    auto scope = vb.begin_cluster(video, s.cluster);
    auto mid = vb.queue(std::string("CV_") + s.cluster);
    vb.process(s.demod)
        .latency(Duration::millis(s.lat_demod_ms))
        .consumes(cvideo_in, 1)
        .produces(mid, 1);
    vb.process(s.decode)
        .latency(Duration::millis(s.lat_decode_ms))
        .consumes(mid, 1)
        .produces(cvideo_out, 1);
    (void)scope;
  }
  vb.selection_rule(video, "selPAL", Predicate::has_tag(cregion, vb.tag("PAL")), "pal");
  vb.selection_rule(video, "selNTSC", Predicate::has_tag(cregion, vb.tag("NTSC")), "ntsc");
  vb.selection_rule(video, "selSECAM", Predicate::has_tag(cregion, vb.tag("SECAM")), "secam");
  vb.t_conf(video, "pal", Duration::millis(4));
  vb.t_conf(video, "ntsc", Duration::millis(4));
  vb.t_conf(video, "secam", Duration::millis(5));

  // --- audio variant set -----------------------------------------------------
  auto audio = vb.interface("audio");
  vb.port(audio, "in", PortDir::kInput, caudio_in);
  vb.port(audio, "out", PortDir::kOutput, caudio_out);
  vb.port(audio, "sel", PortDir::kInput, cregion);

  const char* audio_names[3] = {"audio_pal", "audio_ntsc", "audio_secam"};
  const char* audio_procs[3] = {"PAudioPal", "PAudioNtsc", "PAudioSecam"};
  for (int k = 0; k < 3; ++k) {
    auto scope = vb.begin_cluster(audio, audio_names[k]);
    vb.process(audio_procs[k])
        .latency(Duration::millis(1))
        .consumes(caudio_in, 1)
        .produces(caudio_out, 1);
    (void)scope;
  }
  vb.selection_rule(audio, "selPAL", Predicate::has_tag(cregion, vb.tag("PAL")), "audio_pal");
  vb.selection_rule(audio, "selNTSC", Predicate::has_tag(cregion, vb.tag("NTSC")),
                    "audio_ntsc");
  vb.selection_rule(audio, "selSECAM", Predicate::has_tag(cregion, vb.tag("SECAM")),
                    "audio_secam");
  vb.t_conf(audio, "audio_pal", Duration::millis(1));
  vb.t_conf(audio, "audio_ntsc", Duration::millis(1));
  vb.t_conf(audio, "audio_secam", Duration::millis(1));

  // Region selects video and audio together.
  vb.link(video, audio);

  // --- common back end ---------------------------------------------------------
  vb.process("PDisplay").latency(Duration::millis(2)).consumes(cvideo_out, 1);
  vb.process("PSpeaker").latency(Duration::millis(1)).consumes(caudio_out, 1);

  return vb.take();
}

synth::ImplLibrary tv_library() {
  synth::ImplLibrary lib;
  lib.processor_cost = 20.0;
  lib.processor_budget = 1.0;

  lib.add("PTuner", {.sw_load = 0.15, .sw_wcet = Duration::millis(1), .hw_cost = 12.0,
                     .hw_wcet = Duration::micros(200)});
  lib.add("PDisplay", {.sw_load = 0.40, .sw_wcet = Duration::millis(2), .hw_cost = 18.0,
                       .hw_wcet = Duration::micros(500)});
  lib.add("PSpeaker", {.sw_load = 0.10, .sw_wcet = Duration::millis(1), .hw_cost = 14.0,
                       .hw_wcet = Duration::micros(300)});

  lib.add("pal", {.sw_load = 0.45, .sw_wcet = Duration::millis(5), .hw_cost = 22.0,
                  .hw_wcet = Duration::millis(1)});
  lib.add("ntsc", {.sw_load = 0.40, .sw_wcet = Duration::millis(4), .hw_cost = 21.0,
                   .hw_wcet = Duration::millis(1)});
  lib.add("secam", {.sw_load = 0.50, .sw_wcet = Duration::millis(6), .hw_cost = 24.0,
                    .hw_wcet = Duration::millis(1)});

  lib.add("audio_pal", {.sw_load = 0.10, .sw_wcet = Duration::millis(1), .hw_cost = 9.0,
                        .hw_wcet = Duration::micros(200)});
  lib.add("audio_ntsc", {.sw_load = 0.10, .sw_wcet = Duration::millis(1), .hw_cost = 9.0,
                         .hw_wcet = Duration::micros(200)});
  lib.add("audio_secam", {.sw_load = 0.12, .sw_wcet = Duration::millis(1), .hw_cost = 10.0,
                          .hw_wcet = Duration::micros(200)});
  return lib;
}

}  // namespace spivar::models
