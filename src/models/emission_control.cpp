#include "models/emission_control.hpp"

#include "spi/builder.hpp"

namespace spivar::models {

using support::Duration;
using support::DurationInterval;
using variant::PortDir;

variant::VariantModel make_emission_control(const EmissionOptions& options) {
  variant::VariantBuilder vb{"emission-control"};

  auto crank = vb.queue("CCrank");
  auto sensors = vb.queue("CSensors");
  auto mixture = vb.queue("CMixture");
  auto corrected = vb.queue("CCorrected");
  auto inject = vb.queue("CInject");

  vb.process("PCrank")
      .mark_virtual()
      .latency(DurationInterval{Duration::zero()})
      .produces(crank, 1)
      .min_period(options.sample_period)
      .max_firings(options.samples);

  // Common part: sensor fusion and mixture computation before the variant,
  // injector driver after it.
  vb.process("PSample")
      .latency(DurationInterval{Duration::micros(300), Duration::micros(500)})
      .consumes(crank, 1)
      .produces(sensors, 1);
  vb.process("PMixture")
      .latency(DurationInterval{Duration::micros(400), Duration::micros(700)})
      .consumes(sensors, 1)
      .produces(mixture, 1);

  auto law = vb.interface("emission-law");
  vb.port(law, "in", PortDir::kInput, mixture);
  vb.port(law, "out", PortDir::kOutput, corrected);

  {
    auto scope = vb.begin_cluster(law, "eu");
    auto lambda = vb.queue("CLambdaEu");
    auto cat = vb.queue("CCatEu");
    vb.process("PLambdaEu")
        .latency(DurationInterval{Duration::micros(500), Duration::micros(800)})
        .consumes(mixture, 1)
        .produces(lambda, 1);
    vb.process("PCatModelEu")
        .latency(DurationInterval{Duration::micros(600), Duration::micros(900)})
        .consumes(lambda, 1)
        .produces(cat, 1);
    vb.process("PLimitEu")
        .latency(DurationInterval{Duration::micros(200), Duration::micros(300)})
        .consumes(cat, 1)
        .produces(corrected, 1);
    (void)scope;
  }
  {
    auto scope = vb.begin_cluster(law, "us");
    auto table = vb.queue("CTableUs");
    vb.process("PLookupUs")
        .latency(DurationInterval{Duration::micros(900), Duration::millis(2)})
        .consumes(mixture, 1)
        .produces(table, 1);
    vb.process("PLimitUs")
        .latency(DurationInterval{Duration::micros(300), Duration::micros(400)})
        .consumes(table, 1)
        .produces(corrected, 1);
    (void)scope;
  }
  {
    auto scope = vb.begin_cluster(law, "none");
    vb.process("PPassthrough")
        .latency(DurationInterval{Duration::micros(100)})
        .consumes(mixture, 1)
        .produces(corrected, 1);
    (void)scope;
  }

  vb.process("PInjector")
      .latency(DurationInterval{Duration::micros(200), Duration::micros(400)})
      .consumes(corrected, 1)
      .produces(inject, 1);
  vb.process("PActuator")
      .mark_virtual()
      .latency(DurationInterval{Duration::zero()})
      .consumes(inject, 1);

  // Sensor-to-injector deadline: crosses the interface, so it constrains
  // every variant after flattening.
  vb.graph_builder().latency_constraint("sensor-to-injector",
                                        {"PSample", "PMixture"}, Duration::millis(4));
  return vb.take();
}

synth::ImplLibrary emission_library() {
  synth::ImplLibrary lib;
  lib.processor_cost = 12.0;
  lib.processor_budget = 1.0;

  lib.add("PSample", {.sw_load = 0.15, .sw_wcet = Duration::micros(500), .hw_cost = 8.0,
                      .hw_wcet = Duration::micros(100)});
  lib.add("PMixture", {.sw_load = 0.20, .sw_wcet = Duration::micros(700), .hw_cost = 11.0,
                       .hw_wcet = Duration::micros(150)});
  lib.add("PInjector", {.sw_load = 0.10, .sw_wcet = Duration::micros(400), .hw_cost = 7.0,
                        .hw_wcet = Duration::micros(80)});

  lib.add("PLambdaEu", {.sw_load = 0.25, .sw_wcet = Duration::micros(800), .hw_cost = 9.0,
                        .hw_wcet = Duration::micros(200)});
  lib.add("PCatModelEu", {.sw_load = 0.30, .sw_wcet = Duration::micros(900), .hw_cost = 13.0,
                          .hw_wcet = Duration::micros(250)});
  lib.add("PLimitEu", {.sw_load = 0.08, .sw_wcet = Duration::micros(300), .hw_cost = 5.0,
                       .hw_wcet = Duration::micros(60)});

  // 0.50 makes the US variant overload the processor in software too
  // (0.15+0.20+0.10+0.50+0.10 = 1.05), so both law variants need one repair
  // move — independently they pick their variant-specific limiter ASICs,
  // jointly one shared PInjector ASIC fixes both markets at once.
  lib.add("PLookupUs", {.sw_load = 0.50, .sw_wcet = Duration::millis(2), .hw_cost = 16.0,
                        .hw_wcet = Duration::micros(400)});
  lib.add("PLimitUs", {.sw_load = 0.10, .sw_wcet = Duration::micros(400), .hw_cost = 5.0,
                       .hw_wcet = Duration::micros(80)});

  lib.add("PPassthrough", {.sw_load = 0.02, .sw_wcet = Duration::micros(100), .hw_cost = 2.0,
                           .hw_wcet = Duration::micros(20)});
  return lib;
}

}  // namespace spivar::models
