#include "models/fig1.hpp"

#include "spi/builder.hpp"

namespace spivar::models {

using support::Duration;
using support::Interval;

spi::Graph make_fig1(const Fig1Options& options) {
  spi::GraphBuilder b{"fig1"};

  auto cin = b.queue("cin");
  auto c1 = b.queue("c1");
  auto c2 = b.queue("c2");

  b.process("PSrc")
      .mark_virtual()
      .latency(Duration::zero())
      .produces(cin, 1)
      .min_period(options.source_period)
      .max_firings(options.source_firings);

  // p1: determinate, 1 in / 2 out, 1ms; attaches the configured tag.
  {
    auto p1 = b.process("p1");
    if (options.tagged) {
      const char tag_name[2] = {options.tag, '\0'};
      p1.latency(Duration::millis(1)).consumes(cin, 1).produces(c1, 2, {tag_name});
    } else {
      p1.latency(Duration::millis(1)).consumes(cin, 1).produces(c1, 2);
    }
  }

  // p2: two modes with correlated parameters and tag-driven activation.
  {
    auto p2 = b.process("p2");
    const auto in = p2.input(c1);
    const auto out = p2.output(c2);
    (void)in;
    (void)out;
    p2.mode("m1").latency(Duration::millis(3)).consume(c1, 1).produce(c2, 2);
    p2.mode("m2").latency(Duration::millis(5)).consume(c1, 3).produce(c2, 5);
    p2.rule("a1",
            spi::Predicate::num_at_least(c1, 1) && spi::Predicate::has_tag(c1, b.tag("a")),
            "m1");
    p2.rule("a2",
            spi::Predicate::num_at_least(c1, 3) && spi::Predicate::has_tag(c1, b.tag("b")),
            "m2");
  }

  // p3: sink, 3ms.
  b.process("p3").latency(Duration::millis(3)).consumes(c2, 1);

  b.latency_constraint("end-to-end", {"p1", "p2", "p3"}, Duration::millis(12));
  return b.take();
}

}  // namespace spivar::models
