// Figure 4 of the paper: the industrial reconfigurable video system.
//
//   VIn -> CVin -> PIn -> CV1 -> P1 -> CV2 -> P2 -> CV3 -> POut -> CVout -> VOut
//                   ^                                        ^
//            CIn (register)                           COut (register)
//                   \----------- PControl (CCTRL self-loop) -----------/
//                        CReq1/CCon1 to P1, CReq2/CCon2 to P2, CUser from PUser
//
// P1 and P2 are the abstracted chain processes: each carries two Def. 4
// configurations (variant A and variant B) whose modes were extracted from
// the corresponding function variants. A request token tagged 'VA'/'VB' on
// CReq_i activates the acknowledge mode of the requested variant; if that
// mode lies outside conf_cur the reconfiguration latency is added to the
// execution, after which the confirm token on CCon_i is produced "as part of
// the selected mode" (§5).
//
// PControl is the higher-level controller: on a user request it sends
// 'suspend' to the valves and reconfiguration requests to P1/P2, waits for
// both confirmations (state kept via the CCTRL self-loop register), then
// resumes the valves.
//
// Valves: PIn destroys input frames while suspended. POut replaces frames
// with the last complete image. Frames are stamped by P1 with its current
// variant ('fA'/'fB'); P2 stamps 'ok' when the frame's P1-variant matches
// its own and 'invalid' otherwise. POut never passes an 'invalid' frame.
// (The paper marks the first clean frame with a tag added by PIn; we detect
// cleanliness with the variant stamps instead — same protective behavior,
// fewer modes.)
//
// The options toggle both valves so the protocol's effect is measurable: with
// valves, zero invalid frames reach VOut; without, mismatched in-flight
// frames leak out during reconfiguration.
#pragma once

#include <cstdint>

#include "sim/stats.hpp"
#include "support/duration.hpp"
#include "variant/model.hpp"

namespace spivar::models {

struct VideoOptions {
  std::int64_t frames = 200;                 ///< frames produced by VIn
  support::Duration frame_period = support::Duration::millis(40);   // 25 fps
  std::int64_t requests = 4;                 ///< user reconfiguration requests
  support::Duration request_period = support::Duration::millis(900);
  support::Duration t_conf = support::Duration::millis(5);  ///< P1/P2 reconfiguration latency
  bool input_valve = true;   ///< PIn drops frames while suspended
  bool output_valve = true;  ///< POut masks invalid frames with repeats
};

/// The video system is a flat SPI graph (P1/P2 are already-abstracted
/// processes with configurations, as in §5 of the paper).
[[nodiscard]] spi::Graph make_video_system(const VideoOptions& options = {});

/// Output frame classes and reconfiguration effort of one simulated run.
struct VideoOutcome {
  std::int64_t ok_frames = 0;        ///< consistent frames passed through
  std::int64_t repeat_frames = 0;    ///< frames masked by the output valve
  std::int64_t invalid_frames = 0;   ///< mismatched frames that leaked out
  std::int64_t dropped_inputs = 0;   ///< frames destroyed by the input valve
  std::int64_t reconfigurations = 0; ///< P1+P2 configuration switches
  support::Duration reconfig_time = support::Duration::zero();
};

/// Harvests the outcome counters from a finished simulation of the model.
[[nodiscard]] VideoOutcome harvest_video_outcome(const spi::Graph& graph,
                                                 const sim::SimResult& result);

}  // namespace spivar::models
