// Figures 2/3 of the paper and the Table 1 synthesis inputs.
//
// Figure 2 — a system with two function variants:
//
//   PSrc -> CIn -> PA -> Ci -> [Interface theta] -> Co -> PB -> COut
//
// where interface `theta` carries cluster1 (processes P1a -> P1b) and
// cluster2 (P2a -> P2b -> P2c), both port-compatible {i: Ci, o: Co}.
//
// Figure 3 adds run-time variant selection: a virtual user process writes
// one token tagged 'V1' or 'V2' on channel CV; the interface's cluster
// selection function maps the tag to a cluster, paying the configuration
// latency t_conf.
//
// Table 1 — the implementation library calibrated so that *optimal* synthesis
// reproduces the paper's numbers: processor cost 15; ASIC costs theta1=19,
// theta2=23, PA=26; software loads make each application infeasible fully in
// software. Independent synthesis then picks {PA,PB}->SW + theta_i->HW
// (totals 34/38), superposition accumulates both ASICs (57), and joint
// variant-aware synthesis discovers PA->HW + {theta1,theta2,PB}->SW (41),
// because the mutually exclusive clusters share the processor.
#pragma once

#include <cstdint>

#include "support/duration.hpp"
#include "synth/target.hpp"
#include "variant/model.hpp"

namespace spivar::models {

struct Fig2Options {
  support::Duration source_period = support::Duration::millis(10);
  std::int64_t source_firings = 50;
};

/// Figure 2: production-variant system (no selection function).
[[nodiscard]] variant::VariantModel make_fig2(const Fig2Options& options = {});

struct Fig3Options : Fig2Options {
  /// Which variant the user selects at start-up: 1 or 2.
  int user_choice = 1;
  /// Configuration latencies (Def. 3).
  support::Duration t_conf1 = support::Duration::millis(2);
  support::Duration t_conf2 = support::Duration::millis(3);
};

/// Figure 3: the same system with run-time variant selection via PUser/CV.
[[nodiscard]] variant::VariantModel make_fig3(const Fig3Options& options = {});

/// The calibrated Table 1 implementation library (cluster-atomic elements
/// "PA", "PB", "cluster1", "cluster2").
[[nodiscard]] synth::ImplLibrary table1_library();

/// The two applications of Table 1 (Application 1 uses cluster1, Application
/// 2 uses cluster2), derived from the Figure 2 model.
[[nodiscard]] synth::SynthesisProblem table1_problem();

}  // namespace spivar::models
