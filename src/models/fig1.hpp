// Figure 1 of the paper: the introductory SPI example.
//
//   PSrc --cin--> p1 --c1--> p2 --c2--> p3
//
// p1 is fully determinate: consumes 1 token, produces 2, latency 1 ms. p2 is
// specified with intervals — consumption [1,3], production [2,5], latency
// [3,5] ms — refined into two modes:
//
//   m1: latency 3 ms, consumes 1, produces 2   (enabled by tag 'a')
//   m2: latency 5 ms, consumes 3, produces 5   (enabled by tag 'b')
//
// p1 adds tag 'a' or 'b' to every produced token (chosen by Fig1Options), so
// p2's behavior is completely determinate, exactly as §2 argues.
#pragma once

#include <cstdint>

#include "spi/graph.hpp"
#include "support/duration.hpp"

namespace spivar::models {

struct Fig1Options {
  /// Tag p1 attaches to produced tokens: 'a' enables m1, 'b' enables m2.
  char tag = 'a';
  /// When false, p1 attaches no tag: p2 has no enabled rule and never runs —
  /// the "no tag on the first visible token" situation discussed in §2.
  bool tagged = true;
  /// Environment pacing of the virtual source.
  support::Duration source_period = support::Duration::millis(10);
  std::int64_t source_firings = 100;
};

[[nodiscard]] spi::Graph make_fig1(const Fig1Options& options = {});

}  // namespace spivar::models
