// Automotive engine controller with emission-law variants — the paper's
// second motivating example ("automotive control systems to be used in
// countries with different emission laws", §1).
//
// Production variants: the variant is burned into the ECU at production
// time (no selection machinery in the final product — flattening). The
// common part samples sensors and drives the injectors; the variant part is
// the emission strategy:
//
//   * "eu"  — two-stage strategy: lambda correction + catalyst model
//             (3 processes, tighter timing)
//   * "us"  — single-stage strategy with a bigger lookup process
//   * "none" — passthrough calibration for markets without a law
//
// A latency constraint from sensor to injector crosses the interface; the
// per-variant flattened systems must all satisfy it, which couples the
// variant choice to the timing analysis — exactly the situation where a
// single variant-annotated model pays off.
#pragma once

#include "support/duration.hpp"
#include "synth/target.hpp"
#include "variant/model.hpp"

namespace spivar::models {

struct EmissionOptions {
  std::int64_t samples = 60;  ///< sensor samples produced by the crank source
  support::Duration sample_period = support::Duration::millis(4);
};

[[nodiscard]] variant::VariantModel make_emission_control(const EmissionOptions& options = {});

/// Implementation library (process granularity) for the ECU synthesis
/// example.
[[nodiscard]] synth::ImplLibrary emission_library();

}  // namespace spivar::models
