// Multi-standard TV set — the motivating example of the paper's §1.
//
// Two *related* variant sets (paper: "There may be several of those variant
// sets in one embedded system ... The variant selection for these sets may
// be related or independent"):
//
//   * video decoding: PAL / NTSC / SECAM   (interface "video")
//   * audio decoding: one variant per region (interface "audio")
//
// The interfaces are linked: selecting region k binds both to position k, so
// the system has 3 consistent bindings, not 9. Selection is a run-time
// variant: a boot process writes one region token observed by both
// interfaces.
//
// The companion implementation library is calibrated so that variant-aware
// synthesis shares a hardware color decoder across regions while the
// mutually exclusive standard-specific demodulators stay in software.
#pragma once

#include <cstdint>

#include "support/duration.hpp"
#include "synth/target.hpp"
#include "variant/model.hpp"

namespace spivar::models {

struct TvOptions {
  /// Region selected at boot: 0 = PAL, 1 = NTSC, 2 = SECAM.
  int region = 0;
  support::Duration frame_period = support::Duration::millis(20);
  std::int64_t frames = 50;
};

[[nodiscard]] variant::VariantModel make_multistandard_tv(const TvOptions& options = {});

/// Implementation library for the TV synthesis example (element names match
/// the model's processes; cluster-atomic names are "pal", "ntsc", "secam",
/// "audio_pal", "audio_ntsc", "audio_secam").
[[nodiscard]] synth::ImplLibrary tv_library();

}  // namespace spivar::models
