#include "obs/trace.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <iostream>
#include <utility>

#include "support/json.hpp"

namespace spivar::obs {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t micros_between(Clock::time_point start, Clock::time_point end) {
  if (end <= start) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start).count());
}

/// Spans per trace are bounded so a pathological evaluation (a retry loop
/// spilling thousands of times) cannot grow a request's trace without
/// limit; the request-shaped spans (queue/probe/eval/spill) fit easily.
constexpr std::size_t kMaxSpans = 32;

thread_local TraceContext* t_current_trace = nullptr;

}  // namespace

TraceContext::TraceContext(std::uint64_t id, std::string tenant, std::string kind,
                           std::string target)
    : id_(id), tenant_(std::move(tenant)), kind_(std::move(kind)), target_(std::move(target)),
      born_(Clock::now()) {}

void TraceContext::end_queue_wait() {
  if (queued_at_ == Clock::time_point{}) return;
  add_span(SpanKind::kQueueWait, queued_at_, Clock::now());
}

void TraceContext::add_span(SpanKind kind, Clock::time_point start, Clock::time_point end) {
  std::lock_guard lock{mutex_};
  if (spans_.size() >= kMaxSpans) return;
  spans_.push_back(Span{.kind = kind,
                        .start_us = micros_between(born_, start),
                        .duration_us = micros_between(start, end)});
}

std::vector<Span> TraceContext::spans() const {
  std::lock_guard lock{mutex_};
  return spans_;
}

TraceContext* current_trace() noexcept { return t_current_trace; }

TraceScope::TraceScope(TraceContext* trace) noexcept : previous_(t_current_trace) {
  if (trace != nullptr) t_current_trace = trace;
}

TraceScope::~TraceScope() { t_current_trace = previous_; }

// --- Tracer ------------------------------------------------------------------

Tracer::Tracer(TracerConfig config) : config_(std::move(config)) {
  config_.ring = std::max<std::size_t>(config_.ring, 1);
  ring_.resize(config_.ring);
  if (!config_.log_path.empty()) {
    log_fd_ = ::open(config_.log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (log_fd_ < 0) {
      std::cerr << "warning: cannot open trace log '" << config_.log_path << "': "
                << std::strerror(errno) << "\n";
    }
  }
}

Tracer::~Tracer() {
  if (log_fd_ >= 0) ::close(log_fd_);
}

std::shared_ptr<TraceContext> Tracer::begin(std::string tenant, std::string kind,
                                            std::string target) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<TraceContext>(id, std::move(tenant), std::move(kind),
                                        std::move(target));
}

std::optional<std::uint64_t> Tracer::finish(const std::shared_ptr<TraceContext>& trace,
                                            bool ok) {
  if (!trace || !trace->try_finish()) return std::nullopt;
  TraceRecord record{.id = trace->id(),
                     .tenant = trace->tenant(),
                     .kind = trace->kind(),
                     .target = trace->target(),
                     .total_us = micros_between(trace->born(), Clock::now()),
                     .ok = ok,
                     .spans = trace->spans()};
  const std::uint64_t total_us = record.total_us;
  const bool slow = log_fd_ >= 0 && total_us >= config_.slow_threshold_us;
  if (slow) log_slow(record);
  {
    std::lock_guard lock{mutex_};
    last_slot_ = next_slot_;
    ring_[next_slot_] = std::move(record);
    next_slot_ = (next_slot_ + 1) % ring_.size();
    ++completed_;
  }
  return total_us;
}

std::optional<TraceRecord> Tracer::last() const {
  std::lock_guard lock{mutex_};
  if (completed_ == 0) return std::nullopt;
  return ring_[last_slot_];
}

std::optional<TraceRecord> Tracer::slowest() const {
  std::lock_guard lock{mutex_};
  if (completed_ == 0) return std::nullopt;
  const std::size_t held = std::min<std::uint64_t>(completed_, ring_.size());
  std::size_t best = last_slot_;
  for (std::size_t i = 0; i < held; ++i) {
    if (ring_[i].total_us > ring_[best].total_us) best = i;
  }
  return ring_[best];
}

std::optional<TraceRecord> Tracer::find(std::uint64_t id) const {
  std::lock_guard lock{mutex_};
  const std::size_t held = std::min<std::uint64_t>(completed_, ring_.size());
  for (std::size_t i = 0; i < held; ++i) {
    if (ring_[i].id == id) return ring_[i];
  }
  return std::nullopt;
}

void Tracer::log_slow(const TraceRecord& record) {
  std::string line = to_json(record);
  line += "\n";
  std::lock_guard lock{log_mutex_};
  // One write() per line, O_APPEND: lines stay whole across threads and a
  // killed process loses at most the line being written.
  const char* data = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    const ssize_t wrote = ::write(log_fd_, data, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      std::cerr << "warning: trace log write failed: " << std::strerror(errno) << "\n";
      break;
    }
    data += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
}

std::string render(const TraceRecord& record) {
  std::string out = "trace " + std::to_string(record.id) + "  tenant " + record.tenant +
                    "  kind " + record.kind;
  if (!record.target.empty()) out += "  target " + record.target;
  out += "  total-us " + std::to_string(record.total_us) + (record.ok ? "  ok" : "  error");
  out += "\n";
  for (const Span& span : record.spans) {
    out += "  span " + std::string{to_string(span.kind)} + "  start-us " +
           std::to_string(span.start_us) + "  duration-us " + std::to_string(span.duration_us) +
           "\n";
  }
  if (record.spans.empty()) out += "  (no spans recorded)\n";
  return out;
}

std::string to_json(const TraceRecord& record) {
  support::JsonWriter json{0};
  json.begin_object();
  json.key("id").value(record.id);
  json.key("tenant").value(record.tenant);
  json.key("kind").value(record.kind);
  json.key("target").value(record.target);
  json.key("total_us").value(record.total_us);
  json.key("ok").value(record.ok);
  json.key("spans").begin_array();
  for (const Span& span : record.spans) {
    json.begin_object();
    json.key("span").value(to_string(span.kind));
    json.key("start_us").value(span.start_us);
    json.key("duration_us").value(span.duration_us);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.take();
}

}  // namespace spivar::obs
