// obs::MetricsServer — the scrape endpoint behind `spivar_serve
// --metrics-port`: a minimal HTTP/1.0 responder on the loopback interface
// that answers every request (any path, any method — or none at all, for
// raw-TCP scrapes) with the Prometheus text exposition the supplied
// callback renders. One accept thread, one connection at a time: scrapes
// are rare, short, and must never compete with the serve path for workers.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "service/tcp.hpp"

namespace spivar::obs {

class MetricsServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept thread.
  /// `body` renders the exposition text, called once per scrape.
  MetricsServer(std::uint16_t port, std::function<std::string()> body);
  ~MetricsServer();

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// False when the port could not be bound (the thread never started).
  [[nodiscard]] bool ok() const noexcept { return listener_.valid(); }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  void serve_loop();

  service::Socket listener_;
  std::uint16_t port_ = 0;
  std::function<std::string()> body_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace spivar::obs
