#include "obs/exposition.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <string>
#include <utility>

namespace spivar::obs {

MetricsServer::MetricsServer(std::uint16_t port, std::function<std::string()> body)
    : listener_(service::listen_loopback(port)), body_(std::move(body)) {
  if (!listener_.valid()) return;
  port_ = service::bound_port(listener_);
  thread_ = std::thread{[this] { serve_loop(); }};
}

MetricsServer::~MetricsServer() {
  stop_.store(true, std::memory_order_release);
  if (listener_.valid()) ::shutdown(listener_.fd(), SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
}

namespace {

void write_all(int fd, const std::string& data) {
  const char* cursor = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t wrote = ::write(fd, cursor, left);
    if (wrote < 0 && errno == EINTR) continue;
    if (wrote <= 0) return;  // scraper went away; nothing to salvage
    cursor += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
}

}  // namespace

void MetricsServer::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    service::Socket client = service::accept_client(listener_);
    if (!client.valid()) {
      if (stop_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener torn down
    }
    // Drain whatever request head arrives (curl sends "GET ... \r\n\r\n";
    // a raw `nc` scrape may send nothing). A short receive timeout keeps a
    // silent client from parking the scrape thread: after it, the body is
    // served anyway — every connection gets the exposition.
    timeval timeout{.tv_sec = 0, .tv_usec = 200'000};
    ::setsockopt(client.fd(), SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    char scratch[1024];
    std::string head;
    while (head.find("\r\n\r\n") == std::string::npos &&
           head.find("\n\n") == std::string::npos && head.size() < 8192) {
      const ssize_t n = ::read(client.fd(), scratch, sizeof scratch);
      if (n <= 0) break;  // EOF, timeout, or error — serve the body regardless
      head.append(scratch, static_cast<std::size_t>(n));
    }

    const std::string text = body_ ? body_() : std::string{};
    std::string response = "HTTP/1.0 200 OK\r\n";
    response += "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
    response += "Content-Length: " + std::to_string(text.size()) + "\r\n";
    response += "Connection: close\r\n\r\n";
    response += text;
    write_all(client.fd(), response);
    ::shutdown(client.fd(), SHUT_WR);
  }
}

}  // namespace spivar::obs
