#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace spivar::obs {

support::LatencyHistogram Histogram::snapshot() const noexcept {
  support::LatencyHistogram snapshot;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t n = counts_[i].load(std::memory_order_relaxed);
    if (n != 0) snapshot.add_bucket(i, n);
  }
  if (snapshot.count() != 0) {
    snapshot.note_range(min_.load(std::memory_order_relaxed),
                        max_.load(std::memory_order_relaxed));
  }
  return snapshot;
}

template <typename T>
T& MetricsRegistry::instrument(const std::string& name, const std::string& help, Labels&& labels,
                               Type type, std::deque<T>& storage) {
  std::lock_guard lock{mutex_};
  auto family = std::lower_bound(
      families_.begin(), families_.end(), name,
      [](const auto& entry, const std::string& key) { return entry.first < key; });
  if (family == families_.end() || family->first != name) {
    family = families_.insert(family, {name, Family{help, type, {}}});
  }
  for (const Instrument& existing : family->second.instruments) {
    if (existing.labels == labels) return storage[existing.slot];
  }
  storage.emplace_back();
  family->second.instruments.push_back({std::move(labels), storage.size() - 1});
  return storage.back();
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help,
                                  Labels labels) {
  return instrument(name, help, std::move(labels), Type::kCounter, counters_);
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help, Labels labels) {
  return instrument(name, help, std::move(labels), Type::kGauge, gauges_);
}

Histogram& MetricsRegistry::histogram(const std::string& name, const std::string& help,
                                      Labels labels) {
  return instrument(name, help, std::move(labels), Type::kHistogram, histograms_);
}

void MetricsRegistry::add_collector(std::function<void()> collector) {
  std::lock_guard lock{collectors_mutex_};
  collectors_.push_back(std::move(collector));
}

namespace {

/// `{k="v",k2="v2"}` (empty labels render nothing). Values are escaped per
/// the exposition format: backslash, double quote, newline.
std::string render_labels(const Labels& labels, const char* extra_key = nullptr,
                          const char* extra_value = nullptr) {
  if (labels.empty() && extra_key == nullptr) return {};
  std::string out = "{";
  bool first = true;
  const auto append = [&](const std::string& key, const std::string& value) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"";
    for (const char c : value) {
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += "\"";
  };
  for (const Label& label : labels) append(label.key, label.value);
  if (extra_key != nullptr) append(extra_key, extra_value);
  out += "}";
  return out;
}

std::string render_double(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.10g", value);
  return buffer;
}

}  // namespace

std::string MetricsRegistry::render() {
  // Collectors run outside the registry lock: they call counter()/gauge()
  // themselves (get-or-create takes the lock briefly), and each samples one
  // consistent snapshot of the struct it republishes.
  std::vector<std::function<void()>> collectors;
  {
    std::lock_guard lock{collectors_mutex_};
    collectors = collectors_;
  }
  for (const auto& collector : collectors) collector();

  std::lock_guard lock{mutex_};
  std::string out;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " ";
    switch (family.type) {
      case Type::kCounter: out += "counter\n"; break;
      case Type::kGauge: out += "gauge\n"; break;
      // The log-bucketed histogram exposes client-computed quantiles — the
      // Prometheus *summary* shape (a native histogram would need `le`
      // buckets; 4096 of them per series is scrape abuse).
      case Type::kHistogram: out += "summary\n"; break;
    }
    for (const Instrument& instrument : family.instruments) {
      switch (family.type) {
        case Type::kCounter:
          out += name + render_labels(instrument.labels) + " " +
                 std::to_string(counters_[instrument.slot].value()) + "\n";
          break;
        case Type::kGauge:
          out += name + render_labels(instrument.labels) + " " +
                 std::to_string(gauges_[instrument.slot].value()) + "\n";
          break;
        case Type::kHistogram: {
          const support::LatencyHistogram snapshot = histograms_[instrument.slot].snapshot();
          static constexpr std::pair<const char*, double> kQuantiles[] = {
              {"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}, {"0.999", 0.999}};
          for (const auto& [label, q] : kQuantiles) {
            out += name + render_labels(instrument.labels, "quantile", label) + " " +
                   std::to_string(snapshot.quantile(q)) + "\n";
          }
          // _sum is reconstructed from bucket midpoints (< 1.6% off) — good
          // enough for rate(sum)/rate(count) dashboards.
          out += name + "_sum" + render_labels(instrument.labels) + " " +
                 render_double(snapshot.mean() * static_cast<double>(snapshot.count())) + "\n";
          out += name + "_count" + render_labels(instrument.labels) + " " +
                 std::to_string(snapshot.count()) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace spivar::obs
