// obs::MetricsRegistry — the one observability surface every subsystem
// publishes through (ROADMAP: "a serving stack at this complexity needs one
// observability layer").
//
// Three instrument kinds, all safe for concurrent writers:
//
//   * Counter   — a monotonic u64; add() is one relaxed fetch_add.
//   * Gauge     — a settable i64 point-in-time value.
//   * Histogram — the log-bucketed LatencyHistogram shape with atomic
//                 buckets, so request threads record() concurrently and a
//                 scrape snapshots into a plain support::LatencyHistogram
//                 for quantiles.
//
// Registration happens once (name + label set → one instrument, deduped),
// and callers keep the returned handle — the hot path never touches the
// registry's mutex again, it pays exactly one atomic add:
//
//   obs::Counter& hits = registry.counter("spivar_cache_hits_total",
//                                         "lookups served from cache");
//   ...
//   hits.add();                            // the hot path
//
// Subsystems that already keep their own stats structs (ExecutorStats,
// CacheStats, ...) re-publish through *collectors*: a collector callback
// registered with add_collector() runs at the start of every render() and
// set()s gauges / counters from one consistent stats() snapshot — the
// existing structs stay the single source of truth and the scrape can never
// disagree with the `executor-stats`/`cache-stats` controls sampled at the
// same moment.
//
// render() emits Prometheus text exposition format: counters and gauges as
// single samples, histograms as summaries (quantile series + _sum/_count).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/latency_histogram.hpp"

namespace spivar::obs {

/// One `key="value"` label pair. Tenant and request kind are the label
/// dimensions the service uses; arbitrary pairs are allowed.
struct Label {
  std::string key;
  std::string value;

  friend bool operator==(const Label&, const Label&) noexcept = default;
};

using Labels = std::vector<Label>;

/// Monotonic counter. add() is the hot-path entry (one relaxed fetch_add);
/// set() exists for collectors that republish an externally accumulated
/// monotonic total (ExecutorStats::completed and friends).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  void set(std::uint64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value (queue depth, entries held, workers).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Concurrent-writer histogram: the LatencyHistogram bucket shape with
/// atomic counts. record() is an index computation plus one relaxed
/// fetch_add (plus two CAS loops for min/max — contended only while the
/// extremes are still moving). snapshot() sums the buckets into a plain
/// LatencyHistogram for quantile math; concurrent records may or may not be
/// included, each at-most-once — the usual monitoring contract.
class Histogram {
 public:
  void record(std::uint64_t value) noexcept {
    counts_[support::LatencyHistogram::index_of(value)].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
    update_min(value);
    update_max(value);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] support::LatencyHistogram snapshot() const noexcept;

 private:
  void update_min(std::uint64_t value) noexcept {
    std::uint64_t prev = min_.load(std::memory_order_relaxed);
    while (value < prev &&
           !min_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
    }
  }
  void update_max(std::uint64_t value) noexcept {
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (value > prev &&
           !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, support::LatencyHistogram::kSlots> counts_{};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create: the same (name, labels) always returns the same
  /// instrument, so independent call sites share one handle. `help` is kept
  /// from the first registration. Handles stay valid for the registry's
  /// lifetime (instruments live in deques and never move).
  Counter& counter(const std::string& name, const std::string& help, Labels labels = {});
  Gauge& gauge(const std::string& name, const std::string& help, Labels labels = {});
  Histogram& histogram(const std::string& name, const std::string& help, Labels labels = {});

  /// Registers a collector run (outside the registry lock) at the start of
  /// every render() — the hook stats-struct owners use to republish one
  /// consistent snapshot per scrape.
  void add_collector(std::function<void()> collector);

  /// Prometheus text exposition: runs the collectors, then renders every
  /// family sorted by name (# HELP / # TYPE plus one sample per label set;
  /// histograms as summaries with p50/p90/p99/p999 quantile series).
  [[nodiscard]] std::string render();

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Instrument {
    Labels labels;
    std::size_t slot = 0;  ///< index into the per-type deque
  };

  struct Family {
    std::string help;
    Type type = Type::kCounter;
    std::vector<Instrument> instruments;
  };

  template <typename T>
  T& instrument(const std::string& name, const std::string& help, Labels&& labels, Type type,
                std::deque<T>& storage);

  mutable std::mutex mutex_;  ///< guards families_ and the storage deques' structure
  std::vector<std::pair<std::string, Family>> families_;  ///< name-sorted
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;

  std::mutex collectors_mutex_;
  std::vector<std::function<void()>> collectors_;
};

}  // namespace spivar::obs
