// obs — per-request trace spans.
//
// A TraceContext is minted at the wire/session boundary (one per request,
// carrying the request id) and rides the request envelope through
// Session::call/submit onto the executor task that evaluates it. Span
// timings are recorded at the seams the request actually crosses:
//
//   queue-wait    submission → the executor task starting (submit paths)
//   cache-probe   the result-cache lookup, both tiers (detail::with_cache)
//   eval          the evaluation itself, cache misses only
//   spill         a synchronous persistent-tier write on the request path
//
// Propagation across the cache/persist layers is by thread-local pointer
// (TraceScope installs the context around the evaluation), so the deep
// seams need no signature changes — and when no trace is installed, the
// instrumentation is one thread-local load and a branch.
//
// Completed traces land in the Tracer: a bounded ring buffer behind the
// `trace last|slowest|<id>` admin control, plus an optional JSONL sink that
// logs requests whose total latency crosses a threshold (the slow-request
// log). finish() is idempotent per context — a request is recorded, and
// slow-logged, exactly once.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace spivar::obs {

enum class SpanKind : std::uint8_t {
  kQueueWait,
  kCacheProbe,
  kEval,
  kSpill,
};

[[nodiscard]] constexpr const char* to_string(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kQueueWait: return "queue-wait";
    case SpanKind::kCacheProbe: return "cache-probe";
    case SpanKind::kEval: return "eval";
    case SpanKind::kSpill: return "spill";
  }
  return "?";
}

/// One recorded span, offsets relative to the trace's birth.
struct Span {
  SpanKind kind = SpanKind::kEval;
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
};

/// Per-request trace state. Spans may be appended from the minting thread
/// and the executor worker that evaluates the request; a small mutex keeps
/// the vector coherent (appends are rare — a handful per request).
class TraceContext {
 public:
  TraceContext(std::uint64_t id, std::string tenant, std::string kind, std::string target);

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] const std::string& tenant() const noexcept { return tenant_; }
  [[nodiscard]] const std::string& kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& target() const noexcept { return target_; }
  [[nodiscard]] std::chrono::steady_clock::time_point born() const noexcept { return born_; }

  /// Marks the moment the request entered an executor queue; the matching
  /// end_queue_wait() (called as the task starts) records the queue-wait
  /// span. Unmatched marks record nothing.
  void mark_queued() noexcept { queued_at_ = std::chrono::steady_clock::now(); }
  void end_queue_wait();

  /// Records one span from explicit clock readings (offsets computed
  /// against the trace's birth).
  void add_span(SpanKind kind, std::chrono::steady_clock::time_point start,
                std::chrono::steady_clock::time_point end);

  [[nodiscard]] std::vector<Span> spans() const;

  /// The finish() idempotence latch: true exactly once.
  [[nodiscard]] bool try_finish() noexcept {
    return !finished_.test_and_set(std::memory_order_acq_rel);
  }

 private:
  std::uint64_t id_;
  std::string tenant_;
  std::string kind_;
  std::string target_;
  std::chrono::steady_clock::time_point born_;
  std::chrono::steady_clock::time_point queued_at_{};

  mutable std::mutex mutex_;
  std::vector<Span> spans_;
  std::atomic_flag finished_ = ATOMIC_FLAG_INIT;
};

// --- thread-local propagation ------------------------------------------------

/// The trace of the request currently evaluating on this thread (null when
/// none) — what the cache and persist seams record spans against.
[[nodiscard]] TraceContext* current_trace() noexcept;

/// RAII installer for current_trace(); nests (restores the previous value).
/// Null contexts install nothing, so untraced paths stay branch-cheap.
class TraceScope {
 public:
  explicit TraceScope(TraceContext* trace) noexcept;
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext* previous_;
};

/// Records one span on the current trace, timed over this object's
/// lifetime. When no trace is installed the constructor is a thread-local
/// load and a branch — no clock reads.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanKind kind) noexcept
      : trace_(current_trace()), kind_(kind),
        start_(trace_ != nullptr ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{}) {}
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->add_span(kind_, start_, std::chrono::steady_clock::now());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceContext* trace_;
  SpanKind kind_;
  std::chrono::steady_clock::time_point start_;
};

// --- the collector -----------------------------------------------------------

/// One completed request, as kept in the ring and rendered by the control.
struct TraceRecord {
  std::uint64_t id = 0;
  std::string tenant;
  std::string kind;
  std::string target;
  std::uint64_t total_us = 0;
  bool ok = true;
  std::vector<Span> spans;
};

struct TracerConfig {
  /// Completed traces kept for the `trace` control; clamped to >= 1.
  std::size_t ring = 256;
  /// A finished request whose total latency reaches this lands in the JSONL
  /// sink (0 logs every request). Meaningless without `log_path`.
  std::uint64_t slow_threshold_us = 0;
  /// JSONL slow-request log ("" = off). One object per line: id, tenant,
  /// kind, target, total_us, ok, spans[].
  std::string log_path;
};

class Tracer {
 public:
  explicit Tracer(TracerConfig config = {});
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Mints the next request id and its trace context.
  [[nodiscard]] std::shared_ptr<TraceContext> begin(std::string tenant, std::string kind,
                                                    std::string target);

  /// Completes a trace: pushes its record into the ring and slow-logs it
  /// when over the threshold. Idempotent per context (the ring receives the
  /// record, and the sink its line, exactly once); returns the total
  /// microseconds on the recording call, nullopt on repeats.
  std::optional<std::uint64_t> finish(const std::shared_ptr<TraceContext>& trace, bool ok);

  [[nodiscard]] std::optional<TraceRecord> last() const;
  [[nodiscard]] std::optional<TraceRecord> slowest() const;
  [[nodiscard]] std::optional<TraceRecord> find(std::uint64_t id) const;

  /// Requests minted so far (ids start at 1).
  [[nodiscard]] std::uint64_t minted() const noexcept {
    return next_id_.load(std::memory_order_relaxed) - 1;
  }

 private:
  void log_slow(const TraceRecord& record);

  TracerConfig config_;
  std::atomic<std::uint64_t> next_id_{1};

  mutable std::mutex mutex_;  ///< guards the ring
  std::vector<TraceRecord> ring_;
  std::size_t next_slot_ = 0;  ///< ring insertion cursor
  std::uint64_t completed_ = 0;
  std::size_t last_slot_ = 0;  ///< most recently written slot

  std::mutex log_mutex_;
  int log_fd_ = -1;  ///< O_APPEND JSONL sink; -1 = off
};

/// Admin-control rendering: a header line plus one `span ...` line each.
[[nodiscard]] std::string render(const TraceRecord& record);

/// The JSONL line (no trailing newline) the slow-request sink writes.
[[nodiscard]] std::string to_json(const TraceRecord& record);

}  // namespace spivar::obs
