// Tenant identity and quotas for the multi-tenant service stack.
//
// A tenant is a namespace over one shared ModelStore: its models, cache
// entries and in-flight work are scoped by a small integer *tag*. Tag 0 is
// the default tenant — the pre-tenancy world every legacy client lives in —
// and everything tenant-aware treats it as "no scoping": unsalted content
// fingerprints, no quotas, byte-identical behavior to a server that has
// never heard of tenants.
//
// The pieces that consume these types:
//   * api::StoreView (store_view.hpp) — the per-tenant store namespace.
//   * api::ResultCache — per-tag entry caps and hit/miss accounting.
//   * service::Service — binds a connection to a tenant on `hello v1`.
#pragma once

#include <cstdint>
#include <string>

namespace spivar::api {

/// Resource limits of one tenant. 0 always means "unlimited" — the default
/// tenant runs with an all-zero quota.
struct TenantQuota {
  /// Live models the tenant may hold in the store at once (its own loads;
  /// tombstones do not count).
  std::size_t max_models = 0;
  /// Result-cache entries the tenant's models may occupy; at the cap, an
  /// insert evicts one of the *tenant's own* entries, never another
  /// tenant's — the isolation that stops one tenant's sweep from
  /// evict-storming everyone else.
  std::size_t max_cache_entries = 0;
  /// Pipelined (v2) frames the tenant may have evaluating at once across
  /// all its connections; beyond it requests are rejected with a typed
  /// api-overload reply (not blocked — blocking would stall the
  /// connection), composing with the per-connection --max-inflight
  /// backpressure.
  std::size_t max_inflight = 0;
  /// Shared secret the hello frame must present; empty admits any client
  /// naming the tenant.
  std::string token;
};

/// The identity a bound connection (and its Session/StoreView) carries.
struct TenantContext {
  std::string name;       ///< "" for the default tenant
  std::uint32_t tag = 0;  ///< 0 = default; cache tag and content-salt seed

  [[nodiscard]] bool is_default() const noexcept { return tag == 0; }

  /// The content-fingerprint salt of this tenant: 0 (unsalted — the
  /// pre-tenancy identity, shared disk entries) for the default tenant, an
  /// FNV-1a digest of the *name* otherwise, so two tenants loading
  /// byte-identical model text can never share a persistent-tier entry.
  /// Name-derived (not tag-derived) on purpose: tags are assigned in hello
  /// order, while a tenant must re-hit its own disk entries across restarts
  /// regardless of who connected first.
  [[nodiscard]] std::uint64_t content_salt() const noexcept {
    if (tag == 0 || name.empty()) return 0;
    std::uint64_t digest = 1469598103934665603ull;  // FNV-1a offset basis
    for (const char c : name) {
      digest ^= static_cast<unsigned char>(c);
      digest *= 1099511628211ull;  // FNV prime
    }
    return digest == 0 ? 1 : digest;  // 0 means "unsalted" — never collide with it
  }
};

}  // namespace spivar::api
