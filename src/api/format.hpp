// Plain-text rendering of api responses.
//
// One render() overload per response type, so front ends (CLI, examples)
// present results without reaching into the underlying subsystems. All
// output is stable, table-formatted text.
#pragma once

#include <iostream>
#include <string>

#include "api/cache.hpp"
#include "api/executor.hpp"
#include "api/responses.hpp"
#include "api/result.hpp"
#include "support/diagnostics.hpp"

namespace spivar::api {

[[nodiscard]] std::string render(const ModelInfo& info);
[[nodiscard]] std::string render(const CacheStats& stats);
[[nodiscard]] std::string render(const ExecutorStats& stats);
[[nodiscard]] std::string render(const ValidateResponse& response);
[[nodiscard]] std::string render(const SimulateResponse& response);
[[nodiscard]] std::string render(const AnalyzeResponse& response);
[[nodiscard]] std::string render(const ExploreResponse& response);
[[nodiscard]] std::string render(const ParetoResponse& response);
[[nodiscard]] std::string render(const CompareResponse& response);
/// Envelope dispatch: renders whatever alternative the response holds,
/// byte-identical to the matching typed overload.
[[nodiscard]] std::string render(const AnyResponse& response);

/// "severity [code] message" lines, one per finding.
[[nodiscard]] std::string render_diagnostics(const support::DiagnosticList& diagnostics);

/// Front-end convenience: renders the failure diagnostics of `result` to
/// stderr and returns true when it failed — the shared "check or bail"
/// pattern of the CLI and examples.
template <typename T>
bool report_failure(const Result<T>& result) {
  if (result.ok()) return false;
  std::cerr << render_diagnostics(result.diagnostics());
  return true;
}

}  // namespace spivar::api
