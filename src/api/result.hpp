// Typed value-or-diagnostics results for the api session boundary.
//
// Every api::Session operation returns Result<T>: either a value (possibly
// accompanied by warnings/notes) or a DiagnosticList explaining the failure.
// No exception crosses the session boundary — parse errors, model errors and
// unexpected failures are all converted into diagnostics with stable codes
// (api::diag). Accessing value() on a failed result is the one programmer
// error that still throws, exactly like std::optional::value().
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "support/diagnostics.hpp"

namespace spivar::api {

/// Diagnostic codes emitted by the session layer itself (subsystem passes
/// keep their own codes; session failures use these).
namespace diag {
inline constexpr const char* kUnknownModel = "api-unknown-model";
inline constexpr const char* kUnknownBuiltin = "api-unknown-builtin";
inline constexpr const char* kParseError = "api-parse-error";
inline constexpr const char* kModelError = "api-model-error";
inline constexpr const char* kIoError = "api-io-error";
inline constexpr const char* kInternalError = "api-internal-error";
inline constexpr const char* kEmptyProblem = "api-empty-problem";
inline constexpr const char* kBadOption = "api-bad-option";
inline constexpr const char* kCancelled = "api-cancelled";
inline constexpr const char* kWireError = "api-wire-error";
inline constexpr const char* kOverload = "api-overload";
inline constexpr const char* kQuotaExceeded = "api-quota-exceeded";
}  // namespace diag

template <typename T>
class [[nodiscard]] Result {
 public:
  /// Successful result; `notes` may carry non-fatal findings.
  static Result success(T value, support::DiagnosticList notes = {}) {
    Result r;
    r.value_ = std::move(value);
    r.diagnostics_ = std::move(notes);
    return r;
  }

  static Result failure(support::DiagnosticList diagnostics) {
    Result r;
    r.diagnostics_ = std::move(diagnostics);
    return r;
  }

  static Result failure(std::string code, std::string message) {
    support::DiagnosticList diagnostics;
    diagnostics.error(std::move(code), std::move(message));
    return failure(std::move(diagnostics));
  }

  [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
  [[nodiscard]] explicit operator bool() const noexcept { return ok(); }

  /// The payload. Calling this on a failed result is a programming error and
  /// throws ModelError (the only throw in the api layer).
  [[nodiscard]] const T& value() const& {
    require_ok();
    return *value_;
  }
  [[nodiscard]] T& value() & {
    require_ok();
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    require_ok();
    return *std::move(value_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  /// Failure diagnostics, or non-fatal notes on success.
  [[nodiscard]] const support::DiagnosticList& diagnostics() const noexcept {
    return diagnostics_;
  }

  /// One-line rendering of the first error (empty when ok).
  [[nodiscard]] std::string error_summary() const {
    for (const auto& d : diagnostics_.items()) {
      if (d.severity == support::Severity::kError) return d.code + ": " + d.message;
    }
    return ok() ? std::string{} : std::string{"unknown failure"};
  }

 private:
  Result() = default;
  void require_ok() const {
    if (!ok()) throw support::ModelError("Result::value() on failed result (" + error_summary() + ")");
  }

  std::optional<T> value_;
  support::DiagnosticList diagnostics_;
};

}  // namespace spivar::api
