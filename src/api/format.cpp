#include "api/format.hpp"

#include <sstream>

#include "support/table.hpp"

namespace spivar::api {

namespace {

std::string join(const std::vector<std::string>& names, const char* sep = ", ") {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += sep;
    out += name;
  }
  return out;
}

}  // namespace

std::string render(const ModelInfo& info) {
  std::ostringstream os;
  os << info.name << " (" << info.origin << "): " << info.processes << " processes, "
     << info.channels << " channels";
  if (info.has_variants()) {
    os << ", " << info.interfaces << " interfaces, " << info.clusters << " clusters";
  }
  os << "\n";
  return os.str();
}

namespace {

std::string micros_string(std::uint64_t us) {
  return support::Duration{static_cast<std::int64_t>(us)}.to_string();
}

}  // namespace

std::string render(const CacheStats& stats) {
  support::TextTable table{{"hits", "misses", "hit rate", "evictions", "invalidations",
                            "entries", "capacity"}};
  table.add_row({std::to_string(stats.hits), std::to_string(stats.misses),
                 support::format_double(stats.hit_rate() * 100.0, 1) + "%",
                 std::to_string(stats.evictions), std::to_string(stats.invalidations),
                 std::to_string(stats.entries), std::to_string(stats.capacity)});
  // Cost accounting of the cost-aware admission policy: eval time currently
  // held, eval time hits have returned without re-running, and eval time
  // eviction threw away — plus the eviction cost window in effect and how
  // often adaptive tuning has moved it.
  support::TextTable costs{
      {"cached cost", "saved cost", "evicted cost", "cost window", "adaptations"}};
  costs.add_row({micros_string(stats.cached_cost_us), micros_string(stats.saved_cost_us),
                 micros_string(stats.evicted_cost_us), std::to_string(stats.cost_window),
                 std::to_string(stats.window_adaptations)});
  if (!stats.persistent) return table.to_string() + costs.to_string();
  support::TextTable disk{{"disk hits", "disk misses", "spills", "promotes", "skipped",
                           "disk evictions", "disk entries", "disk bytes", "disk capacity"}};
  disk.add_row({std::to_string(stats.disk_hits), std::to_string(stats.disk_misses),
                std::to_string(stats.disk_spills), std::to_string(stats.disk_promotes),
                std::to_string(stats.disk_skipped), std::to_string(stats.disk_evictions),
                std::to_string(stats.disk_entries), std::to_string(stats.disk_bytes),
                std::to_string(stats.disk_capacity_bytes)});
  // The spill queue gets its own table (not extra disk columns): scripts
  // parse the disk table positionally, and sync tiers have no queue at all.
  support::TextTable queue{{"spill mode", "queue depth", "queue capacity", "dropped spills"}};
  queue.add_row({stats.disk_async ? "async" : "sync", std::to_string(stats.disk_queue_depth),
                 std::to_string(stats.disk_queue_capacity),
                 std::to_string(stats.disk_dropped_spills)});
  return table.to_string() + costs.to_string() + disk.to_string() + queue.to_string();
}

std::string render(const ExecutorStats& stats) {
  support::TextTable table{{"completed", "deadline misses", "miss rate", "max lateness",
                            "total lateness"}};
  table.add_row(
      {std::to_string(stats.completed), std::to_string(stats.deadline_misses),
       support::format_double(stats.miss_rate() * 100.0, 1) + "%",
       micros_string(static_cast<std::uint64_t>(stats.max_lateness.count())),
       micros_string(static_cast<std::uint64_t>(stats.total_lateness.count()))});
  return table.to_string();
}

std::string render(const ValidateResponse& response) {
  if (response.clean()) return "clean: no findings\n";
  return render_diagnostics(response.findings);
}

std::string render(const SimulateResponse& response) {
  std::ostringstream os;
  os << "end time " << response.result.end_time << ", " << response.result.total_firings
     << " firings, " << (response.result.quiescent ? "quiescent" : "stopped on limit") << "\n\n";

  support::TextTable processes{{"process", "firings", "busy", "reconfigs"}};
  for (const auto& row : response.processes) {
    processes.add_row({row.name, std::to_string(row.firings), row.busy.to_string(),
                       std::to_string(row.reconfigurations)});
  }
  os << processes << "\n";

  support::TextTable channels{{"channel", "produced", "consumed", "left", "max"}};
  for (const auto& row : response.channels) {
    channels.add_row({row.name, std::to_string(row.produced), std::to_string(row.consumed),
                      std::to_string(row.occupancy), std::to_string(row.max_occupancy)});
  }
  os << channels;

  for (const auto& c : response.result.constraints) {
    os << "constraint " << c.name << ": observed " << c.observed << " bound " << c.bound
       << (c.satisfied ? " OK" : " VIOLATED") << "\n";
  }
  if (!response.timeline.empty()) os << "\n" << response.timeline;
  return os.str();
}

std::string render(const AnalyzeResponse& response) {
  std::ostringstream os;
  bool first = true;
  const auto section = [&](const char* title) {
    if (!first) os << "\n";
    first = false;
    os << "== " << title << " ==\n";
  };

  if (response.request.deadlock) {
    section("deadlock");
    if (response.deadlock_free()) {
      os << "no structural deadlock\n";
    } else {
      for (const auto& d : response.deadlocks) os << d.description << "\n";
    }
  }

  if (response.request.buffers) {
    section("channel flows");
    support::TextTable table{{"channel", "class", "max inflow/ms", "min drain/ms"}};
    for (const auto& flow : response.buffer_flows) {
      table.add_row({flow.name, analysis::to_string(flow.flow),
                     support::format_double(flow.max_inflow),
                     support::format_double(flow.min_drain)});
    }
    os << table;
  }

  if (response.request.timing) {
    section("timing");
    if (response.latency_checks.empty()) os << "no latency constraints\n";
    for (const auto& check : response.latency_checks) {
      os << check.constraint << ": path latency " << check.path_latency.to_string() << ", bound "
         << check.bound.to_string() << (check.guaranteed ? " -> guaranteed" : " -> NOT guaranteed")
         << "\n";
    }
  }

  if (response.request.structure) {
    section("structure");
    os << (response.structure.acyclic ? "acyclic" : "cyclic") << ", "
       << response.structure.components << " component(s)\n";
    os << "sources: " << join(response.structure.sources) << "\n";
    os << "sinks:   " << join(response.structure.sinks) << "\n";
    if (!response.structure.dead.empty()) {
      os << "dead:    " << join(response.structure.dead) << "\n";
    }
  }
  return os.str();
}

std::string render(const ExploreResponse& response) {
  std::ostringstream os;
  const auto& r = response.result;
  os << "problem " << response.problem << ": " << response.applications << " application(s), "
     << response.elements << " element(s), library " << response.library_origin << "\n";
  os << "engine " << r.engine << ": " << (r.found_feasible ? "feasible" : "NO feasible mapping")
     << ", cost " << support::format_double(r.cost.total) << " (processor "
     << support::format_double(r.cost.processor_cost) << " + asic "
     << support::format_double(r.cost.asic_cost) << "), utilization "
     << support::format_double(r.cost.worst_utilization) << "\n";
  os << r.decisions << " decisions, " << r.evaluations << " evaluations\n";

  support::TextTable table{{"element", "target"}};
  for (const auto& [element, target] : r.mapping.assignments()) {
    table.add_row({element, synth::to_string(target)});
  }
  os << table;
  return os.str();
}

std::string render(const ParetoResponse& response) {
  std::ostringstream os;
  os << response.points.size() << " non-dominated point(s) over " << response.applications
     << " application(s), library " << response.library_origin << "\n";
  support::TextTable table{{"cost", "worst latency", "hw elements"}};
  for (const auto& point : response.points) {
    table.add_row({support::format_double(point.cost), point.worst_latency.to_string(),
                   join(point.mapping.elements_on(synth::Target::kHardware), ",")});
  }
  os << table;
  return os.str();
}

std::string render(const CompareResponse& response) {
  std::ostringstream os;
  os << "strategy comparison on " << response.model << " (" << response.problem << "): "
     << response.applications << " application(s), library " << response.library_origin << "\n";

  support::TextTable table{
      {"strategy", "scope", "total", "software", "hardware", "decisions", "orders", "feasible"}};
  for (const auto& row : response.rows) {
    const auto& cost = row.outcome.cost;
    std::string orders = std::to_string(row.orders_tried);
    if (row.orders_tried > 1 && row.worst_total != cost.total) {
      orders += " (worst " + support::format_double(row.worst_total, 0) + ")";
    }
    table.add_row({row.strategy, row.scope, support::format_double(cost.total, 0),
                   join(cost.software), join(cost.hardware), std::to_string(row.decisions),
                   std::move(orders), row.outcome.feasible ? "yes" : "NO"});
  }
  os << table;

  if (const auto* best = response.best()) {
    os << "best system strategy: " << best->strategy << " at cost "
       << support::format_double(best->outcome.cost.total, 0)
       << (best->outcome.feasible ? "" : " (infeasible!)") << "\n";
  }
  return os.str();
}

std::string render(const AnyResponse& response) {
  return std::visit([](const auto& typed) { return render(typed); }, response);
}

std::string render_diagnostics(const support::DiagnosticList& diagnostics) {
  std::ostringstream os;
  os << diagnostics;
  return os.str();
}

}  // namespace spivar::api
