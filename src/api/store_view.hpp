// api::StoreView — one tenant's namespace over one shared ModelStore.
//
// Every tenant of the service shares one ModelStore (one parse, one memoized
// synthesis setup, one result cache per distinct model *per tenant*), but
// each sees only its own models: a view records the ids its loads issued and
// refuses to describe, enumerate or unload anything else. Builtin and corpus
// *names* stay globally readable — any tenant may instantiate `fig2` or a
// `sweep/` spec — while the instantiated models are tenant-scoped, so two
// tenants loading the same name hold distinct ids, distinct generations and
// (through the tenant content salt) distinct restart-stable identities.
//
//   auto store = std::make_shared<api::ModelStore>();
//   api::StoreView a{store, {.name = "alpha", .tag = 1}, {.max_models = 8}};
//   api::StoreView b{store, {.name = "beta", .tag = 2}, {}};
//   a.load_builtin("fig2");   // id X, salted fingerprint, owned by a
//   b.load_builtin("fig2");   // id Y != X — cache entries never cross
//   b.unload(X-id);           // kNeverLoaded: b cannot tombstone a's model
//
// Isolation invariants the view enforces (tests/test_tenant.cpp):
//   * unload of an un-owned id is kNeverLoaded — no cross-tenant tombstones,
//     so no cross-tenant cache invalidation either (ModelStore::unload is
//     only ever reached for owned ids).
//   * the model-count quota bounds *live* owned models; tombstones free
//     their slot.
//   * loads register their id's tenant tag with the store's result cache,
//     which is what per-tenant cache caps and stats key on.
//
// Thread-safe like the store itself: loads, unloads and lookups may race
// from any number of connection threads.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "api/store.hpp"
#include "api/tenant.hpp"

namespace spivar::api {

class StoreView {
 public:
  /// A view over `store` for `tenant` under `quota`. The store must outlive
  /// nothing — the view shares ownership.
  StoreView(std::shared_ptr<ModelStore> store, TenantContext tenant, TenantQuota quota = {});

  StoreView(const StoreView&) = delete;
  StoreView& operator=(const StoreView&) = delete;

  [[nodiscard]] const TenantContext& tenant() const noexcept { return tenant_; }
  [[nodiscard]] const TenantQuota& quota() const noexcept { return quota_; }
  [[nodiscard]] const std::shared_ptr<ModelStore>& store() const noexcept { return store_; }

  // --- loading (tenant-scoped, quota-checked) --------------------------------

  Result<ModelInfo> load_text(std::string_view text, std::string_view name = {});
  Result<ModelInfo> load_file(const std::string& path);
  Result<ModelInfo> load_builtin(std::string_view name);
  Result<ModelInfo> load_builtin(const LoadBuiltinRequest& request);
  Result<ModelInfo> load_model(std::string_view spec);
  Result<ModelInfo> load(variant::VariantModel model, std::string_view origin = "adopted");

  // --- tenant-scoped lookup / unload -----------------------------------------

  /// True when this view's loads issued `id` and it has not been unloaded.
  [[nodiscard]] bool owns(ModelId id) const;

  /// The three-way unload contract *per tenant*: an id another tenant (or
  /// nobody) loaded is kNeverLoaded here even though the store knows it —
  /// a tenant can never tombstone (or cache-invalidate) someone else's
  /// model.
  UnloadStatus unload(ModelId id);

  /// Info for an owned id; un-owned ids fail exactly like unknown ones.
  [[nodiscard]] Result<ModelInfo> info(ModelId id) const;

  /// Summaries of this tenant's live models only, ascending id.
  [[nodiscard]] std::vector<ModelInfo> models() const;

  /// Live models this view owns.
  [[nodiscard]] std::size_t size() const;

 private:
  /// Quota gate + ownership/cache-tag bookkeeping around one store load.
  /// `loader` runs outside the view lock (parses and model factories can be
  /// slow); a pending-load reservation keeps a racing pair of loads from
  /// overshooting max_models.
  template <typename Loader>
  Result<ModelInfo> admitted(Loader&& loader);

  void record(ModelId id);

  std::shared_ptr<ModelStore> store_;
  TenantContext tenant_;
  TenantQuota quota_;

  mutable std::mutex mutex_;
  std::set<std::uint32_t> owned_;       ///< live ids this view loaded
  std::set<std::uint32_t> tombstoned_;  ///< ids this view loaded, then unloaded
  std::size_t pending_ = 0;             ///< loads admitted but not yet recorded
};

}  // namespace spivar::api
