#include "api/options.hpp"

#include <algorithm>
#include <charconv>
#include <concepts>
#include <functional>
#include <utility>

#include "corpus/spec.hpp"

namespace spivar::api {

namespace {

// --- value parsers ----------------------------------------------------------
// One overload per field type occurring in the option structs; each returns
// false on malformed input without touching `out`.

template <typename Int>
bool parse_integer(const std::string& text, Int& out) {
  Int value{};
  const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || end != text.data() + text.size()) return false;
  out = value;
  return true;
}

// One template covers every integer field width (int, int64_t, size_t —
// whether or not size_t aliases uint64_t on the platform); bool and char
// keep their dedicated overloads below.
template <typename Int>
  requires std::integral<Int> && (!std::same_as<Int, bool>) && (!std::same_as<Int, char>)
bool parse_value(const std::string& text, Int& out) {
  return parse_integer(text, out);
}

bool parse_value(const std::string& text, bool& out) {
  if (text == "true" || text == "1") {
    out = true;
    return true;
  }
  if (text == "false" || text == "0") {
    out = false;
    return true;
  }
  return false;
}

bool parse_value(const std::string& text, char& out) {
  if (text.size() != 1) return false;
  out = text.front();
  return true;
}

/// Durations are assigned in (fractional) milliseconds: "t_conf_ms=2.5".
bool parse_value(const std::string& text, support::Duration& out) {
  double millis = 0.0;
  const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), millis);
  if (ec != std::errc{} || end != text.data() + text.size() || millis < 0.0) return false;
  out = support::Duration::micros(static_cast<std::int64_t>(millis * 1000.0));
  return true;
}

// --- value rendering (models --json, option defaults) -----------------------

template <typename Int>
  requires std::integral<Int> && (!std::same_as<Int, bool>) && (!std::same_as<Int, char>)
std::string render_value(Int value) {
  return std::to_string(value);
}

std::string render_value(bool value) { return value ? "true" : "false"; }
std::string render_value(char value) { return std::string(1, value); }

std::string render_value(support::Duration value) {
  const double millis = static_cast<double>(value.count()) / 1000.0;
  std::string out(32, '\0');
  const auto [end, ec] = std::to_chars(out.data(), out.data() + out.size(), millis);
  out.resize(ec == std::errc{} ? static_cast<std::size_t>(end - out.data()) : 0);
  return out;
}

// --- per-model field tables -------------------------------------------------

template <typename Opts>
struct FieldEntry {
  using Options = Opts;
  std::string key;
  std::function<bool(Opts&, const std::string&)> set;
  std::function<std::string(const Opts&)> render;
};

template <typename Opts>
using FieldTable = std::vector<FieldEntry<Opts>>;

/// Binds "key" to a member of the option struct (`Class` may be a base of
/// `Opts`, so Fig3Options reuses the inherited Fig2Options fields).
template <typename Opts, typename Class, typename Member>
FieldEntry<Opts> field(const char* key, Member Class::* member) {
  return {key,
          [member](Opts& options, const std::string& value) {
            return parse_value(value, options.*member);
          },
          [member](const Opts& options) { return render_value(options.*member); }};
}

FieldTable<models::Fig1Options> fig1_fields() {
  using O = models::Fig1Options;
  return {field<O>("tag", &O::tag), field<O>("tagged", &O::tagged),
          field<O>("source_period_ms", &O::source_period),
          field<O>("source_firings", &O::source_firings)};
}

FieldTable<models::Fig2Options> fig2_fields() {
  using O = models::Fig2Options;
  return {field<O>("source_period_ms", &O::source_period),
          field<O>("source_firings", &O::source_firings)};
}

FieldTable<models::Fig3Options> fig3_fields() {
  using O = models::Fig3Options;
  return {field<O>("source_period_ms", &O::source_period),
          field<O>("source_firings", &O::source_firings),
          field<O>("user_choice", &O::user_choice), field<O>("t_conf1_ms", &O::t_conf1),
          field<O>("t_conf2_ms", &O::t_conf2)};
}

FieldTable<models::VideoOptions> video_fields() {
  using O = models::VideoOptions;
  return {field<O>("frames", &O::frames), field<O>("frame_period_ms", &O::frame_period),
          field<O>("requests", &O::requests), field<O>("request_period_ms", &O::request_period),
          field<O>("t_conf_ms", &O::t_conf), field<O>("input_valve", &O::input_valve),
          field<O>("output_valve", &O::output_valve)};
}

FieldTable<models::TvOptions> tv_fields() {
  using O = models::TvOptions;
  return {field<O>("region", &O::region), field<O>("frame_period_ms", &O::frame_period),
          field<O>("frames", &O::frames)};
}

FieldTable<models::EmissionOptions> emission_fields() {
  using O = models::EmissionOptions;
  return {field<O>("samples", &O::samples), field<O>("sample_period_ms", &O::sample_period)};
}

FieldTable<models::SyntheticSpec> synthetic_fields() {
  using O = models::SyntheticSpec;
  return {field<O>("shared_processes", &O::shared_processes),
          field<O>("interfaces", &O::interfaces), field<O>("variants", &O::variants),
          field<O>("cluster_size", &O::cluster_size), field<O>("modes", &O::modes),
          field<O>("predicate_depth", &O::predicate_depth), field<O>("seed", &O::seed)};
}

template <typename Opts>
std::string known_keys(const FieldTable<Opts>& table) {
  std::string out;
  for (const auto& entry : table) {
    if (!out.empty()) out += ", ";
    out += entry.key;
  }
  return out;
}

/// Classic edit distance, for "did you mean" hints on unknown keys.
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t replace = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, replace});
    }
  }
  return row[b.size()];
}

/// The closest known key when it is plausibly a typo (edit distance <= 2,
/// or less than half the key's length); empty otherwise.
template <typename Opts>
std::string nearest_key(const FieldTable<Opts>& table, std::string_view key) {
  std::string best;
  std::size_t best_distance = std::string::npos;
  for (const auto& entry : table) {
    const std::size_t distance = edit_distance(entry.key, key);
    if (distance < best_distance) {
      best_distance = distance;
      best = entry.key;
    }
  }
  if (best_distance <= 2 || best_distance * 2 < key.size()) return best;
  return {};
}

/// Applies every assignment on top of `options` (the builtin's defaults, or
/// a corpus name's parsed knobs); collects all problems instead of stopping
/// at the first one.
template <typename Opts>
Result<BuiltinOptions> apply(const FieldTable<Opts>& table, std::string_view builtin,
                             const std::vector<std::string>& assignments, Opts options = {}) {
  support::DiagnosticList diagnostics;
  for (const std::string& assignment : assignments) {
    const auto eq = assignment.find('=');
    if (eq == std::string::npos || eq == 0) {
      diagnostics.error(diag::kBadOption, "expected key=value, got '" + assignment + "'");
      continue;
    }
    const std::string key = assignment.substr(0, eq);
    const std::string value = assignment.substr(eq + 1);
    bool matched = false;
    for (const auto& entry : table) {
      if (entry.key != key) continue;
      matched = true;
      if (!entry.set(options, value)) {
        diagnostics.error(diag::kBadOption,
                          "invalid value '" + value + "' for " + std::string{builtin} + " option '" +
                              key + "'");
      }
      break;
    }
    if (!matched) {
      std::string message = "'" + std::string{builtin} + "' has no option '" + key +
                            "' (known: " + known_keys(table) + ")";
      if (const std::string hint = nearest_key(table, key); !hint.empty()) {
        message += "; did you mean '" + hint + "'?";
      }
      diagnostics.error(diag::kBadOption, std::move(message));
    }
  }
  if (diagnostics.has_errors()) return Result<BuiltinOptions>::failure(std::move(diagnostics));
  return Result<BuiltinOptions>::success(BuiltinOptions{std::move(options)});
}

/// Routes a callback to the builtin's field table; returns false for names
/// without one (unknown, or a model without options).
template <typename Fn>
bool with_fields(std::string_view builtin, Fn&& fn) {
  if (builtin == "fig1") {
    fn(fig1_fields());
  } else if (builtin == "fig2") {
    fn(fig2_fields());
  } else if (builtin == "fig3") {
    fn(fig3_fields());
  } else if (builtin == "video_system") {
    fn(video_fields());
  } else if (builtin == "multistandard_tv") {
    fn(tv_fields());
  } else if (builtin == "emission_control") {
    fn(emission_fields());
  } else if (builtin == "synthetic") {
    fn(synthetic_fields());
  } else {
    return false;
  }
  return true;
}

}  // namespace

Result<BuiltinOptions> parse_builtin_options(std::string_view builtin,
                                             const std::vector<std::string>& assignments) {
  // Corpus names are parameterized synthetics: assignments land on top of
  // the knobs already encoded in the name.
  if (corpus::is_corpus_name(builtin)) {
    std::string error;
    const auto parsed = corpus::parse_name(builtin, &error);
    if (!parsed) return Result<BuiltinOptions>::failure(diag::kUnknownBuiltin, error);
    return apply(synthetic_fields(), builtin, assignments, parsed->spec);
  }
  std::optional<Result<BuiltinOptions>> result;
  const bool known = with_fields(builtin, [&](const auto& table) {
    result = apply(table, builtin, assignments);
  });
  if (!known) {
    return Result<BuiltinOptions>::failure(
        diag::kUnknownBuiltin, "no built-in model '" + std::string{builtin} + "' to parse options for");
  }
  return *std::move(result);
}

std::vector<std::string> builtin_option_keys(std::string_view builtin) {
  std::vector<std::string> keys;
  const std::string_view table_name = corpus::is_corpus_name(builtin) ? "synthetic" : builtin;
  with_fields(table_name, [&](const auto& table) {
    keys.reserve(table.size());
    for (const auto& entry : table) keys.push_back(entry.key);
  });
  return keys;
}

std::vector<std::pair<std::string, std::string>> builtin_option_defaults(
    std::string_view builtin) {
  std::vector<std::pair<std::string, std::string>> out;
  if (corpus::is_corpus_name(builtin)) {
    const auto parsed = corpus::parse_name(builtin);
    if (!parsed) return out;
    for (const auto& entry : synthetic_fields()) {
      out.emplace_back(entry.key, entry.render(parsed->spec));
    }
    return out;
  }
  with_fields(builtin, [&](const auto& table) {
    using Opts = typename std::decay_t<decltype(table)>::value_type::Options;
    const Opts defaults{};
    out.reserve(table.size());
    for (const auto& entry : table) out.emplace_back(entry.key, entry.render(defaults));
  });
  return out;
}

}  // namespace spivar::api
