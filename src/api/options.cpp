#include "api/options.hpp"

#include <charconv>
#include <concepts>
#include <functional>
#include <utility>

namespace spivar::api {

namespace {

// --- value parsers ----------------------------------------------------------
// One overload per field type occurring in the option structs; each returns
// false on malformed input without touching `out`.

template <typename Int>
bool parse_integer(const std::string& text, Int& out) {
  Int value{};
  const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || end != text.data() + text.size()) return false;
  out = value;
  return true;
}

// One template covers every integer field width (int, int64_t, size_t —
// whether or not size_t aliases uint64_t on the platform); bool and char
// keep their dedicated overloads below.
template <typename Int>
  requires std::integral<Int> && (!std::same_as<Int, bool>) && (!std::same_as<Int, char>)
bool parse_value(const std::string& text, Int& out) {
  return parse_integer(text, out);
}

bool parse_value(const std::string& text, bool& out) {
  if (text == "true" || text == "1") {
    out = true;
    return true;
  }
  if (text == "false" || text == "0") {
    out = false;
    return true;
  }
  return false;
}

bool parse_value(const std::string& text, char& out) {
  if (text.size() != 1) return false;
  out = text.front();
  return true;
}

/// Durations are assigned in (fractional) milliseconds: "t_conf_ms=2.5".
bool parse_value(const std::string& text, support::Duration& out) {
  double millis = 0.0;
  const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), millis);
  if (ec != std::errc{} || end != text.data() + text.size() || millis < 0.0) return false;
  out = support::Duration::micros(static_cast<std::int64_t>(millis * 1000.0));
  return true;
}

// --- per-model field tables -------------------------------------------------

template <typename Opts>
using FieldTable = std::vector<std::pair<std::string, std::function<bool(Opts&, const std::string&)>>>;

/// Binds "key" to a member of the option struct (`Class` may be a base of
/// `Opts`, so Fig3Options reuses the inherited Fig2Options fields).
template <typename Opts, typename Class, typename Member>
std::pair<std::string, std::function<bool(Opts&, const std::string&)>> field(
    const char* key, Member Class::* member) {
  return {key, [member](Opts& options, const std::string& value) {
            return parse_value(value, options.*member);
          }};
}

FieldTable<models::Fig1Options> fig1_fields() {
  using O = models::Fig1Options;
  return {field<O>("tag", &O::tag), field<O>("tagged", &O::tagged),
          field<O>("source_period_ms", &O::source_period),
          field<O>("source_firings", &O::source_firings)};
}

FieldTable<models::Fig2Options> fig2_fields() {
  using O = models::Fig2Options;
  return {field<O>("source_period_ms", &O::source_period),
          field<O>("source_firings", &O::source_firings)};
}

FieldTable<models::Fig3Options> fig3_fields() {
  using O = models::Fig3Options;
  return {field<O>("source_period_ms", &O::source_period),
          field<O>("source_firings", &O::source_firings),
          field<O>("user_choice", &O::user_choice), field<O>("t_conf1_ms", &O::t_conf1),
          field<O>("t_conf2_ms", &O::t_conf2)};
}

FieldTable<models::VideoOptions> video_fields() {
  using O = models::VideoOptions;
  return {field<O>("frames", &O::frames), field<O>("frame_period_ms", &O::frame_period),
          field<O>("requests", &O::requests), field<O>("request_period_ms", &O::request_period),
          field<O>("t_conf_ms", &O::t_conf), field<O>("input_valve", &O::input_valve),
          field<O>("output_valve", &O::output_valve)};
}

FieldTable<models::TvOptions> tv_fields() {
  using O = models::TvOptions;
  return {field<O>("region", &O::region), field<O>("frame_period_ms", &O::frame_period),
          field<O>("frames", &O::frames)};
}

FieldTable<models::EmissionOptions> emission_fields() {
  using O = models::EmissionOptions;
  return {field<O>("samples", &O::samples), field<O>("sample_period_ms", &O::sample_period)};
}

FieldTable<models::SyntheticSpec> synthetic_fields() {
  using O = models::SyntheticSpec;
  return {field<O>("shared_processes", &O::shared_processes),
          field<O>("interfaces", &O::interfaces), field<O>("variants", &O::variants),
          field<O>("cluster_size", &O::cluster_size), field<O>("seed", &O::seed)};
}

template <typename Opts>
std::string known_keys(const FieldTable<Opts>& table) {
  std::string out;
  for (const auto& [key, setter] : table) {
    if (!out.empty()) out += ", ";
    out += key;
  }
  return out;
}

/// Applies every assignment to a default-constructed option struct;
/// collects all problems instead of stopping at the first one.
template <typename Opts>
Result<BuiltinOptions> apply(const FieldTable<Opts>& table, std::string_view builtin,
                             const std::vector<std::string>& assignments) {
  Opts options{};
  support::DiagnosticList diagnostics;
  for (const std::string& assignment : assignments) {
    const auto eq = assignment.find('=');
    if (eq == std::string::npos || eq == 0) {
      diagnostics.error(diag::kBadOption, "expected key=value, got '" + assignment + "'");
      continue;
    }
    const std::string key = assignment.substr(0, eq);
    const std::string value = assignment.substr(eq + 1);
    bool matched = false;
    for (const auto& [name, setter] : table) {
      if (name != key) continue;
      matched = true;
      if (!setter(options, value)) {
        diagnostics.error(diag::kBadOption,
                          "invalid value '" + value + "' for " + std::string{builtin} + " option '" +
                              key + "'");
      }
      break;
    }
    if (!matched) {
      diagnostics.error(diag::kBadOption, "'" + std::string{builtin} + "' has no option '" + key +
                                              "' (known: " + known_keys(table) + ")");
    }
  }
  if (diagnostics.has_errors()) return Result<BuiltinOptions>::failure(std::move(diagnostics));
  return Result<BuiltinOptions>::success(BuiltinOptions{std::move(options)});
}

/// Routes a callback to the builtin's field table; returns false for names
/// without one (unknown, or a model without options).
template <typename Fn>
bool with_fields(std::string_view builtin, Fn&& fn) {
  if (builtin == "fig1") {
    fn(fig1_fields());
  } else if (builtin == "fig2") {
    fn(fig2_fields());
  } else if (builtin == "fig3") {
    fn(fig3_fields());
  } else if (builtin == "video_system") {
    fn(video_fields());
  } else if (builtin == "multistandard_tv") {
    fn(tv_fields());
  } else if (builtin == "emission_control") {
    fn(emission_fields());
  } else if (builtin == "synthetic") {
    fn(synthetic_fields());
  } else {
    return false;
  }
  return true;
}

}  // namespace

Result<BuiltinOptions> parse_builtin_options(std::string_view builtin,
                                             const std::vector<std::string>& assignments) {
  std::optional<Result<BuiltinOptions>> result;
  const bool known = with_fields(builtin, [&](const auto& table) {
    result = apply(table, builtin, assignments);
  });
  if (!known) {
    return Result<BuiltinOptions>::failure(
        diag::kUnknownBuiltin, "no built-in model '" + std::string{builtin} + "' to parse options for");
  }
  return *std::move(result);
}

std::vector<std::string> builtin_option_keys(std::string_view builtin) {
  std::vector<std::string> keys;
  with_fields(builtin, [&](const auto& table) {
    keys.reserve(table.size());
    for (const auto& [key, setter] : table) keys.push_back(key);
  });
  return keys;
}

}  // namespace spivar::api
