#include "api/executor.hpp"

#include <utility>

namespace spivar::api {

namespace {
/// The pool whose worker_loop owns this thread, if any — how run()/submit()
/// recognise nested fan-out issued from inside one of their own tasks.
thread_local const void* tls_worker_pool = nullptr;
}  // namespace

std::optional<Priority> parse_priority(std::string_view name) {
  if (name == "low") return Priority::kLow;
  if (name == "normal") return Priority::kNormal;
  if (name == "high") return Priority::kHigh;
  return std::nullopt;
}

void SerialExecutor::run(std::vector<std::function<void()>> tasks, SubmitOptions options) {
  // Inline execution still keeps the deadline telemetry honest: a deadline
  // is measured from submission, so a long serial batch records its misses
  // exactly like a queued one.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (options.deadline) deadline = std::chrono::steady_clock::now() + *options.deadline;
  for (auto& task : tasks) {
    task();
    recorder_.record(deadline);
  }
}

void SerialExecutor::submit(std::vector<std::function<void()>> tasks, SubmitOptions options) {
  // No background thread: submission order is execution order, and every
  // slot has landed by the time submit returns.
  run(std::move(tasks), options);
}

ThreadPoolExecutor::ThreadPoolExecutor(std::size_t workers) {
  std::size_t count = workers != 0 ? workers : std::thread::hardware_concurrency();
  if (count == 0) count = 1;
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPoolExecutor::~ThreadPoolExecutor() {
  {
    std::lock_guard lock{mutex_};
    stop_ = true;
  }
  work_cv_.notify_all();
  // Workers drain every queued batch before exiting, so fire-and-forget
  // submissions still complete.
  for (std::thread& thread : threads_) thread.join();
}

bool ThreadPoolExecutor::BatchOrder::operator()(const std::shared_ptr<TaskBatch>& a,
                                                const std::shared_ptr<TaskBatch>& b) const noexcept {
  if (a->band != b->band) return a->band > b->band;  // highest band first
  if (a->deadline.has_value() != b->deadline.has_value()) {
    return a->deadline.has_value();  // any deadline beats none (EDF band)
  }
  if (a->deadline && b->deadline && *a->deadline != *b->deadline) {
    return *a->deadline < *b->deadline;  // earliest deadline first
  }
  return a->seq < b->seq;  // FIFO tie-break
}

void ThreadPoolExecutor::refresh_top_band() {
  top_queued_band_.store(queue_.empty() ? -1 : (*queue_.begin())->band,
                         std::memory_order_relaxed);
}

void ThreadPoolExecutor::enqueue(std::shared_ptr<TaskBatch> batch) {
  {
    std::lock_guard lock{mutex_};
    batch->seq = next_seq_++;
    queue_.insert(std::move(batch));
    refresh_top_band();
  }
  work_cv_.notify_all();
}

void ThreadPoolExecutor::help(TaskBatch& batch) {
  for (;;) {
    const std::size_t index = batch.cursor.fetch_add(1, std::memory_order_relaxed);
    if (index >= batch.tasks.size()) return;
    batch.tasks[index]();
    if (batch.stats) batch.stats->record(batch.deadline);
    finish_one(batch);
  }
}

void ThreadPoolExecutor::help_until_preempted(TaskBatch& batch) {
  for (;;) {
    // Band preemption at task granularity: a strictly higher-band batch in
    // the queue — an explicit higher priority, or a top-level request while
    // this batch is nested fan-out — pulls this worker away between tasks
    // (a relaxed load — the hint may be momentarily stale, which only costs
    // one lock round trip in worker_loop). The abandoned batch keeps its
    // queue slot and is resumed once the higher band drains. Deadlines
    // never preempt: EDF orders batch pickup within a band only.
    if (top_queued_band_.load(std::memory_order_relaxed) > batch.band) {
      return;
    }
    const std::size_t index = batch.cursor.fetch_add(1, std::memory_order_relaxed);
    if (index >= batch.tasks.size()) return;
    batch.tasks[index]();
    if (batch.stats) batch.stats->record(batch.deadline);
    finish_one(batch);
  }
}

void ThreadPoolExecutor::finish_one(TaskBatch& batch) {
  if (batch.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    {
      std::lock_guard guard{batch.mutex};
      batch.finished = true;
    }
    batch.done.notify_all();
  }
}

void ThreadPoolExecutor::worker_loop() {
  tls_worker_pool = this;
  for (;;) {
    std::shared_ptr<TaskBatch> batch;
    {
      std::unique_lock lock{mutex_};
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and nothing left to drain
      // Best batch under the scheduling order: band, then EDF, then FIFO.
      // The batch stays queued while unclaimed tasks remain, so several
      // workers gang up on it.
      batch = *queue_.begin();
      if (batch->cursor.load(std::memory_order_relaxed) >= batch->tasks.size()) {
        // Fully claimed (running tasks may still be finishing elsewhere);
        // retire it from the queue and look for the next batch.
        queue_.erase(queue_.begin());
        refresh_top_band();
        continue;
      }
    }
    // Claim tasks outside the queue lock — the self-scheduling hot loop is
    // one fetch_add per task (plus one relaxed preemption-hint load).
    help_until_preempted(*batch);
  }
}

void ThreadPoolExecutor::run(std::vector<std::function<void()>> tasks, SubmitOptions options) {
  if (tasks.empty()) return;
  // A run() issued from one of this pool's own tasks is nested fan-out: it
  // lands in the sub-band below independent batches of the same priority
  // (see TaskBatch::band) — the caller drives it regardless.
  auto batch = std::make_shared<TaskBatch>(std::move(tasks), options, tls_worker_pool == this);
  batch->stats = &recorder_;
  enqueue(batch);
  // The caller self-schedules on its own batch alongside the workers —
  // regardless of the batch's priority, so a nested run() from inside a
  // pool task always makes progress, even when every worker is blocked in
  // a run() of its own.
  help(*batch);
  std::unique_lock lock{batch->mutex};
  batch->done.wait(lock, [&] { return batch->finished; });
}

void ThreadPoolExecutor::submit(std::vector<std::function<void()>> tasks, SubmitOptions options) {
  if (tasks.empty()) return;
  auto batch = std::make_shared<TaskBatch>(std::move(tasks), options, tls_worker_pool == this);
  batch->stats = &recorder_;
  enqueue(std::move(batch));
}

std::string ThreadPoolExecutor::name() const {
  return "threads:" + std::to_string(threads_.size());
}

std::shared_ptr<Executor> make_executor(std::size_t jobs) {
  if (jobs <= 1) return std::make_shared<SerialExecutor>();
  return std::make_shared<ThreadPoolExecutor>(jobs);
}

}  // namespace spivar::api
