#include "api/executor.hpp"

#include <utility>

namespace spivar::api {

void SerialExecutor::run(std::vector<std::function<void()>> tasks) {
  for (auto& task : tasks) task();
}

void SerialExecutor::submit(std::vector<std::function<void()>> tasks) {
  // No background thread: submission order is execution order, and every
  // slot has landed by the time submit returns.
  run(std::move(tasks));
}

ThreadPoolExecutor::ThreadPoolExecutor(std::size_t workers) {
  std::size_t count = workers != 0 ? workers : std::thread::hardware_concurrency();
  if (count == 0) count = 1;
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPoolExecutor::~ThreadPoolExecutor() {
  {
    std::lock_guard lock{mutex_};
    stop_ = true;
  }
  work_cv_.notify_all();
  // Workers drain every queued batch before exiting, so fire-and-forget
  // submissions still complete.
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPoolExecutor::enqueue(std::shared_ptr<TaskBatch> batch) {
  {
    std::lock_guard lock{mutex_};
    queue_.push_back(std::move(batch));
  }
  work_cv_.notify_all();
}

void ThreadPoolExecutor::help(TaskBatch& batch) {
  for (;;) {
    const std::size_t index = batch.cursor.fetch_add(1, std::memory_order_relaxed);
    if (index >= batch.tasks.size()) return;
    batch.tasks[index]();
    finish_one(batch);
  }
}

void ThreadPoolExecutor::finish_one(TaskBatch& batch) {
  if (batch.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    {
      std::lock_guard guard{batch.mutex};
      batch.finished = true;
    }
    batch.done.notify_all();
  }
}

void ThreadPoolExecutor::worker_loop() {
  for (;;) {
    std::shared_ptr<TaskBatch> batch;
    {
      std::unique_lock lock{mutex_};
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and nothing left to drain
      batch = queue_.front();
      if (batch->cursor.load(std::memory_order_relaxed) >= batch->tasks.size()) {
        // Fully claimed (running tasks may still be finishing elsewhere);
        // retire it from the queue and look for the next batch.
        queue_.pop_front();
        continue;
      }
    }
    // Claim tasks outside the queue lock — the self-scheduling hot loop is
    // one fetch_add per task.
    help(*batch);
  }
}

void ThreadPoolExecutor::run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  auto batch = std::make_shared<TaskBatch>(std::move(tasks));
  enqueue(batch);
  // The caller self-schedules on its own batch alongside the workers. A
  // nested run() from inside a pool task therefore always makes progress,
  // even when every worker is blocked in a run() of its own.
  help(*batch);
  std::unique_lock lock{batch->mutex};
  batch->done.wait(lock, [&] { return batch->finished; });
}

void ThreadPoolExecutor::submit(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  enqueue(std::make_shared<TaskBatch>(std::move(tasks)));
}

std::string ThreadPoolExecutor::name() const {
  return "threads:" + std::to_string(threads_.size());
}

std::shared_ptr<Executor> make_executor(std::size_t jobs) {
  if (jobs <= 1) return std::make_shared<SerialExecutor>();
  return std::make_shared<ThreadPoolExecutor>(jobs);
}

}  // namespace spivar::api
