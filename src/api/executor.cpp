#include "api/executor.hpp"

#include <utility>

namespace spivar::api {

void SerialExecutor::run(std::vector<std::function<void()>> tasks) {
  for (auto& task : tasks) task();
}

ThreadPoolExecutor::ThreadPoolExecutor(std::size_t workers) {
  std::size_t count = workers != 0 ? workers : std::thread::hardware_concurrency();
  if (count == 0) count = 1;
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPoolExecutor::~ThreadPoolExecutor() {
  {
    std::lock_guard lock{mutex_};
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPoolExecutor::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock{mutex_};
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPoolExecutor::run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;

  // Completion state per run() call, shared with the wrapped tasks, so
  // concurrent batches from different threads never cross-signal.
  struct Batch {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining = 0;
  };
  auto batch = std::make_shared<Batch>();
  batch->remaining = tasks.size();

  {
    std::lock_guard lock{mutex_};
    for (auto& task : tasks) {
      queue_.push_back([batch, task = std::move(task)] {
        task();
        std::lock_guard guard{batch->mutex};
        if (--batch->remaining == 0) batch->done.notify_all();
      });
    }
  }
  work_cv_.notify_all();

  std::unique_lock lock{batch->mutex};
  batch->done.wait(lock, [&] { return batch->remaining == 0; });
}

std::string ThreadPoolExecutor::name() const {
  return "threads:" + std::to_string(threads_.size());
}

std::shared_ptr<Executor> make_executor(std::size_t jobs) {
  if (jobs <= 1) return std::make_shared<SerialExecutor>();
  return std::make_shared<ThreadPoolExecutor>(jobs);
}

}  // namespace spivar::api
