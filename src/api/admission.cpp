#include "api/admission.hpp"

namespace spivar::api {

AdmissionController::AdmissionController(AdmissionConfig config) : config_(config) {
  if (config_.max_miss_rate < 0.0) config_.max_miss_rate = 0.0;
  if (config_.window <= std::chrono::milliseconds{0}) {
    config_.window = std::chrono::milliseconds{1};
  }
  if (config_.retry_after < std::chrono::milliseconds{0}) {
    config_.retry_after = std::chrono::milliseconds{0};
  }
}

AdmissionDecision AdmissionController::admit(const ExecutorStats& stats) {
  AdmissionDecision decision;
  if (config_.max_miss_rate >= 1.0) {
    // Shedding disabled: skip the clock and the lock's contention entirely
    // on the common (unconfigured) path — admit() still counts verdicts.
    std::lock_guard lock{mutex_};
    ++admitted_;
    return decision;
  }
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard lock{mutex_};
  if (!primed_ || now - window_start_ >= config_.window) {
    // Window rollover: the deltas accumulated so far become history and
    // the cumulative counters re-baseline. The first request of a fresh
    // window therefore projects from an empty window and admits (below
    // min_samples) — one admitted probe per window is what lets the
    // controller notice the queue has drained.
    base_completed_ = stats.completed;
    base_misses_ = stats.deadline_misses;
    window_start_ = now;
    primed_ = true;
  }
  const std::uint64_t completed = stats.completed - base_completed_;
  const std::uint64_t misses = stats.deadline_misses - base_misses_;
  if (completed >= config_.min_samples) {
    decision.projected_miss_rate =
        static_cast<double>(misses) / static_cast<double>(completed);
    if (decision.projected_miss_rate >= config_.max_miss_rate) {
      decision.admitted = false;
      decision.retry_after = config_.retry_after;
      ++rejected_;
      return decision;
    }
  }
  ++admitted_;
  return decision;
}

std::uint64_t AdmissionController::admitted() const noexcept {
  std::lock_guard lock{mutex_};
  return admitted_;
}

std::uint64_t AdmissionController::rejected() const noexcept {
  std::lock_guard lock{mutex_};
  return rejected_;
}

}  // namespace spivar::api
