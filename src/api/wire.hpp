// api::wire — the versioned line-oriented wire protocol of the envelope.
//
// Every AnyRequest and every Result<AnyResponse> (success payloads of all
// five kinds *and* diagnostics-carrying failures) encodes to a plain-text
// *frame*: a header line carrying the protocol version, `key value...` body
// lines, and a terminating `end` line. Frames follow the `variants v1`
// textio discipline — versioned header, one fact per line, strings quoted
// with backslash escapes, declaration order preserved — so a recorded
// request log is diffable, hand-editable, and replayable byte for byte.
//
//   request v1 simulate
//   target "fig2"
//   priority high
//   seed 7
//   resolution random
//   end
//
//   response v1 ok simulate
//   model "fig2"
//   total-firings 42
//   ...
//   end
//
// Round-trip contract: decode(encode(x)) reproduces every field of x
// bit-identically (doubles travel as shortest-round-trip decimals via
// std::to_chars), so a spivar_serve client observes exactly the results an
// in-process session would return. Decoding never throws: malformed input,
// unknown keys, and version mismatches come back as failed Results whose
// diagnostics carry the offending 1-based line number (diag::kWireError).
//
// The service front end (tools/spivar_serve) speaks three more one-purpose
// frames on top of the envelope pair: `batch v1 <n>` prefixing n request
// frames evaluated as one heterogeneous Session::submit, `control v1
// <command> ...` for session management (load/unload/stats/shutdown), and
// `info v1` carrying a control reply's rendered text.
//
// Version 2 adds *pipelining*: a v2 request header carries a client-chosen
// frame id and its reply echoes it, so a server may stream replies out of
// arrival order the moment each evaluation completes:
//
//   request v2 simulate 17          response v2 17 ok simulate
//   target "fig2"                   model "fig2"
//   end                             ...
//                                   end
//
// Bodies are identical across versions; only the header line differs. The
// decoders accept both versions, v1 frames simply have no frame id.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/requests.hpp"
#include "api/responses.hpp"
#include "api/result.hpp"

namespace spivar::api::wire {

/// Protocol version stamped into strictly-ordered frame headers; the
/// highest version every decoder accepts is kVersionPipelined.
inline constexpr int kVersion = 1;
/// Pipelined protocol version: request headers carry a client-chosen frame
/// id, response headers echo it, replies may arrive out of order.
inline constexpr int kVersionPipelined = 2;

// --- envelope frames ---------------------------------------------------------

/// `request v1 <kind>` frame for one envelope: target spec, scheduling
/// options, and every non-default payload field.
[[nodiscard]] std::string encode(const AnyRequest& request);

/// `request v2 <kind> <id>` — the pipelined header; the reply to this frame
/// echoes `frame_id`, so it may be correlated out of arrival order.
[[nodiscard]] std::string encode(const AnyRequest& request, std::uint64_t frame_id);

/// `response v1 ok <kind>` / `response v1 error` frame for one evaluation
/// result, diagnostics (failure lists and success notes) included.
[[nodiscard]] std::string encode(const Result<AnyResponse>& result);

/// `response v2 <id> ok <kind>` / `response v2 <id> error` — the pipelined
/// reply, tagged with the request's frame id.
[[nodiscard]] std::string encode(const Result<AnyResponse>& result, std::uint64_t frame_id);

/// Parses one request frame (either version; a v2 header's frame id is
/// validated and skipped — peek it with request_frame_id). Malformed input
/// fails with diag::kWireError and a "line N: ..." message; omitted payload
/// keys keep their designated-initializer defaults, so hand-written frames
/// stay terse.
[[nodiscard]] Result<AnyRequest> decode_request(std::string_view frame);

/// Parses one response frame (either version) back into the Result an
/// in-process call would have returned. A transported error response
/// decodes as that failure; a malformed frame fails with diag::kWireError
/// (line-numbered).
[[nodiscard]] Result<AnyResponse> decode_response(std::string_view frame);

/// The frame id of a v2 request header, nullopt for v1 frames or headers
/// too malformed to carry one (`request v2 <kind> <id>` — the id must be a
/// plain u64). A cheap header peek: body lines are not examined, so a
/// frame with a readable id but a rotten body still yields the id the
/// error reply should be tagged with.
[[nodiscard]] std::optional<std::uint64_t> request_frame_id(std::string_view frame);

/// The frame id of a v2 response header (`response v2 <id> ...`), nullopt
/// for v1 responses or unreadable headers.
[[nodiscard]] std::optional<std::uint64_t> response_frame_id(std::string_view frame);

// --- service frames ----------------------------------------------------------

/// Frame announcing `slots` request frames evaluated as one heterogeneous
/// streaming batch ("batch v1 <n>\nend\n" — like every frame, it is
/// `end`-terminated).
[[nodiscard]] std::string batch_header(std::size_t slots);

/// Slot count of a batch header frame; nullopt when `frame` is not a
/// well-formed batch header of this version (a bare header without `end`
/// is accepted for hand-written logs).
[[nodiscard]] std::optional<std::size_t> parse_batch_header(std::string_view frame);

/// Control frame: "control v1 <command> [quoted args...]\nend\n".
[[nodiscard]] std::string control_frame(std::string_view command,
                                        const std::vector<std::string>& args = {});

/// Command + decoded args of a control frame; nullopt when `frame` is not
/// a control frame of this version.
struct ControlCommand {
  std::string command;
  std::vector<std::string> args;
};
[[nodiscard]] std::optional<ControlCommand> parse_control(std::string_view frame);

/// `info v1` frame carrying a control reply's rendered text verbatim.
[[nodiscard]] std::string encode_info(std::string_view text);
[[nodiscard]] Result<std::string> decode_info(std::string_view frame);

/// Hello frame binding a connection to a tenant namespace:
/// "hello v1 <tenant> [token]\nend\n". Sent once, before any request; a
/// connection that never says hello stays in the default tenant and sees
/// exactly the pre-tenancy service (full v1/v2 compatibility).
[[nodiscard]] std::string hello_frame(std::string_view tenant, std::string_view token = {});

/// Tenant + optional token of a hello frame; nullopt when `frame` is not a
/// hello frame of this version.
struct HelloCommand {
  std::string tenant;
  std::string token;  ///< empty when the frame carried none
};
[[nodiscard]] std::optional<HelloCommand> parse_hello(std::string_view frame);

// --- stream utilities --------------------------------------------------------

/// Reads the next frame from `in`: skips blank lines, then accumulates
/// lines through the terminating `end` (every frame kind is
/// `end`-terminated, so one malformed frame consumes exactly one frame).
/// nullopt at EOF. The result includes the trailing newline and feeds
/// straight into the decoders.
[[nodiscard]] std::optional<std::string> read_frame(std::istream& in);

/// Quotes `text` for a frame line: wraps in double quotes, escaping
/// backslash, quote, newline, carriage return and tab.
[[nodiscard]] std::string quote(std::string_view text);

}  // namespace spivar::api::wire
