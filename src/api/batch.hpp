// Streaming batch evaluation — the async face of the session's batch
// surface.
//
// submit_simulate_batch / submit_explore_batch / submit_compare return a
// BatchHandle<Response>: one future per slot, an optional on_slot callback
// streamed as results land, a blocking wait(), and a cooperative cancel().
// Slot tasks capture immutable ModelStore snapshots (never the session), so
// a handle stays valid across session moves, model unloads, and even the
// session's destruction.
//
//   auto handle = session.submit_simulate_batch(requests,
//       [](std::size_t slot, const api::Result<api::SimulateResponse>& r) {
//         std::cout << "slot " << slot << (r.ok() ? " ok" : " failed") << "\n";
//       });
//   handle.slot(0).wait();             // first result, before the batch ends
//   auto results = handle.wait();      // everything, in slot order
//
// Ordering contract per slot: the result is computed, on_slot fires on the
// evaluating thread, then the slot's future becomes ready. Slot results are
// bit-identical to the blocking batch entry points (and therefore to serial
// evaluation) regardless of executor or cancellation-free interleaving.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "api/executor.hpp"
#include "api/result.hpp"

namespace spivar::api {

/// Streamed per-slot delivery: `on_slot(index, result)` runs on the thread
/// that evaluated the slot, exactly once per slot, including cancelled ones.
template <typename Response>
using SlotCallback = std::function<void(std::size_t, const Result<Response>&)>;

namespace detail {

/// Canonical diagnostics for a slot that was cancelled before evaluation.
[[nodiscard]] support::DiagnosticList cancelled_diagnostics(std::size_t slot);

/// Response-type-independent batch progress: landed-slot count and the
/// cooperative cancellation flag checked by not-yet-started slot tasks.
class BatchCore {
 public:
  explicit BatchCore(std::size_t total) noexcept : total_(total) {}

  void request_cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  void mark_landed() noexcept { landed_.fetch_add(1, std::memory_order_acq_rel); }
  [[nodiscard]] std::size_t landed() const noexcept {
    return landed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] bool done() const noexcept { return landed() == total_; }

 private:
  const std::size_t total_;
  std::atomic<std::size_t> landed_{0};
  std::atomic<bool> cancelled_{false};
};

/// Shared state behind one BatchHandle: the slot promises plus the core.
/// Slot tasks own a shared_ptr, so the state outlives the handle.
template <typename Response>
struct BatchState {
  explicit BatchState(std::size_t total, SlotCallback<Response> callback)
      : core(total), on_slot(std::move(callback)), promises(total) {
    futures.reserve(total);
    for (auto& promise : promises) futures.push_back(promise.get_future().share());
  }

  /// Per-slot delivery pipeline: callback, landed counter, then the future
  /// last — a caller woken by a ready future can rely on its on_slot having
  /// fired, and a wait() over every future implies done(). A throwing
  /// callback is contained here: the slot must still land (its promise set,
  /// the counter bumped) or waiters hang, and nothing may escape into an
  /// executor worker.
  void deliver(std::size_t slot, Result<Response> result) {
    if (on_slot) {
      try {
        on_slot(slot, result);
      } catch (...) {
        // Swallowed by contract: on_slot is a progress stream, not a place
        // for control flow — the slot's result is what wait() reports.
      }
    }
    core.mark_landed();
    promises[slot].set_value(std::move(result));
  }

  BatchCore core;
  SlotCallback<Response> on_slot;
  std::vector<std::promise<Result<Response>>> promises;
  std::vector<std::shared_future<Result<Response>>> futures;
};

}  // namespace detail

/// Handle to an in-flight (or finished) batch. Cheap to move; destroying it
/// does NOT cancel or wait — slots keep evaluating and simply become
/// unobservable. Hold the handle (or wait()) when the results matter.
template <typename Response>
class BatchHandle {
 public:
  BatchHandle() = default;

  [[nodiscard]] std::size_t size() const noexcept { return state_ ? state_->core.total() : 0; }

  /// Slots that have landed (delivered a result, cancelled included).
  [[nodiscard]] std::size_t landed() const noexcept { return state_ ? state_->core.landed() : 0; }
  [[nodiscard]] bool done() const noexcept { return !state_ || state_->core.done(); }

  /// The future of slot `index`; ready as soon as that slot lands, typically
  /// long before the whole batch does.
  [[nodiscard]] const std::shared_future<Result<Response>>& slot(std::size_t index) const {
    return state_->futures.at(index);
  }

  /// Blocks until every slot has landed and returns the results in slot
  /// order — bit-identical to the blocking batch entry points. Callable any
  /// number of times. wait() does not execute tasks itself, so call it from
  /// a thread outside the session's pool (the blocking batch entry points,
  /// which do participate, are the safe choice inside pool tasks).
  [[nodiscard]] std::vector<Result<Response>> wait() const {
    std::vector<Result<Response>> results;
    if (!state_) return results;
    results.reserve(state_->futures.size());
    for (const auto& future : state_->futures) results.push_back(future.get());
    return results;
  }

  /// Cooperative cancellation: slots whose evaluation has not started land
  /// as failures carrying diag::kCancelled (their on_slot still fires);
  /// slots already evaluating or landed keep their results. wait() after
  /// cancel() still returns every slot. Safe from any thread, including
  /// from inside on_slot.
  void cancel() const {
    if (state_) state_->core.request_cancel();
  }
  [[nodiscard]] bool cancel_requested() const noexcept {
    return state_ && state_->core.cancel_requested();
  }

 private:
  template <typename R>
  friend BatchHandle<R> make_batch_handle(std::shared_ptr<detail::BatchState<R>>,
                                          std::shared_ptr<Executor>);

  std::shared_ptr<detail::BatchState<Response>> state_;
  std::shared_ptr<Executor> executor_;  ///< keeps the pool alive past the session
};

template <typename R>
[[nodiscard]] BatchHandle<R> make_batch_handle(std::shared_ptr<detail::BatchState<R>> state,
                                               std::shared_ptr<Executor> executor) {
  BatchHandle<R> handle;
  handle.state_ = std::move(state);
  handle.executor_ = std::move(executor);
  return handle;
}

}  // namespace spivar::api
