// api::SpecCache — spec-string → model-handle memoization over a ModelStore.
//
// Front ends that chain commands over one store (the CLI's `--then`
// segments) want "load fig2 --opt variants=3" to parse/build once and reuse
// the handle afterwards. The cache is *tombstone-aware*: a handle whose
// model was unloaded in the meantime is dropped and the spec is loaded
// fresh under a new id and generation — a later stage can never resurrect a
// tombstoned id (and, transitively, never hit results the cache invalidated
// for it).
//
//   api::SpecCache specs{store};
//   auto a = specs.resolve("fig2");                    // loads
//   auto b = specs.resolve("fig2");                    // same handle
//   store->unload(a.value().id);
//   auto c = specs.resolve("fig2");                    // fresh load, new id
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/options.hpp"
#include "api/responses.hpp"
#include "api/result.hpp"
#include "api/store.hpp"

namespace spivar::api {

class StoreView;

class SpecCache {
 public:
  explicit SpecCache(std::shared_ptr<ModelStore> store);

  /// Routes every load (and the liveness check behind handle reuse) through
  /// a tenant's StoreView from now on: resolved handles are tenant-owned,
  /// quota-checked and content-salted. Null unbinds (back to direct store
  /// loads). The view must wrap this cache's store.
  void bind_view(std::shared_ptr<StoreView> view);

  /// Resolves `spec` (builtin name or .spit path) with optional repeatable
  /// "key=value" option assignments. Reuses the handle loaded earlier for
  /// the same (spec, assignments) combination while it is still live;
  /// assignments require `spec` to be a builtin (diag::kBadOption
  /// otherwise).
  Result<ModelInfo> resolve(const std::string& spec,
                            const std::vector<std::string>& assignments = {});

  /// The handle an earlier resolve() issued for this (spec, assignments)
  /// combination — without loading and without the tombstone check, so a
  /// caller can observe the full three-way UnloadStatus contract (the CLI's
  /// `unload` command). nullopt when the combination was never resolved.
  [[nodiscard]] std::optional<ModelId> peek(const std::string& spec,
                                            const std::vector<std::string>& assignments = {}) const;

  /// Every handle resolved for `spec` across all assignments combinations,
  /// in key order — `unload <spec>` without `--opt` targets all of them (a
  /// spec loaded as `--opt variants=3` is still "the same spec").
  [[nodiscard]] std::vector<ModelId> handles(const std::string& spec) const;

  [[nodiscard]] const std::shared_ptr<ModelStore>& store() const noexcept { return store_; }

 private:
  std::shared_ptr<ModelStore> store_;
  std::shared_ptr<StoreView> view_;  ///< tenant routing; null = direct store
  std::map<std::string, ModelId> loaded_;
};

}  // namespace spivar::api
