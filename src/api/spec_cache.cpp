#include "api/spec_cache.hpp"

#include <utility>

#include "api/registry.hpp"
#include "api/store_view.hpp"
#include "corpus/spec.hpp"

namespace spivar::api {

SpecCache::SpecCache(std::shared_ptr<ModelStore> store) : store_(std::move(store)) {
  if (!store_) store_ = std::make_shared<ModelStore>();
}

void SpecCache::bind_view(std::shared_ptr<StoreView> view) { view_ = std::move(view); }

namespace {

std::string cache_key(const std::string& spec, const std::vector<std::string>& assignments) {
  std::string key = spec;
  for (const std::string& assignment : assignments) key += "\n" + assignment;
  return key;
}

}  // namespace

std::optional<ModelId> SpecCache::peek(const std::string& spec,
                                       const std::vector<std::string>& assignments) const {
  const auto it = loaded_.find(cache_key(spec, assignments));
  if (it == loaded_.end()) return std::nullopt;
  return it->second;
}

std::vector<ModelId> SpecCache::handles(const std::string& spec) const {
  // Keys are "spec" or "spec\nassignment...": match the bare spec and every
  // assignments variant, never a different spec with a shared prefix.
  std::vector<ModelId> out;
  for (const auto& [key, id] : loaded_) {
    if (key == spec || (key.size() > spec.size() && key[spec.size()] == '\n' &&
                        key.compare(0, spec.size(), spec) == 0)) {
      out.push_back(id);
    }
  }
  return out;
}

Result<ModelInfo> SpecCache::resolve(const std::string& spec,
                                     const std::vector<std::string>& assignments) {
  std::string key = cache_key(spec, assignments);

  if (const auto it = loaded_.find(key); it != loaded_.end()) {
    Result<ModelInfo> info = view_ ? view_->info(it->second) : store_->info(it->second);
    if (info.ok()) return info;
    // The cached handle was tombstoned (or the store never knew it): drop
    // the mapping instead of resurrecting a dead id, and load fresh below —
    // the reload gets a new id and generation, so stale cached results are
    // unreachable by construction.
    loaded_.erase(it);
  }

  Result<ModelInfo> loaded = [&] {
    if (assignments.empty()) {
      return view_ ? view_->load_model(spec) : store_->load_model(spec);
    }
    // Corpus names take the builtin path too: parse_builtin_options starts
    // from the name-parsed spec, so malformed names get grammar diagnostics.
    if (!find_builtin(spec) && !corpus::is_corpus_name(spec)) {
      return Result<ModelInfo>::failure(
          diag::kBadOption, "'--opt' requires a built-in model, and '" + spec + "' is not one");
    }
    const auto options = parse_builtin_options(spec, assignments);
    if (!options.ok()) return Result<ModelInfo>::failure(options.diagnostics());
    const LoadBuiltinRequest request{.name = spec, .options = options.value()};
    return view_ ? view_->load_builtin(request) : store_->load_builtin(request);
  }();
  if (loaded.ok()) loaded_.emplace(std::move(key), loaded.value().id);
  return loaded;
}

}  // namespace spivar::api
