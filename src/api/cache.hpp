// api::ResultCache — memoized evaluation results keyed by (snapshot, request).
//
// PR 3 made every eval path run against immutable StoreEntry snapshots; this
// cache exploits that: a (store entry id, entry generation, request kind,
// canonical request fingerprint) key uniquely identifies a deterministic
// evaluation, so repeated scenario sweeps (order sweeps, seed grids, compare
// re-runs) return the memoized result instead of re-simulating. Hits are
// bit-identical to cold evaluations — the cache stores the full Result<T>
// and hands back copies.
//
//   auto store = std::make_shared<api::ModelStore>();
//   store->enable_cache({.capacity = 1024});
//   api::Session session{store};           // every eval path is now fronted
//   session.simulate(request);             // miss: evaluates, inserts
//   session.simulate(request);             // hit: returns the cached result
//
// Admission is *cost-aware*: every entry is charged its measured evaluation
// time, and eviction drops the cheapest entry within a small window at the
// LRU tail (CacheConfig::cost_window) instead of blindly dropping the least
// recent — a sub-microsecond simulate hit no longer weighs the same as a
// multi-second compare. CacheStats accounts the held/saved/evicted cost.
// With CacheConfig::adaptive_window the window tunes itself from the
// observed evicted-cost / saved-cost ratio.
//
// With CacheConfig::persist the cache grows a durable second tier
// (persist::DiskTier): inserts write through to disk, memory misses consult
// disk and promote on hit, evicted entries spill down. Disk entries are
// keyed by the model's *content* fingerprint (not its store id), so a
// restarted process loading the same models re-hits results computed by an
// earlier life — see persist/disk_tier.hpp for the on-disk contract.
//
// Concurrency contract:
//   * find/insert/invalidate_model/stats are safe from any thread — the
//     cache is sharded (per-shard mutex + LRU list), so concurrent batch
//     workers do not serialize on one lock.
//   * Stale entries are impossible by construction: store ids are never
//     reused and each entry carries a distinct generation, so an
//     unload/reload pair changes the key. ModelStore::unload additionally
//     invalidates the unloaded id's entries eagerly (memory, not
//     correctness).
//   * Two threads missing on the same key both evaluate and both insert;
//     results are deterministic, so the duplicate insert is benign.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "api/requests.hpp"
#include "api/result.hpp"
#include "persist/persist.hpp"
#include "support/hash.hpp"

namespace spivar::persist {
class DiskTier;
}  // namespace spivar::persist

namespace spivar::api {

struct CacheConfig {
  /// Maximum cached results across all shards; at least one per shard.
  std::size_t capacity = 1024;
  /// Independent LRU shards (each with its own lock); clamped to >= 1.
  std::size_t shards = 8;
  /// Cost-aware admission: an eviction examines up to this many entries from
  /// the LRU tail and drops the *cheapest* (measured eval time), so a 624 ns
  /// simulate result can never push a multi-second compare out of the cache.
  /// 1 degrades to classic LRU (recency only); clamped to >= 1.
  std::size_t cost_window = 4;
  /// Adaptive cost_window tuning: every 32 evictions the cache compares the
  /// average cost an eviction throws away against the average cost a hit
  /// saves, widening the window (×2, up to 64) when evictions are throwing
  /// away more than hits recover and shrinking it (÷2, down to 1) when the
  /// workload's hits dwarf its evictions and plain recency suffices.
  bool adaptive_window = false;
  /// When set, attaches a persistent second tier (persist::DiskTier) under
  /// the configured directory: in-memory misses consult disk and promote on
  /// hit, inserts write through, evicted entries spill down — so a restarted
  /// process re-hits results computed by an earlier life (keys are content
  /// fingerprints, not store ids). A directory that cannot be provisioned
  /// disables the tier with a diagnostic; the memory tier is unaffected.
  std::optional<persist::PersistConfig> persist;
  /// Spill execution. true (the default) drains write-through and eviction
  /// spills through a bounded queue on a background thread, so the request
  /// path no longer pays the tier's I/O (~85 µs per insert) in the caller's
  /// thread. false performs every spill synchronously in the inserting
  /// thread — the durability mode: an insert returning implies its entry is
  /// on disk. FsyncPolicy::kAlways forces synchronous spills regardless
  /// (fsync-per-write durability is meaningless from a lossy async queue).
  /// Ignored without `persist`.
  bool async_spill = true;
  /// Bounded async spill queue capacity: an enqueue beyond it *drops* the
  /// spill (counted in CacheStats::disk_dropped_spills) instead of blocking
  /// the request path or growing without bound — the entry stays served
  /// from memory and rewrites on its next insert or eviction. Clamped to
  /// >= 1.
  std::size_t spill_queue = 1024;
};

/// Monotonic counters plus the current fill — one consistent snapshot per
/// call (see ResultCache::stats), rendered by the CLI's `cache-stats`.
/// The `*_cost_us` columns account for the measured evaluation time each
/// entry was charged on insert: how much compute the cache currently holds,
/// how much hits have saved, and how much evictions threw away.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;      ///< entries dropped by cost-weighted LRU
  std::uint64_t invalidations = 0;  ///< entries dropped by model unload
  std::size_t entries = 0;          ///< currently cached results
  std::size_t capacity = 0;
  std::uint64_t cached_cost_us = 0;   ///< summed eval cost of current entries
  std::uint64_t saved_cost_us = 0;    ///< eval cost returned from hits (RAM + disk)
  std::uint64_t evicted_cost_us = 0;  ///< eval cost dropped by eviction

  /// Cost-window tuning: the window currently in effect and how many times
  /// adaptive tuning has changed it (0 adaptations with adaptive off).
  std::size_t cost_window = 0;
  std::uint64_t window_adaptations = 0;

  /// Persistent tier (all zero when `persistent` is false).
  bool persistent = false;
  std::uint64_t disk_hits = 0;      ///< memory misses served from disk
  std::uint64_t disk_misses = 0;    ///< memory misses that missed disk too
  std::uint64_t disk_spills = 0;    ///< entries written to disk (write-through + evict)
  std::uint64_t disk_promotes = 0;  ///< disk hits decoded back into the memory tier
  std::uint64_t disk_skipped = 0;   ///< corrupt/stale disk entries skipped + compacted
  std::uint64_t disk_evictions = 0; ///< disk entries deleted for capacity_bytes
  std::size_t disk_entries = 0;     ///< entry files currently on disk
  std::uint64_t disk_bytes = 0;     ///< bytes those files occupy
  std::uint64_t disk_capacity_bytes = 0;
  /// Async spill queue (zero/false when spills are synchronous).
  bool disk_async = false;            ///< spills drain on a background thread
  std::size_t disk_queue_depth = 0;   ///< spills currently queued
  std::size_t disk_queue_capacity = 0;
  std::uint64_t disk_dropped_spills = 0;  ///< spills dropped at a full queue

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

/// Per-tenant slice of the cache counters (see ResultCache::tenant_stats).
/// `hits` counts lookups served from either tier, `misses` lookups that
/// fell through to evaluation — the served/evaluated split a tenant cares
/// about, not the global memory/disk tier split.
struct TenantCacheStats {
  std::uint32_t tag = 0;          ///< tenant tag (0 = default tenant)
  std::uint64_t hits = 0;         ///< lookups served (memory or disk)
  std::uint64_t misses = 0;       ///< lookups that evaluated
  std::uint64_t evictions = 0;    ///< this tenant's entries dropped for capacity
  std::size_t entries = 0;        ///< entries currently held
  std::size_t cap = 0;            ///< entry cap (0 = unlimited)

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

class ResultCache {
 public:
  /// `sink` is where the persistent tier (when configured) reports skipped
  /// entries and I/O trouble; empty uses stderr. It is unused without
  /// CacheConfig::persist.
  explicit ResultCache(CacheConfig config = {}, persist::DiagnosticSink sink = {});
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Full cache key. `model`/`generation` pin the snapshot (ids are never
  /// reused; generation distinguishes reloads), `kind` discriminates the
  /// response type behind the type-erased slot, `fingerprint` is the
  /// canonical request digest. `content` is the model's canonical content
  /// fingerprint — the restart-stable half of the snapshot identity that
  /// keys the persistent tier; 0 means "no content identity" and such
  /// entries never touch disk.
  struct Key {
    std::uint32_t model = 0;
    std::uint64_t generation = 0;
    RequestKind kind = RequestKind::kSimulate;
    std::uint64_t fingerprint = 0;
    std::uint64_t content = 0;

    friend bool operator==(const Key&, const Key&) noexcept = default;
  };

  /// The cached result for `key`, or nullptr on a miss. `Response` must be
  /// the response type of `key.kind` — callers go through detail::with_cache,
  /// which derives both from the same request.
  template <typename Response>
  [[nodiscard]] std::shared_ptr<const Result<Response>> find(const Key& key) {
    return std::static_pointer_cast<const Result<Response>>(lookup(key));
  }

  /// Memoizes `result` (success or deterministic failure) under `key`,
  /// charging the entry `cost_us` — its measured evaluation time, the weight
  /// cost-aware eviction protects. Replaces any previous entry; when the
  /// shard is full, the cheapest entry within the LRU tail's cost window is
  /// evicted.
  template <typename Response>
  void insert(const Key& key, Result<Response> result, std::uint64_t cost_us = 0) {
    store(key, std::make_shared<const Result<Response>>(std::move(result)), cost_us);
  }

  /// Drops every entry cached for `model` (any generation, any kind) — the
  /// unload-tombstone hook. The id is also remembered as dead: an in-flight
  /// batch slot finishing *after* the unload cannot repopulate the cache
  /// with entries no lookup could ever reach (store ids are never reused).
  void invalidate_model(std::uint32_t model);

  /// Empties the memory tier; `include_disk` additionally deletes every
  /// entry file of the persistent tier.
  void clear(bool include_disk = false);

  /// True when a persistent tier is attached and usable.
  [[nodiscard]] bool persistent() const noexcept { return tier_ != nullptr; }

  /// Writes every memory-tier entry with a content identity that is not yet
  /// on disk down to the persistent tier, then flushes directory metadata.
  /// Returns the number of entries written; 0 without a persistent tier.
  /// (Inserts already write through — this is the admin hook that catches
  /// entries whose model had no fingerprint *at lookup time* and makes
  /// `cache persist` an explicit durability point.)
  std::size_t persist_all();

  /// Blocks until every queued async spill has been written (no-op with
  /// synchronous spills). persist_all() and clear(include_disk) drain
  /// implicitly; tests drain before asserting exact disk counters.
  void drain_spills();

  [[nodiscard]] CacheStats stats() const;

  // --- tenant scoping --------------------------------------------------------
  //
  // Multi-tenant accounting keys on a small per-tenant tag: StoreView tags
  // every id it loads, set_tenant_cap bounds how many entries a tag's
  // models may occupy, and tenant_stats() slices the counters per tag.
  // Untagged models (every pre-tenancy caller) belong to tag 0, which is
  // never capped and never attributed — the default tenant's behavior is
  // bit-identical to a cache that has never heard of tenants.

  /// Tags every entry of `model` (present and future) as belonging to
  /// tenant `tag`. Ids are never reused, so a binding is forever.
  void bind_model_tenant(std::uint32_t model, std::uint32_t tag);

  /// Caps tenant `tag` at `max_entries` cached results (0 = unlimited).
  /// At the cap, an insert for the tenant evicts the tenant's own least
  /// recent entry first — other tenants' entries are untouchable, which is
  /// what keeps one tenant's eviction storm out of everyone else's hit
  /// rate.
  void set_tenant_cap(std::uint32_t tag, std::size_t max_entries);

  /// Per-tenant counter slices, ascending tag; tenants appear once bound
  /// or capped. Tag 0 is omitted — the default tenant reads the global
  /// stats().
  [[nodiscard]] std::vector<TenantCacheStats> tenant_stats() const;

 private:
  using Slot = std::shared_ptr<const void>;

  struct KeyHasher {
    std::size_t operator()(const Key& key) const noexcept {
      return static_cast<std::size_t>(hash_key(key));
    }
  };

  struct Entry {
    Key key;
    Slot slot;
    std::uint64_t cost_us = 0;  ///< measured eval time charged on insert
    std::uint32_t tenant = 0;   ///< owning tenant tag, resolved at insert
  };

  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recently used; the map indexes into this list.
    std::list<Entry> lru;
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHasher> index;
  };

  [[nodiscard]] static std::uint64_t hash_key(const Key& key) noexcept;
  [[nodiscard]] Shard& shard_of(std::uint64_t hash) noexcept {
    return shards_[hash % shards_.size()];
  }

  [[nodiscard]] Slot lookup(const Key& key);
  void store(const Key& key, Slot slot, std::uint64_t cost_us);
  /// The memory-tier half of store(): dead-model refusal, LRU insert, and
  /// eviction. Returns the evicted entry (for the caller to spill) when the
  /// insert displaced one.
  std::optional<Entry> store_memory(const Key& key, Slot slot, std::uint64_t cost_us);
  /// Removes and returns the cheapest entry among the cost-window least
  /// recently used ones (ties keep the least recent) and ticks the adaptive
  /// window. Call with the shard lock held.
  [[nodiscard]] Entry evict_one(Shard& shard);
  /// The every-32-evictions adaptive cost_window adjustment.
  void adapt_window();
  /// Routes one entry toward the persistent tier (no-op without one or
  /// without a content identity): enqueued for the background drain thread
  /// when spills are async, written in the calling thread otherwise.
  /// `only_if_absent` is the spill path — write-through entries always
  /// (re)write.
  void spill(Entry entry, bool only_if_absent);
  /// The synchronous tier write behind spill().
  void spill_now(const Entry& entry, bool only_if_absent);
  /// The background drain loop: pops queued spills and writes them until
  /// stop is flagged *and* the queue is empty (a stopping cache finishes
  /// its writes — the destructor's durability hand-off).
  void drain_loop();

  std::vector<Shard> shards_;
  mutable std::mutex dead_mutex_;  ///< guards dead_models_ (insert-miss path only)
  /// Ids invalidate_model has seen; inserts for them are refused. Grows by
  /// 4 bytes per unload — ids are never reused, so it never shrinks.
  std::unordered_set<std::uint32_t> dead_models_;
  std::size_t capacity_;  ///< configured total, as reported by stats()
  /// ceil(capacity / shards): sharding rounds the enforced total up by at
  /// most shards-1 so every shard holds at least one entry.
  std::size_t per_shard_capacity_;
  /// LRU-tail entries examined per eviction; atomic because adaptive tuning
  /// rewrites it while shard threads read it.
  std::atomic<std::size_t> cost_window_;
  bool adaptive_window_;
  /// The persistent second tier; null when not configured (or its directory
  /// was unusable). All tier I/O happens *outside* shard locks.
  std::unique_ptr<persist::DiskTier> tier_;

  /// Queued spill work: one entry plus the only_if_absent flag it was
  /// enqueued with. Slots are shared_ptrs, so a queued spill keeps its
  /// result alive (bounded by spill_queue_limit_) even if the memory tier
  /// evicts it meanwhile.
  struct SpillTask {
    Entry entry;
    bool only_if_absent = false;
  };
  bool async_spill_ = false;  ///< tier attached and background drain active
  std::size_t spill_queue_limit_ = 0;
  mutable std::mutex spill_mutex_;
  std::condition_variable spill_cv_;    ///< work available / stop flagged
  std::condition_variable spill_idle_;  ///< queue empty and writer idle
  std::deque<SpillTask> spill_queue_;
  bool spill_stop_ = false;
  bool spill_busy_ = false;  ///< a popped task is being written right now
  std::thread spill_thread_;
  std::atomic<std::uint64_t> dropped_spills_{0};

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> saved_cost_us_{0};
  std::atomic<std::uint64_t> evicted_cost_us_{0};
  std::atomic<std::uint64_t> disk_promotes_{0};
  std::atomic<std::uint64_t> window_adaptations_{0};

  // --- tenant accounting ------------------------------------------------------
  //
  // Lock order: tenant_mutex_ and the shard mutexes are never held together.
  // Shard-locked code records what happened and the tenant ledger is updated
  // after the shard lock drops; enforce_tenant_cap reads the ledger first,
  // then takes shard locks one at a time to find a victim. The ledger may
  // therefore lag a racing insert by one entry — caps are enforced to ±1
  // under contention, never violated steadily.

  struct TenantAccount {
    std::size_t cap = 0;      ///< 0 = unlimited
    std::size_t entries = 0;  ///< entries currently held (ledger copy)
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  /// The tag `model` was bound to, 0 when unbound (default tenant).
  [[nodiscard]] std::uint32_t tenant_of(std::uint32_t model) const;
  /// Attributes one lookup outcome (served from either tier, or evaluated).
  void note_tenant_lookup(std::uint32_t tag, bool served);
  /// Ledger delta after an insert landed (shard lock already released).
  void note_tenant_insert(std::uint32_t tag);
  /// Ledger delta after `count` entries left the memory tier; `evicted`
  /// distinguishes capacity evictions from unload invalidations.
  void note_tenant_removed(std::uint32_t tag, bool evicted, std::size_t count = 1);
  /// While `tag` sits at its entry cap, evicts the tenant's own (oldest
  /// found, scanning shard tails) entry and spills it down — making room
  /// for one incoming insert without touching any other tenant's entries.
  void enforce_tenant_cap(std::uint32_t tag);

  mutable std::mutex tenant_mutex_;  ///< guards tenants_ and model_tenant_
  std::unordered_map<std::uint32_t, TenantAccount> tenants_;
  /// model id -> tenant tag; ids are never reused, so bindings are forever.
  std::unordered_map<std::uint32_t, std::uint32_t> model_tenant_;
};

}  // namespace spivar::api
