// api::ResultCache — memoized evaluation results keyed by (snapshot, request).
//
// PR 3 made every eval path run against immutable StoreEntry snapshots; this
// cache exploits that: a (store entry id, entry generation, request kind,
// canonical request fingerprint) key uniquely identifies a deterministic
// evaluation, so repeated scenario sweeps (order sweeps, seed grids, compare
// re-runs) return the memoized result instead of re-simulating. Hits are
// bit-identical to cold evaluations — the cache stores the full Result<T>
// and hands back copies.
//
//   auto store = std::make_shared<api::ModelStore>();
//   store->enable_cache({.capacity = 1024});
//   api::Session session{store};           // every eval path is now fronted
//   session.simulate(request);             // miss: evaluates, inserts
//   session.simulate(request);             // hit: returns the cached result
//
// Admission is *cost-aware*: every entry is charged its measured evaluation
// time, and eviction drops the cheapest entry within a small window at the
// LRU tail (CacheConfig::cost_window) instead of blindly dropping the least
// recent — a sub-microsecond simulate hit no longer weighs the same as a
// multi-second compare. CacheStats accounts the held/saved/evicted cost.
//
// Concurrency contract:
//   * find/insert/invalidate_model/stats are safe from any thread — the
//     cache is sharded (per-shard mutex + LRU list), so concurrent batch
//     workers do not serialize on one lock.
//   * Stale entries are impossible by construction: store ids are never
//     reused and each entry carries a distinct generation, so an
//     unload/reload pair changes the key. ModelStore::unload additionally
//     invalidates the unloaded id's entries eagerly (memory, not
//     correctness).
//   * Two threads missing on the same key both evaluate and both insert;
//     results are deterministic, so the duplicate insert is benign.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "api/requests.hpp"
#include "api/result.hpp"
#include "support/hash.hpp"

namespace spivar::api {

struct CacheConfig {
  /// Maximum cached results across all shards; at least one per shard.
  std::size_t capacity = 1024;
  /// Independent LRU shards (each with its own lock); clamped to >= 1.
  std::size_t shards = 8;
  /// Cost-aware admission: an eviction examines up to this many entries from
  /// the LRU tail and drops the *cheapest* (measured eval time), so a 624 ns
  /// simulate result can never push a multi-second compare out of the cache.
  /// 1 degrades to classic LRU (recency only); clamped to >= 1.
  std::size_t cost_window = 4;
};

/// Monotonic counters plus the current fill — one consistent snapshot per
/// call (see ResultCache::stats), rendered by the CLI's `cache-stats`.
/// The `*_cost_us` columns account for the measured evaluation time each
/// entry was charged on insert: how much compute the cache currently holds,
/// how much hits have saved, and how much evictions threw away.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;      ///< entries dropped by cost-weighted LRU
  std::uint64_t invalidations = 0;  ///< entries dropped by model unload
  std::size_t entries = 0;          ///< currently cached results
  std::size_t capacity = 0;
  std::uint64_t cached_cost_us = 0;   ///< summed eval cost of current entries
  std::uint64_t saved_cost_us = 0;    ///< eval cost returned from hits
  std::uint64_t evicted_cost_us = 0;  ///< eval cost dropped by eviction

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

class ResultCache {
 public:
  explicit ResultCache(CacheConfig config = {});

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Full cache key. `model`/`generation` pin the snapshot (ids are never
  /// reused; generation distinguishes reloads), `kind` discriminates the
  /// response type behind the type-erased slot, `fingerprint` is the
  /// canonical request digest.
  struct Key {
    std::uint32_t model = 0;
    std::uint64_t generation = 0;
    RequestKind kind = RequestKind::kSimulate;
    std::uint64_t fingerprint = 0;

    friend bool operator==(const Key&, const Key&) noexcept = default;
  };

  /// The cached result for `key`, or nullptr on a miss. `Response` must be
  /// the response type of `key.kind` — callers go through detail::with_cache,
  /// which derives both from the same request.
  template <typename Response>
  [[nodiscard]] std::shared_ptr<const Result<Response>> find(const Key& key) {
    return std::static_pointer_cast<const Result<Response>>(lookup(key));
  }

  /// Memoizes `result` (success or deterministic failure) under `key`,
  /// charging the entry `cost_us` — its measured evaluation time, the weight
  /// cost-aware eviction protects. Replaces any previous entry; when the
  /// shard is full, the cheapest entry within the LRU tail's cost window is
  /// evicted.
  template <typename Response>
  void insert(const Key& key, Result<Response> result, std::uint64_t cost_us = 0) {
    store(key, std::make_shared<const Result<Response>>(std::move(result)), cost_us);
  }

  /// Drops every entry cached for `model` (any generation, any kind) — the
  /// unload-tombstone hook. The id is also remembered as dead: an in-flight
  /// batch slot finishing *after* the unload cannot repopulate the cache
  /// with entries no lookup could ever reach (store ids are never reused).
  void invalidate_model(std::uint32_t model);

  void clear();

  [[nodiscard]] CacheStats stats() const;

 private:
  using Slot = std::shared_ptr<const void>;

  struct KeyHasher {
    std::size_t operator()(const Key& key) const noexcept {
      return static_cast<std::size_t>(hash_key(key));
    }
  };

  struct Entry {
    Key key;
    Slot slot;
    std::uint64_t cost_us = 0;  ///< measured eval time charged on insert
  };

  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recently used; the map indexes into this list.
    std::list<Entry> lru;
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHasher> index;
  };

  [[nodiscard]] static std::uint64_t hash_key(const Key& key) noexcept;
  [[nodiscard]] Shard& shard_of(std::uint64_t hash) noexcept {
    return shards_[hash % shards_.size()];
  }

  [[nodiscard]] Slot lookup(const Key& key);
  void store(const Key& key, Slot slot, std::uint64_t cost_us);
  /// Drops the cheapest entry among the `cost_window_` least recently used
  /// ones (ties keep the least recent). Call with the shard lock held.
  void evict_one(Shard& shard);

  std::vector<Shard> shards_;
  mutable std::mutex dead_mutex_;  ///< guards dead_models_ (insert-miss path only)
  /// Ids invalidate_model has seen; inserts for them are refused. Grows by
  /// 4 bytes per unload — ids are never reused, so it never shrinks.
  std::unordered_set<std::uint32_t> dead_models_;
  std::size_t capacity_;  ///< configured total, as reported by stats()
  /// ceil(capacity / shards): sharding rounds the enforced total up by at
  /// most shards-1 so every shard holds at least one entry.
  std::size_t per_shard_capacity_;
  std::size_t cost_window_;  ///< LRU-tail entries examined per eviction
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> saved_cost_us_{0};
  std::atomic<std::uint64_t> evicted_cost_us_{0};
};

}  // namespace spivar::api
