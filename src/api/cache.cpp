#include "api/cache.hpp"

#include <algorithm>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "api/responses.hpp"
#include "api/wire.hpp"
#include "obs/trace.hpp"
#include "persist/disk_tier.hpp"
#include "synth/fingerprint.hpp"

namespace spivar::api {

// --- canonical request fingerprints ------------------------------------------

namespace {

using support::Fnv1aHasher;

void hash_sim_options(Fnv1aHasher& hasher, const sim::SimOptions& options) {
  hasher.u64(static_cast<std::uint64_t>(options.resolution));
  hasher.u64(options.seed);
  hasher.i64(options.max_time.count());
  hasher.i64(options.max_total_firings);
  hasher.boolean(options.record_trace);
  hasher.u64(options.trace_limit);
}

}  // namespace

std::uint64_t fingerprint(const SimulateRequest& request) {
  Fnv1aHasher hasher;
  hash_sim_options(hasher, request.options);
  // render_timeline forces trace recording, so hash the effective option —
  // a timeline request and an explicit-trace request that resolve to the
  // same simulation still fingerprint apart via the flag itself.
  hasher.boolean(request.render_timeline);
  return hasher.digest();
}

std::uint64_t fingerprint(const AnalyzeRequest& request) {
  Fnv1aHasher hasher;
  hasher.boolean(request.deadlock);
  hasher.boolean(request.buffers);
  hasher.boolean(request.structure);
  hasher.boolean(request.timing);
  hasher.boolean(request.include_reconfiguration);
  return hasher.digest();
}

std::uint64_t fingerprint(const ExploreRequest& request) {
  Fnv1aHasher hasher;
  synth::hash_options(hasher, request.options);
  synth::hash_overrides(hasher, request.problem, request.library);
  return hasher.digest();
}

std::uint64_t fingerprint(const ParetoRequest& request) {
  Fnv1aHasher hasher;
  synth::hash_options(hasher, request.options);
  synth::hash_overrides(hasher, request.problem, request.library);
  return hasher.digest();
}

std::uint64_t fingerprint(const CompareRequest& request) {
  Fnv1aHasher hasher;
  synth::hash_strategies(hasher, request.strategies);
  synth::hash_options(hasher, request.options);
  hasher.boolean(request.all_orders);
  hasher.u64(request.max_orders);
  synth::hash_objectives(hasher, request.objectives);
  synth::hash_overrides(hasher, request.problem, request.library);
  return hasher.digest();
}

// --- envelope helpers --------------------------------------------------------
//
// Envelope fingerprints and kinds delegate to the payload alternative, so an
// AnyRequest produces exactly the cache key its dedicated v4 endpoint would
// — mixed-kind batches and the per-kind surface share every cached result.

std::optional<RequestKind> parse_request_kind(std::string_view name) {
  if (name == "simulate") return RequestKind::kSimulate;
  if (name == "analyze") return RequestKind::kAnalyze;
  if (name == "explore") return RequestKind::kExplore;
  if (name == "pareto") return RequestKind::kPareto;
  if (name == "compare") return RequestKind::kCompare;
  return std::nullopt;
}

RequestKind kind_of(const AnyRequest& request) noexcept {
  return std::visit([](const auto& payload) { return kind_of(payload); }, request.payload);
}

std::uint64_t fingerprint(const AnyRequest& request) {
  return std::visit([](const auto& payload) { return fingerprint(payload); }, request.payload);
}

ModelId model_of(const RequestPayload& payload) noexcept {
  return std::visit([](const auto& request) { return request.model; }, payload);
}

void set_model(RequestPayload& payload, ModelId model) noexcept {
  std::visit([model](auto& request) { request.model = model; }, payload);
}

RequestKind kind_of(const AnyResponse& response) noexcept {
  // Typed dispatch, not index arithmetic: inserting a new alternative into
  // AnyResponse must fail to compile here instead of silently mislabeling
  // shifted indices.
  return std::visit(
      [](const auto& typed) {
        using Response = std::decay_t<decltype(typed)>;
        if constexpr (std::is_same_v<Response, SimulateResponse>) {
          return RequestKind::kSimulate;
        } else if constexpr (std::is_same_v<Response, AnalyzeResponse>) {
          return RequestKind::kAnalyze;
        } else if constexpr (std::is_same_v<Response, ExploreResponse>) {
          return RequestKind::kExplore;
        } else if constexpr (std::is_same_v<Response, ParetoResponse>) {
          return RequestKind::kPareto;
        } else {
          static_assert(std::is_same_v<Response, CompareResponse>);
          return RequestKind::kCompare;
        }
      },
      response);
}

const std::string& model_of(const AnyResponse& response) noexcept {
  return std::visit([](const auto& r) -> const std::string& { return r.model; }, response);
}

// --- type-erased slot <-> wire frame bridge ----------------------------------
//
// The persistent tier stores wire-encoded Result<AnyResponse> frames (the
// PR 5 codec round-trips every response bit-identically); the memory tier
// stores typed Result<Response> slots behind shared_ptr<const void>. The
// key's kind names which Response hides behind the erasure, so the bridge is
// a switch over RequestKind around two templates.

namespace {

template <typename Response>
std::string encode_typed(const std::shared_ptr<const void>& slot) {
  const auto& typed = *static_cast<const Result<Response>*>(slot.get());
  if (typed.ok()) {
    return wire::encode(
        Result<AnyResponse>::success(AnyResponse{typed.value()}, typed.diagnostics()));
  }
  return wire::encode(Result<AnyResponse>::failure(typed.diagnostics()));
}

template <typename Response>
std::shared_ptr<const void> decode_typed(std::string_view frame) {
  Result<AnyResponse> any = wire::decode_response(frame);
  if (any.ok()) {
    if (!std::holds_alternative<Response>(any.value())) return nullptr;
    support::DiagnosticList notes = any.diagnostics();
    return std::make_shared<const Result<Response>>(Result<Response>::success(
        std::get<Response>(std::move(any).value()), std::move(notes)));
  }
  // A failed decode is either a transported *cached failure* (results
  // memoize deterministic failures too) or an undecodable frame. The codec
  // marks the latter with diag::kWireError — a code no eval path emits — so
  // the two are distinguishable and a rotten frame never masquerades as a
  // cached diagnosis.
  for (const auto& d : any.diagnostics().items()) {
    if (d.code == diag::kWireError) return nullptr;
  }
  return std::make_shared<const Result<Response>>(
      Result<Response>::failure(any.diagnostics()));
}

std::string encode_slot(RequestKind kind, const std::shared_ptr<const void>& slot) {
  switch (kind) {
    case RequestKind::kSimulate: return encode_typed<SimulateResponse>(slot);
    case RequestKind::kAnalyze: return encode_typed<AnalyzeResponse>(slot);
    case RequestKind::kExplore: return encode_typed<ExploreResponse>(slot);
    case RequestKind::kPareto: return encode_typed<ParetoResponse>(slot);
    case RequestKind::kCompare: return encode_typed<CompareResponse>(slot);
  }
  return {};
}

std::shared_ptr<const void> decode_slot(RequestKind kind, std::string_view frame) {
  switch (kind) {
    case RequestKind::kSimulate: return decode_typed<SimulateResponse>(frame);
    case RequestKind::kAnalyze: return decode_typed<AnalyzeResponse>(frame);
    case RequestKind::kExplore: return decode_typed<ExploreResponse>(frame);
    case RequestKind::kPareto: return decode_typed<ParetoResponse>(frame);
    case RequestKind::kCompare: return decode_typed<CompareResponse>(frame);
  }
  return nullptr;
}

persist::DiskKey disk_key_of(const ResultCache::Key& key) noexcept {
  return persist::DiskKey{.content = key.content,
                          .kind = static_cast<std::uint8_t>(key.kind),
                          .fingerprint = key.fingerprint};
}

}  // namespace

// --- ResultCache --------------------------------------------------------------

ResultCache::ResultCache(CacheConfig config, persist::DiagnosticSink sink)
    : shards_(std::max<std::size_t>(config.shards, 1)),
      capacity_(std::max<std::size_t>(config.capacity, 1)),
      per_shard_capacity_(std::max<std::size_t>(
          (capacity_ + shards_.size() - 1) / shards_.size(), 1)),
      cost_window_(std::max<std::size_t>(config.cost_window, 1)),
      adaptive_window_(config.adaptive_window) {
  if (config.persist.has_value()) {
    auto tier = std::make_unique<persist::DiskTier>(*config.persist, std::move(sink));
    // An unusable directory already reported itself through the sink; the
    // cache then runs memory-only rather than failing enable_cache.
    if (tier->ready()) tier_ = std::move(tier);
  }
  // Background spill drain: only with a tier, only when asked, and never
  // under FsyncPolicy::kAlways — fsync-per-write durability promises the
  // entry is on stable storage when the insert returns, which a queue
  // cannot keep.
  if (tier_ && config.async_spill &&
      config.persist->fsync_policy == persist::PersistConfig::FsyncPolicy::kNever) {
    async_spill_ = true;
    spill_queue_limit_ = std::max<std::size_t>(config.spill_queue, 1);
    spill_thread_ = std::thread{[this] { drain_loop(); }};
  }
}

ResultCache::~ResultCache() {
  if (spill_thread_.joinable()) {
    {
      std::lock_guard lock{spill_mutex_};
      spill_stop_ = true;
    }
    spill_cv_.notify_all();
    // The drain loop finishes every queued write before honoring stop, so
    // a gracefully destroyed cache leaves nothing behind in the queue.
    spill_thread_.join();
  }
}

std::uint64_t ResultCache::hash_key(const Key& key) noexcept {
  // `content` is deliberately absent: it is a function of (model,
  // generation) for the entry's lifetime, so hashing it would be redundant,
  // and leaving it out keeps keys built with and without a content
  // fingerprint in the same shard.
  support::Fnv1aHasher hasher;
  hasher.u64(key.model);
  hasher.u64(key.generation);
  hasher.u64(static_cast<std::uint64_t>(key.kind));
  hasher.u64(key.fingerprint);
  return hasher.digest();
}

ResultCache::Slot ResultCache::lookup(const Key& key) {
  {
    std::uint32_t tag = 0;
    Slot found;
    {
      Shard& shard = shard_of(hash_key(key));
      std::lock_guard lock{shard.mutex};
      const auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        // Refresh recency: splice the entry to the front of the LRU list.
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        hits_.fetch_add(1, std::memory_order_relaxed);
        saved_cost_us_.fetch_add(it->second->cost_us, std::memory_order_relaxed);
        tag = it->second->tenant;
        found = it->second->slot;
      } else {
        misses_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (found) {
      note_tenant_lookup(tag, /*served=*/true);
      return found;
    }
  }
  // Memory miss: consult the persistent tier (outside the shard lock — disk
  // I/O must never serialize the fast path). Models without a content
  // identity never touch disk. The tenant ledger attributes the outcome by
  // what the caller experiences: served (from either tier) or evaluated.
  const std::uint32_t tag = tenant_of(key.model);
  if (!tier_ || key.content == 0) {
    note_tenant_lookup(tag, /*served=*/false);
    return nullptr;
  }
  const auto entry = tier_->load(disk_key_of(key), to_string(key.kind));
  if (!entry.has_value()) {
    note_tenant_lookup(tag, /*served=*/false);
    return nullptr;
  }
  Slot slot = decode_slot(key.kind, entry->frame);
  if (!slot) {
    // The frame passed the tier's CRC but no longer decodes (a wire-codec
    // version ahead of or behind this build): stale, compact it away and
    // fall through to live evaluation.
    tier_->remove(disk_key_of(key),
                  std::string{"frame no longer decodes as a "} + to_string(key.kind) +
                      " result (wire version skew?)");
    note_tenant_lookup(tag, /*served=*/false);
    return nullptr;
  }
  // Promote into the memory tier *without* writing back down — the bytes
  // are already on disk, so a restarted server serving purely from disk
  // shows zero spills (the proof that nothing was re-evaluated). The
  // stored eval cost rides along for eviction weighting and accounting.
  disk_promotes_.fetch_add(1, std::memory_order_relaxed);
  saved_cost_us_.fetch_add(entry->cost_us, std::memory_order_relaxed);
  note_tenant_lookup(tag, /*served=*/true);
  enforce_tenant_cap(tag);
  if (const auto victim = store_memory(key, slot, entry->cost_us)) {
    spill(*victim, /*only_if_absent=*/true);
  }
  return slot;
}

ResultCache::Entry ResultCache::evict_one(Shard& shard) {
  // Cost-weighted LRU: among the `cost_window_` least recently used
  // entries, drop the cheapest (ties keep the least recent victim), so one
  // expensive result survives a stampede of cheap ones filling the shard.
  const std::size_t window = cost_window_.load(std::memory_order_relaxed);
  auto victim = std::prev(shard.lru.end());
  auto candidate = victim;
  for (std::size_t examined = 1; examined < window && candidate != shard.lru.begin();
       ++examined) {
    --candidate;
    if (candidate->cost_us < victim->cost_us) victim = candidate;
  }
  evicted_cost_us_.fetch_add(victim->cost_us, std::memory_order_relaxed);
  Entry evicted = std::move(*victim);
  shard.index.erase(evicted.key);
  shard.lru.erase(victim);
  const std::uint64_t tick = evictions_.fetch_add(1, std::memory_order_relaxed) + 1;
  // One thread per 32-eviction interval owns the adaptation (fetch_add
  // hands out unique ticks), so concurrent evictors cannot double-adjust.
  if (adaptive_window_ && tick % 32 == 0) adapt_window();
  return evicted;
}

void ResultCache::adapt_window() {
  // Widen when the average cost an eviction throws away rivals what a hit
  // saves — a wider tail scan finds cheaper victims. Shrink back toward
  // plain recency when hits dwarf evictions (×4 hysteresis keeps the two
  // thresholds from oscillating).
  const std::uint64_t evictions = evictions_.load(std::memory_order_relaxed);
  const std::uint64_t hits = hits_.load(std::memory_order_relaxed);
  if (evictions == 0) return;
  const std::uint64_t avg_evicted =
      evicted_cost_us_.load(std::memory_order_relaxed) / evictions;
  const std::uint64_t avg_saved =
      hits == 0 ? 0 : saved_cost_us_.load(std::memory_order_relaxed) / hits;
  const std::size_t window = cost_window_.load(std::memory_order_relaxed);
  std::size_t next = window;
  if (avg_evicted > avg_saved) {
    next = std::min<std::size_t>(window * 2, 64);
  } else if (avg_evicted * 4 < avg_saved) {
    next = std::max<std::size_t>(window / 2, 1);
  }
  if (next != window) {
    cost_window_.store(next, std::memory_order_relaxed);
    window_adaptations_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::optional<ResultCache::Entry> ResultCache::store_memory(const Key& key, Slot slot,
                                                            std::uint64_t cost_us) {
  {
    // Refuse entries for unloaded models: find(id) fails at the store
    // before the cache is ever consulted for them, so such an entry could
    // only waste capacity (e.g. an in-flight batch slot finishing after a
    // concurrent unload).
    std::lock_guard dead_lock{dead_mutex_};
    if (dead_models_.contains(key.model)) return std::nullopt;
  }
  // Resolve the owner tag before the shard lock (tenant_mutex_ and shard
  // mutexes are never held together).
  const std::uint32_t tag = tenant_of(key.model);
  Shard& shard = shard_of(hash_key(key));
  std::optional<Entry> victim;
  bool inserted = false;
  {
    std::lock_guard lock{shard.mutex};
    if (const auto it = shard.index.find(key); it != shard.index.end()) {
      // Concurrent miss on the same key: both evaluations are deterministic,
      // keep the newer slot (and its cost) and refresh recency.
      it->second->slot = std::move(slot);
      it->second->cost_us = cost_us;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return std::nullopt;
    }
    if (shard.lru.size() >= per_shard_capacity_) victim = evict_one(shard);
    shard.lru.emplace_front(Entry{key, std::move(slot), cost_us, tag});
    shard.index.emplace(key, shard.lru.begin());
    inserted = true;
  }
  if (inserted && tag != 0) note_tenant_insert(tag);
  if (victim.has_value() && victim->tenant != 0) {
    note_tenant_removed(victim->tenant, /*evicted=*/true);
  }
  return victim;
}

void ResultCache::spill_now(const Entry& entry, bool only_if_absent) {
  if (!tier_ || entry.key.content == 0 || !entry.slot) return;
  const persist::DiskKey key = disk_key_of(entry.key);
  if (only_if_absent && tier_->contains(key)) return;
  // The span only records on synchronous request-path spills — the async
  // drain thread carries no current trace, so this is free there.
  obs::ScopedSpan span{obs::SpanKind::kSpill};
  tier_->store(key, to_string(entry.key.kind), encode_slot(entry.key.kind, entry.slot),
               entry.cost_us);
}

void ResultCache::spill(Entry entry, bool only_if_absent) {
  if (!tier_ || entry.key.content == 0 || !entry.slot) return;
  if (!async_spill_) {
    spill_now(entry, only_if_absent);
    return;
  }
  {
    std::lock_guard lock{spill_mutex_};
    if (!spill_stop_) {
      if (spill_queue_.size() >= spill_queue_limit_) {
        // Bounded by design: dropping a spill costs a possible future disk
        // hit, never correctness — the memory tier still serves the entry
        // and the next insert/eviction of it re-enqueues.
        dropped_spills_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      spill_queue_.push_back(SpillTask{std::move(entry), only_if_absent});
    }
  }
  spill_cv_.notify_one();
}

void ResultCache::drain_loop() {
  std::unique_lock lock{spill_mutex_};
  while (true) {
    spill_cv_.wait(lock, [&] { return spill_stop_ || !spill_queue_.empty(); });
    if (spill_queue_.empty()) {
      if (spill_stop_) return;
      continue;
    }
    SpillTask task = std::move(spill_queue_.front());
    spill_queue_.pop_front();
    spill_busy_ = true;
    lock.unlock();  // disk I/O outside the queue lock — enqueuers never block on write()
    spill_now(task.entry, task.only_if_absent);
    lock.lock();
    spill_busy_ = false;
    if (spill_queue_.empty()) spill_idle_.notify_all();
  }
}

void ResultCache::drain_spills() {
  if (!async_spill_) return;
  std::unique_lock lock{spill_mutex_};
  spill_idle_.wait(lock, [&] { return spill_queue_.empty() && !spill_busy_; });
}

void ResultCache::store(const Key& key, Slot slot, std::uint64_t cost_us) {
  // Tenant cap first: a capped tenant at its limit makes room by evicting
  // its *own* least recent entry before this insert lands, so its eviction
  // storms never displace another tenant's entries.
  enforce_tenant_cap(tenant_of(key.model));
  Slot retained = slot;  // for the write-through below
  const std::optional<Entry> victim = store_memory(key, std::move(slot), cost_us);
  // Disk I/O strictly after the shard lock is released: write the fresh
  // result through (a kill -9 one instruction later loses nothing), then
  // spill the displaced entry if disk doesn't hold it yet. The write-through
  // happens even when store_memory refused a dead-model insert — disk keys
  // are content-based, so the entry stays reachable for a future load of
  // the same model content.
  spill(Entry{key, std::move(retained), cost_us}, /*only_if_absent=*/false);
  if (victim.has_value()) spill(*victim, /*only_if_absent=*/true);
}

void ResultCache::invalidate_model(std::uint32_t model) {
  {
    // Mark dead *before* sweeping, so an insert racing the sweep is either
    // swept or refused — never left behind.
    std::lock_guard dead_lock{dead_mutex_};
    dead_models_.insert(model);
  }
  std::size_t removed = 0;
  for (Shard& shard : shards_) {
    std::lock_guard lock{shard.mutex};
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.model == model) {
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
        invalidations_.fetch_add(1, std::memory_order_relaxed);
        ++removed;
      } else {
        ++it;
      }
    }
  }
  // All of a model's entries carry the model's tag, so one ledger update
  // covers the whole sweep (invalidations are not tenant evictions).
  if (removed > 0) {
    if (const std::uint32_t tag = tenant_of(model); tag != 0) {
      note_tenant_removed(tag, /*evicted=*/false, removed);
    }
  }
}

void ResultCache::clear(bool include_disk) {
  for (Shard& shard : shards_) {
    std::lock_guard lock{shard.mutex};
    shard.index.clear();
    shard.lru.clear();
  }
  {
    std::lock_guard lock{tenant_mutex_};
    for (auto& [tag, account] : tenants_) account.entries = 0;
  }
  if (include_disk && tier_) {
    // A spill still queued would land *after* the clear and resurrect its
    // entry on disk; flush the queue first so clear means clear.
    drain_spills();
    tier_->clear();
  }
}

std::size_t ResultCache::persist_all() {
  if (!tier_) return 0;
  // An explicit persist is a durability request: flush queued async spills
  // first so the contains() checks below see the tier's real contents, then
  // write the remainder synchronously.
  drain_spills();
  // Snapshot the shards first (slot shared_ptrs are cheap to copy), then do
  // every disk write without any shard lock held.
  std::vector<Entry> entries;
  for (Shard& shard : shards_) {
    std::lock_guard lock{shard.mutex};
    for (const Entry& entry : shard.lru) {
      if (entry.key.content != 0) entries.push_back(Entry{entry.key, entry.slot, entry.cost_us});
    }
  }
  std::size_t written = 0;
  for (const Entry& entry : entries) {
    if (tier_->contains(disk_key_of(entry.key))) continue;
    spill_now(entry, /*only_if_absent=*/true);
    ++written;
  }
  tier_->flush();
  return written;
}

// --- tenant accounting -------------------------------------------------------

void ResultCache::bind_model_tenant(std::uint32_t model, std::uint32_t tag) {
  if (tag == 0) return;  // tag 0 is the implicit default — never tracked
  std::lock_guard lock{tenant_mutex_};
  model_tenant_[model] = tag;
  tenants_.try_emplace(tag);
}

void ResultCache::set_tenant_cap(std::uint32_t tag, std::size_t max_entries) {
  if (tag == 0) return;  // the default tenant is never capped
  std::lock_guard lock{tenant_mutex_};
  tenants_[tag].cap = max_entries;
}

std::vector<TenantCacheStats> ResultCache::tenant_stats() const {
  std::vector<TenantCacheStats> out;
  {
    std::lock_guard lock{tenant_mutex_};
    out.reserve(tenants_.size());
    for (const auto& [tag, account] : tenants_) {
      out.push_back(TenantCacheStats{.tag = tag,
                                     .hits = account.hits,
                                     .misses = account.misses,
                                     .evictions = account.evictions,
                                     .entries = account.entries,
                                     .cap = account.cap});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TenantCacheStats& a, const TenantCacheStats& b) { return a.tag < b.tag; });
  return out;
}

std::uint32_t ResultCache::tenant_of(std::uint32_t model) const {
  std::lock_guard lock{tenant_mutex_};
  const auto it = model_tenant_.find(model);
  return it == model_tenant_.end() ? 0 : it->second;
}

void ResultCache::note_tenant_lookup(std::uint32_t tag, bool served) {
  if (tag == 0) return;
  std::lock_guard lock{tenant_mutex_};
  TenantAccount& account = tenants_[tag];
  if (served) {
    ++account.hits;
  } else {
    ++account.misses;
  }
}

void ResultCache::note_tenant_insert(std::uint32_t tag) {
  std::lock_guard lock{tenant_mutex_};
  ++tenants_[tag].entries;
}

void ResultCache::note_tenant_removed(std::uint32_t tag, bool evicted, std::size_t count) {
  std::lock_guard lock{tenant_mutex_};
  TenantAccount& account = tenants_[tag];
  account.entries -= std::min(account.entries, count);
  if (evicted) account.evictions += count;
}

void ResultCache::enforce_tenant_cap(std::uint32_t tag) {
  if (tag == 0) return;
  while (true) {
    std::size_t cap = 0;
    std::size_t entries = 0;
    {
      std::lock_guard lock{tenant_mutex_};
      const auto it = tenants_.find(tag);
      if (it == tenants_.end()) return;
      cap = it->second.cap;
      entries = it->second.entries;
    }
    if (cap == 0 || entries < cap) return;
    // At the cap: drop one of this tenant's own entries — the tail-most
    // (least recent within its shard) entry of the first shard holding one.
    // Cross-shard recency is approximate by design; exactness would need a
    // global clock on every touch. Shards are locked one at a time and
    // never together with tenant_mutex_.
    std::optional<Entry> victim;
    for (Shard& shard : shards_) {
      std::lock_guard lock{shard.mutex};
      for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
        if (it->tenant != tag) continue;
        const auto target = std::prev(it.base());
        evicted_cost_us_.fetch_add(target->cost_us, std::memory_order_relaxed);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        victim = std::move(*target);
        shard.index.erase(victim->key);
        shard.lru.erase(target);
        break;
      }
      if (victim.has_value()) break;
    }
    if (!victim.has_value()) {
      // Ledger said at-cap but no entry was found (raced an invalidation
      // sweep whose ledger update is still in flight) — nothing to evict.
      return;
    }
    note_tenant_removed(tag, /*evicted=*/true);
    spill(std::move(*victim), /*only_if_absent=*/true);
  }
}

CacheStats ResultCache::stats() const {
  CacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  stats.capacity = capacity_;
  stats.saved_cost_us = saved_cost_us_.load(std::memory_order_relaxed);
  stats.evicted_cost_us = evicted_cost_us_.load(std::memory_order_relaxed);
  stats.cost_window = cost_window_.load(std::memory_order_relaxed);
  stats.window_adaptations = window_adaptations_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard lock{shard.mutex};
    stats.entries += shard.lru.size();
    for (const Entry& entry : shard.lru) stats.cached_cost_us += entry.cost_us;
  }
  if (tier_) {
    const persist::DiskStats disk = tier_->stats();
    stats.persistent = true;
    stats.disk_hits = disk.hits;
    stats.disk_misses = disk.misses;
    stats.disk_spills = disk.stores;
    stats.disk_promotes = disk_promotes_.load(std::memory_order_relaxed);
    stats.disk_skipped = disk.skipped;
    stats.disk_evictions = disk.evictions;
    stats.disk_entries = disk.entries;
    stats.disk_bytes = disk.bytes;
    stats.disk_capacity_bytes = disk.capacity_bytes;
    stats.disk_async = async_spill_;
    if (async_spill_) {
      std::lock_guard lock{spill_mutex_};
      stats.disk_queue_depth = spill_queue_.size();
    }
    stats.disk_queue_capacity = spill_queue_limit_;
    stats.disk_dropped_spills = dropped_spills_.load(std::memory_order_relaxed);
  }
  return stats;
}

}  // namespace spivar::api
