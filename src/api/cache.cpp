#include "api/cache.hpp"

#include <algorithm>

#include "synth/fingerprint.hpp"

namespace spivar::api {

// --- canonical request fingerprints ------------------------------------------

namespace {

using support::Fnv1aHasher;

void hash_sim_options(Fnv1aHasher& hasher, const sim::SimOptions& options) {
  hasher.u64(static_cast<std::uint64_t>(options.resolution));
  hasher.u64(options.seed);
  hasher.i64(options.max_time.count());
  hasher.i64(options.max_total_firings);
  hasher.boolean(options.record_trace);
  hasher.u64(options.trace_limit);
}

}  // namespace

std::uint64_t fingerprint(const SimulateRequest& request) {
  Fnv1aHasher hasher;
  hash_sim_options(hasher, request.options);
  // render_timeline forces trace recording, so hash the effective option —
  // a timeline request and an explicit-trace request that resolve to the
  // same simulation still fingerprint apart via the flag itself.
  hasher.boolean(request.render_timeline);
  return hasher.digest();
}

std::uint64_t fingerprint(const AnalyzeRequest& request) {
  Fnv1aHasher hasher;
  hasher.boolean(request.deadlock);
  hasher.boolean(request.buffers);
  hasher.boolean(request.structure);
  hasher.boolean(request.timing);
  hasher.boolean(request.include_reconfiguration);
  return hasher.digest();
}

std::uint64_t fingerprint(const ExploreRequest& request) {
  Fnv1aHasher hasher;
  synth::hash_options(hasher, request.options);
  synth::hash_overrides(hasher, request.problem, request.library);
  return hasher.digest();
}

std::uint64_t fingerprint(const ParetoRequest& request) {
  Fnv1aHasher hasher;
  synth::hash_options(hasher, request.options);
  synth::hash_overrides(hasher, request.problem, request.library);
  return hasher.digest();
}

std::uint64_t fingerprint(const CompareRequest& request) {
  Fnv1aHasher hasher;
  synth::hash_strategies(hasher, request.strategies);
  synth::hash_options(hasher, request.options);
  hasher.boolean(request.all_orders);
  hasher.u64(request.max_orders);
  synth::hash_objectives(hasher, request.objectives);
  synth::hash_overrides(hasher, request.problem, request.library);
  return hasher.digest();
}

// --- ResultCache --------------------------------------------------------------

ResultCache::ResultCache(CacheConfig config)
    : shards_(std::max<std::size_t>(config.shards, 1)),
      capacity_(std::max<std::size_t>(config.capacity, 1)),
      per_shard_capacity_(std::max<std::size_t>(
          (capacity_ + shards_.size() - 1) / shards_.size(), 1)) {}

std::uint64_t ResultCache::hash_key(const Key& key) noexcept {
  support::Fnv1aHasher hasher;
  hasher.u64(key.model);
  hasher.u64(key.generation);
  hasher.u64(static_cast<std::uint64_t>(key.kind));
  hasher.u64(key.fingerprint);
  return hasher.digest();
}

ResultCache::Slot ResultCache::lookup(const Key& key) {
  Shard& shard = shard_of(hash_key(key));
  std::lock_guard lock{shard.mutex};
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // Refresh recency: splice the entry to the front of the LRU list.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void ResultCache::store(const Key& key, Slot slot) {
  {
    // Refuse entries for unloaded models: find(id) fails at the store
    // before the cache is ever consulted for them, so such an entry could
    // only waste capacity (e.g. an in-flight batch slot finishing after a
    // concurrent unload).
    std::lock_guard dead_lock{dead_mutex_};
    if (dead_models_.contains(key.model)) return;
  }
  Shard& shard = shard_of(hash_key(key));
  std::lock_guard lock{shard.mutex};
  if (const auto it = shard.index.find(key); it != shard.index.end()) {
    // Concurrent miss on the same key: both evaluations are deterministic,
    // keep the newer slot and refresh recency.
    it->second->second = std::move(slot);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.emplace_front(key, std::move(slot));
  shard.index.emplace(key, shard.lru.begin());
}

void ResultCache::invalidate_model(std::uint32_t model) {
  {
    // Mark dead *before* sweeping, so an insert racing the sweep is either
    // swept or refused — never left behind.
    std::lock_guard dead_lock{dead_mutex_};
    dead_models_.insert(model);
  }
  for (Shard& shard : shards_) {
    std::lock_guard lock{shard.mutex};
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->first.model == model) {
        shard.index.erase(it->first);
        it = shard.lru.erase(it);
        invalidations_.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
}

void ResultCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard lock{shard.mutex};
    shard.index.clear();
    shard.lru.clear();
  }
}

CacheStats ResultCache::stats() const {
  CacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  stats.capacity = capacity_;
  for (const Shard& shard : shards_) {
    std::lock_guard lock{shard.mutex};
    stats.entries += shard.lru.size();
  }
  return stats;
}

}  // namespace spivar::api
