#include "api/cache.hpp"

#include <algorithm>
#include <type_traits>
#include <variant>

#include "api/responses.hpp"
#include "synth/fingerprint.hpp"

namespace spivar::api {

// --- canonical request fingerprints ------------------------------------------

namespace {

using support::Fnv1aHasher;

void hash_sim_options(Fnv1aHasher& hasher, const sim::SimOptions& options) {
  hasher.u64(static_cast<std::uint64_t>(options.resolution));
  hasher.u64(options.seed);
  hasher.i64(options.max_time.count());
  hasher.i64(options.max_total_firings);
  hasher.boolean(options.record_trace);
  hasher.u64(options.trace_limit);
}

}  // namespace

std::uint64_t fingerprint(const SimulateRequest& request) {
  Fnv1aHasher hasher;
  hash_sim_options(hasher, request.options);
  // render_timeline forces trace recording, so hash the effective option —
  // a timeline request and an explicit-trace request that resolve to the
  // same simulation still fingerprint apart via the flag itself.
  hasher.boolean(request.render_timeline);
  return hasher.digest();
}

std::uint64_t fingerprint(const AnalyzeRequest& request) {
  Fnv1aHasher hasher;
  hasher.boolean(request.deadlock);
  hasher.boolean(request.buffers);
  hasher.boolean(request.structure);
  hasher.boolean(request.timing);
  hasher.boolean(request.include_reconfiguration);
  return hasher.digest();
}

std::uint64_t fingerprint(const ExploreRequest& request) {
  Fnv1aHasher hasher;
  synth::hash_options(hasher, request.options);
  synth::hash_overrides(hasher, request.problem, request.library);
  return hasher.digest();
}

std::uint64_t fingerprint(const ParetoRequest& request) {
  Fnv1aHasher hasher;
  synth::hash_options(hasher, request.options);
  synth::hash_overrides(hasher, request.problem, request.library);
  return hasher.digest();
}

std::uint64_t fingerprint(const CompareRequest& request) {
  Fnv1aHasher hasher;
  synth::hash_strategies(hasher, request.strategies);
  synth::hash_options(hasher, request.options);
  hasher.boolean(request.all_orders);
  hasher.u64(request.max_orders);
  synth::hash_objectives(hasher, request.objectives);
  synth::hash_overrides(hasher, request.problem, request.library);
  return hasher.digest();
}

// --- envelope helpers --------------------------------------------------------
//
// Envelope fingerprints and kinds delegate to the payload alternative, so an
// AnyRequest produces exactly the cache key its dedicated v4 endpoint would
// — mixed-kind batches and the per-kind surface share every cached result.

std::optional<RequestKind> parse_request_kind(std::string_view name) {
  if (name == "simulate") return RequestKind::kSimulate;
  if (name == "analyze") return RequestKind::kAnalyze;
  if (name == "explore") return RequestKind::kExplore;
  if (name == "pareto") return RequestKind::kPareto;
  if (name == "compare") return RequestKind::kCompare;
  return std::nullopt;
}

RequestKind kind_of(const AnyRequest& request) noexcept {
  return std::visit([](const auto& payload) { return kind_of(payload); }, request.payload);
}

std::uint64_t fingerprint(const AnyRequest& request) {
  return std::visit([](const auto& payload) { return fingerprint(payload); }, request.payload);
}

ModelId model_of(const RequestPayload& payload) noexcept {
  return std::visit([](const auto& request) { return request.model; }, payload);
}

void set_model(RequestPayload& payload, ModelId model) noexcept {
  std::visit([model](auto& request) { request.model = model; }, payload);
}

RequestKind kind_of(const AnyResponse& response) noexcept {
  // Typed dispatch, not index arithmetic: inserting a new alternative into
  // AnyResponse must fail to compile here instead of silently mislabeling
  // shifted indices.
  return std::visit(
      [](const auto& typed) {
        using Response = std::decay_t<decltype(typed)>;
        if constexpr (std::is_same_v<Response, SimulateResponse>) {
          return RequestKind::kSimulate;
        } else if constexpr (std::is_same_v<Response, AnalyzeResponse>) {
          return RequestKind::kAnalyze;
        } else if constexpr (std::is_same_v<Response, ExploreResponse>) {
          return RequestKind::kExplore;
        } else if constexpr (std::is_same_v<Response, ParetoResponse>) {
          return RequestKind::kPareto;
        } else {
          static_assert(std::is_same_v<Response, CompareResponse>);
          return RequestKind::kCompare;
        }
      },
      response);
}

const std::string& model_of(const AnyResponse& response) noexcept {
  return std::visit([](const auto& r) -> const std::string& { return r.model; }, response);
}

// --- ResultCache --------------------------------------------------------------

ResultCache::ResultCache(CacheConfig config)
    : shards_(std::max<std::size_t>(config.shards, 1)),
      capacity_(std::max<std::size_t>(config.capacity, 1)),
      per_shard_capacity_(std::max<std::size_t>(
          (capacity_ + shards_.size() - 1) / shards_.size(), 1)),
      cost_window_(std::max<std::size_t>(config.cost_window, 1)) {}

std::uint64_t ResultCache::hash_key(const Key& key) noexcept {
  support::Fnv1aHasher hasher;
  hasher.u64(key.model);
  hasher.u64(key.generation);
  hasher.u64(static_cast<std::uint64_t>(key.kind));
  hasher.u64(key.fingerprint);
  return hasher.digest();
}

ResultCache::Slot ResultCache::lookup(const Key& key) {
  Shard& shard = shard_of(hash_key(key));
  std::lock_guard lock{shard.mutex};
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // Refresh recency: splice the entry to the front of the LRU list.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  saved_cost_us_.fetch_add(it->second->cost_us, std::memory_order_relaxed);
  return it->second->slot;
}

void ResultCache::evict_one(Shard& shard) {
  // Cost-weighted LRU: among the `cost_window_` least recently used
  // entries, drop the cheapest (ties keep the least recent victim), so one
  // expensive result survives a stampede of cheap ones filling the shard.
  auto victim = std::prev(shard.lru.end());
  auto candidate = victim;
  for (std::size_t examined = 1; examined < cost_window_ && candidate != shard.lru.begin();
       ++examined) {
    --candidate;
    if (candidate->cost_us < victim->cost_us) victim = candidate;
  }
  evicted_cost_us_.fetch_add(victim->cost_us, std::memory_order_relaxed);
  shard.index.erase(victim->key);
  shard.lru.erase(victim);
  evictions_.fetch_add(1, std::memory_order_relaxed);
}

void ResultCache::store(const Key& key, Slot slot, std::uint64_t cost_us) {
  {
    // Refuse entries for unloaded models: find(id) fails at the store
    // before the cache is ever consulted for them, so such an entry could
    // only waste capacity (e.g. an in-flight batch slot finishing after a
    // concurrent unload).
    std::lock_guard dead_lock{dead_mutex_};
    if (dead_models_.contains(key.model)) return;
  }
  Shard& shard = shard_of(hash_key(key));
  std::lock_guard lock{shard.mutex};
  if (const auto it = shard.index.find(key); it != shard.index.end()) {
    // Concurrent miss on the same key: both evaluations are deterministic,
    // keep the newer slot (and its cost) and refresh recency.
    it->second->slot = std::move(slot);
    it->second->cost_us = cost_us;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) evict_one(shard);
  shard.lru.emplace_front(Entry{key, std::move(slot), cost_us});
  shard.index.emplace(key, shard.lru.begin());
}

void ResultCache::invalidate_model(std::uint32_t model) {
  {
    // Mark dead *before* sweeping, so an insert racing the sweep is either
    // swept or refused — never left behind.
    std::lock_guard dead_lock{dead_mutex_};
    dead_models_.insert(model);
  }
  for (Shard& shard : shards_) {
    std::lock_guard lock{shard.mutex};
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.model == model) {
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
        invalidations_.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
}

void ResultCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard lock{shard.mutex};
    shard.index.clear();
    shard.lru.clear();
  }
}

CacheStats ResultCache::stats() const {
  CacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  stats.capacity = capacity_;
  stats.saved_cost_us = saved_cost_us_.load(std::memory_order_relaxed);
  stats.evicted_cost_us = evicted_cost_us_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard lock{shard.mutex};
    stats.entries += shard.lru.size();
    for (const Entry& entry : shard.lru) stats.cached_cost_us += entry.cost_us;
  }
  return stats;
}

}  // namespace spivar::api
