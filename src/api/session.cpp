#include "api/session.hpp"

#include <exception>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <type_traits>
#include <utility>

#include "analysis/buffer_bounds.hpp"
#include "analysis/deadlock.hpp"
#include "analysis/structure.hpp"
#include "analysis/timing.hpp"
#include "api/detail.hpp"
#include "models/synthetic.hpp"
#include "sim/engine.hpp"
#include "sim/timeline.hpp"
#include "spi/dot.hpp"
#include "spi/textio.hpp"
#include "spi/validate.hpp"
#include "variant/dot.hpp"
#include "variant/validate.hpp"

namespace spivar::api {

using detail::guarded;
using detail::unknown_model;

namespace {

std::vector<std::string> process_names(const spi::Graph& graph,
                                       const std::vector<support::ProcessId>& ids) {
  std::vector<std::string> names;
  names.reserve(ids.size());
  for (auto pid : ids) names.push_back(graph.process(pid).name);
  return names;
}

/// Derived fallback library: the deterministic per-process synthetic library,
/// plus — for cluster-atomic problems — one aggregated entry per cluster
/// (member loads/costs/WCETs summed, capabilities intersected), so both
/// granularities can be explored on models without a curated library.
synth::ImplLibrary derive_library(const variant::VariantModel& model,
                                  synth::ElementGranularity granularity) {
  synth::ImplLibrary library = models::make_synthetic_library(model);
  if (granularity != synth::ElementGranularity::kClusterAtomic) return library;

  for (support::ClusterId cid : model.cluster_ids()) {
    const variant::Cluster& cluster = model.cluster(cid);
    synth::ElementImpl aggregate;
    aggregate.sw_load = 0.0;
    bool any = false;
    for (support::ProcessId pid : cluster.processes) {
      const spi::Process& process = model.graph().process(pid);
      if (process.is_virtual || !library.contains(process.name)) continue;
      const synth::ElementImpl& member = library.at(process.name);
      aggregate.sw_load += member.sw_load;
      aggregate.sw_wcet = aggregate.sw_wcet + member.sw_wcet;
      aggregate.hw_cost += member.hw_cost;
      aggregate.hw_wcet = aggregate.hw_wcet + member.hw_wcet;
      aggregate.can_sw = aggregate.can_sw && member.can_sw;
      aggregate.can_hw = aggregate.can_hw && member.can_hw;
      any = true;
    }
    if (any) library.add(cluster.name, aggregate);
  }
  return library;
}

}  // namespace

Session::Session() : executor_(std::make_shared<SerialExecutor>()) {}

Session::Session(std::shared_ptr<Executor> executor) : executor_(std::move(executor)) {
  if (!executor_) executor_ = std::make_shared<SerialExecutor>();
}

// --- loading ----------------------------------------------------------------

Result<ModelInfo> Session::load_text(std::string_view text, std::string_view name) {
  return guarded<ModelInfo>([&]() -> Result<ModelInfo> {
    spi::Graph graph = spi::parse_text(text);
    if (!name.empty()) graph.set_name(std::string{name});
    return adopt(Entry{.origin = "text", .model = variant::VariantModel{std::move(graph)}});
  });
}

Result<ModelInfo> Session::load_file(const std::string& path) {
  return guarded<ModelInfo>([&]() -> Result<ModelInfo> {
    std::error_code ec;
    if (!std::filesystem::is_regular_file(path, ec)) {
      return Result<ModelInfo>::failure(diag::kIoError, "'" + path + "' is not a readable file");
    }
    std::ifstream in{path};
    if (!in) return Result<ModelInfo>::failure(diag::kIoError, "cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    spi::Graph graph = spi::parse_text(buffer.str());
    return adopt(Entry{.origin = path, .model = variant::VariantModel{std::move(graph)}});
  });
}

Result<ModelInfo> Session::load_builtin(std::string_view name) {
  return load_builtin(LoadBuiltinRequest{.name = std::string{name}});
}

Result<ModelInfo> Session::load_builtin(const LoadBuiltinRequest& request) {
  return guarded<ModelInfo>([&]() -> Result<ModelInfo> {
    const BuiltinModel* builtin = find_builtin(request.name);
    if (!builtin) {
      return Result<ModelInfo>::failure(
          diag::kUnknownBuiltin,
          "no built-in model '" + request.name + "' (see Session::builtins())");
    }
    return adopt(Entry{.origin = "builtin:" + builtin->name,
                       .model = builtin->make(request.options),
                       .builtin = builtin});
  });
}

Result<ModelInfo> Session::load_model(std::string_view spec) {
  if (find_builtin(spec)) return load_builtin(spec);
  return load_file(std::string{spec});
}

Result<ModelInfo> Session::load(variant::VariantModel model, std::string_view origin) {
  return guarded<ModelInfo>([&]() -> Result<ModelInfo> {
    return adopt(Entry{.origin = std::string{origin}, .model = std::move(model)});
  });
}

Result<ModelInfo> Session::adopt(Entry entry) {
  const ModelId id{next_id_++};
  auto [it, inserted] = entries_.emplace(id.value(), std::move(entry));
  (void)inserted;
  return Result<ModelInfo>::success(describe(id, it->second));
}

bool Session::unload(ModelId id) { return entries_.erase(id.value()) > 0; }

// --- introspection ----------------------------------------------------------

const Session::Entry* Session::find(ModelId id) const {
  const auto it = entries_.find(id.value());
  return it == entries_.end() ? nullptr : &it->second;
}

ModelInfo Session::describe(ModelId id, const Entry& entry) const {
  return ModelInfo{
      .id = id,
      .name = entry.model.graph().name(),
      .origin = entry.origin,
      .processes = entry.model.graph().process_count(),
      .channels = entry.model.graph().channel_count(),
      .interfaces = entry.model.interface_count(),
      .clusters = entry.model.cluster_count(),
  };
}

std::vector<ModelInfo> Session::models() const {
  std::vector<ModelInfo> out;
  out.reserve(entries_.size());
  for (const auto& [raw, entry] : entries_) out.push_back(describe(ModelId{raw}, entry));
  return out;
}

Result<ModelInfo> Session::info(ModelId id) const {
  const Entry* entry = find(id);
  if (!entry) return unknown_model<ModelInfo>(id);
  return Result<ModelInfo>::success(describe(id, *entry));
}

std::vector<std::string> Session::builtins() { return builtin_names(); }

// --- pipeline operations ----------------------------------------------------

Result<ValidateResponse> Session::validate(ModelId id) const {
  const Entry* entry = find(id);
  if (!entry) {
    return unknown_model<ValidateResponse>(id);
  }
  return guarded<ValidateResponse>([&]() -> Result<ValidateResponse> {
    ValidateResponse response{.model = entry->model.graph().name(), .findings = {}};
    if (entry->model.interface_count() > 0) {
      // Includes the core graph pass with the mutual-exclusivity oracle.
      response.findings = variant::validate_variants(entry->model);
    } else {
      response.findings = spi::validate(entry->model.graph());
    }
    return Result<ValidateResponse>::success(std::move(response));
  });
}

Result<spi::ModelStatistics> Session::stats(ModelId id) const {
  const Entry* entry = find(id);
  if (!entry) {
    return unknown_model<spi::ModelStatistics>(id);
  }
  return guarded<spi::ModelStatistics>([&] {
    return Result<spi::ModelStatistics>::success(spi::collect_statistics(entry->model.graph()));
  });
}

Result<std::string> Session::dot(ModelId id) const {
  const Entry* entry = find(id);
  if (!entry) return unknown_model<std::string>(id);
  return guarded<std::string>([&] {
    return Result<std::string>::success(entry->model.interface_count() > 0
                                            ? variant::to_dot(entry->model)
                                            : spi::to_dot(entry->model.graph()));
  });
}

Result<std::string> Session::write_text(ModelId id) const {
  const Entry* entry = find(id);
  if (!entry) return unknown_model<std::string>(id);
  return guarded<std::string>(
      [&] { return Result<std::string>::success(spi::write_text(entry->model.graph())); });
}

Result<AnalyzeResponse> Session::analyze(const AnalyzeRequest& request) const {
  const Entry* entry = find(request.model);
  if (!entry) {
    return unknown_model<AnalyzeResponse>(request.model);
  }
  return guarded<AnalyzeResponse>([&]() -> Result<AnalyzeResponse> {
    const spi::Graph& graph = entry->model.graph();
    AnalyzeResponse response;
    response.model = graph.name();
    response.request = request;

    if (request.deadlock) {
      for (const auto& d : analysis::find_structural_deadlocks(graph)) {
        response.deadlocks.push_back({.cycle = process_names(graph, d.cycle),
                                      .initial_tokens = d.initial_tokens,
                                      .required_tokens = d.required_tokens,
                                      .description = d.describe(graph)});
      }
    }
    if (request.buffers) response.buffer_flows = analysis::analyze_buffers(graph);
    if (request.timing) {
      response.latency_checks =
          analysis::check_latency_constraints(graph, request.include_reconfiguration);
    }
    if (request.structure) {
      response.structure.acyclic = analysis::is_acyclic(graph);
      response.structure.sources = process_names(graph, analysis::source_processes(graph));
      response.structure.sinks = process_names(graph, analysis::sink_processes(graph));
      response.structure.dead = process_names(graph, analysis::dead_processes(graph));
      response.structure.components = analysis::weak_components(graph).size();
    }
    return Result<AnalyzeResponse>::success(std::move(response));
  });
}

Result<SimulateResponse> Session::simulate(const SimulateRequest& request) const {
  const Entry* entry = find(request.model);
  if (!entry) {
    return unknown_model<SimulateResponse>(request.model);
  }
  return guarded<SimulateResponse>([&]() -> Result<SimulateResponse> {
    const spi::Graph& graph = entry->model.graph();
    sim::SimOptions options = request.options;
    if (request.render_timeline) options.record_trace = true;

    // Interface-aware simulation when the model carries variant structure.
    sim::SimResult result = entry->model.interface_count() > 0
                                ? sim::Simulator{entry->model, options}.run()
                                : sim::Simulator{graph, options}.run();

    SimulateResponse response;
    response.model = graph.name();
    response.result = std::move(result);
    for (auto pid : graph.process_ids()) {
      const auto& stats = response.result.process(pid);
      response.processes.push_back({.name = graph.process(pid).name,
                                    .firings = stats.firings,
                                    .busy = stats.busy,
                                    .reconfigurations = stats.reconfigurations});
    }
    for (auto cid : graph.channel_ids()) {
      const auto& stats = response.result.channel(cid);
      response.channels.push_back({.name = graph.channel(cid).name,
                                   .produced = stats.produced,
                                   .consumed = stats.consumed,
                                   .occupancy = stats.occupancy,
                                   .max_occupancy = stats.max_occupancy});
    }
    if (request.render_timeline) {
      response.timeline = sim::render_timeline(graph, response.result);
    }
    return Result<SimulateResponse>::success(std::move(response));
  });
}

// --- synthesis --------------------------------------------------------------

Session::SynthesisSetup Session::synthesis_setup(
    const Entry& entry, const std::optional<synth::ProblemOptions>& problem,
    const std::optional<synth::ImplLibrary>& library) const {
  SynthesisSetup setup;
  const bool curated = entry.builtin != nullptr && entry.builtin->library != nullptr;

  synth::ProblemOptions options;
  if (problem.has_value()) {
    options = *problem;
  } else if (curated) {
    options = entry.builtin->problem;
  } else {
    options = {.granularity = synth::ElementGranularity::kProcess};
  }

  // A curated library is calibrated for one granularity; a request that
  // overrides it gets the derived library instead (which covers the
  // requested granularity) rather than opaque missing-element errors.
  const bool curated_matches =
      curated && options.granularity == entry.builtin->problem.granularity;

  if (library.has_value()) {
    setup.library = *library;
    setup.library_origin = "request";
  } else if (curated_matches) {
    setup.library = entry.builtin->library(entry.model);
    setup.library_origin = "curated";
  } else {
    setup.library = derive_library(entry.model, options.granularity);
    setup.library_origin = "derived";
  }
  setup.problem = synth::problem_from_model(entry.model, options);
  return setup;
}

using detail::empty_problem_message;
using detail::problem_has_elements;

Result<ExploreResponse> Session::explore(const ExploreRequest& request) const {
  const Entry* entry = find(request.model);
  if (!entry) {
    return unknown_model<ExploreResponse>(request.model);
  }
  return guarded<ExploreResponse>([&]() -> Result<ExploreResponse> {
    SynthesisSetup setup = synthesis_setup(*entry, request.problem, request.library);
    if (!problem_has_elements(setup.problem)) {
      return Result<ExploreResponse>::failure(diag::kEmptyProblem,
                                              empty_problem_message(entry->model.graph().name()));
    }
    ExploreResponse response{
        .model = entry->model.graph().name(),
        .result = synth::explore(setup.library, setup.problem.apps, request.options),
        .problem = setup.problem.name,
        .applications = setup.problem.apps.size(),
        .elements = setup.problem.element_union().size(),
        .library_origin = setup.library_origin,
    };
    return Result<ExploreResponse>::success(std::move(response));
  });
}

Result<ParetoResponse> Session::pareto(const ParetoRequest& request) const {
  const Entry* entry = find(request.model);
  if (!entry) {
    return unknown_model<ParetoResponse>(request.model);
  }
  return guarded<ParetoResponse>([&]() -> Result<ParetoResponse> {
    SynthesisSetup setup = synthesis_setup(*entry, request.problem, request.library);
    if (!problem_has_elements(setup.problem)) {
      return Result<ParetoResponse>::failure(diag::kEmptyProblem,
                                             empty_problem_message(entry->model.graph().name()));
    }
    ParetoResponse response{
        .model = entry->model.graph().name(),
        .points = synth::pareto_front(setup.library, setup.problem.apps, request.options),
        .applications = setup.problem.apps.size(),
        .library_origin = setup.library_origin,
    };
    return Result<ParetoResponse>::success(std::move(response));
  });
}

// --- batch surface ----------------------------------------------------------

namespace {

/// Evaluates `op` over each request through the executor. Slots are disjoint
/// and requests deterministic, so the result is bit-identical to serial
/// evaluation regardless of worker count. `op` never throws (it runs inside
/// the session's guarded boundary).
template <typename Request, typename Op>
auto run_batch(Executor& executor, const std::vector<Request>& requests, Op op) {
  using R = std::invoke_result_t<Op, const Request&>;
  std::vector<std::optional<R>> slots(requests.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    tasks.push_back([&slots, &requests, &op, i] { slots[i] = op(requests[i]); });
  }
  executor.run(std::move(tasks));

  std::vector<R> results;
  results.reserve(slots.size());
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

}  // namespace

std::vector<Result<SimulateResponse>> Session::simulate_batch(
    const std::vector<SimulateRequest>& requests) const {
  return run_batch(*executor_, requests,
                   [this](const SimulateRequest& request) { return simulate(request); });
}

std::vector<Result<ExploreResponse>> Session::explore_batch(
    const std::vector<ExploreRequest>& requests) const {
  return run_batch(*executor_, requests,
                   [this](const ExploreRequest& request) { return explore(request); });
}

}  // namespace spivar::api
