#include "api/session.hpp"

#include <condition_variable>
#include <cstdio>
#include <exception>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>

#include "analysis/buffer_bounds.hpp"
#include "analysis/deadlock.hpp"
#include "analysis/structure.hpp"
#include "analysis/timing.hpp"
#include "api/detail.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/timeline.hpp"
#include "spi/dot.hpp"
#include "spi/textio.hpp"
#include "spi/validate.hpp"
#include "variant/dot.hpp"
#include "variant/textio.hpp"
#include "variant/validate.hpp"

namespace spivar::api {

using detail::guarded;
using detail::unknown_model;

namespace {

std::vector<std::string> process_names(const spi::Graph& graph,
                                       const std::vector<support::ProcessId>& ids) {
  std::vector<std::string> names;
  names.reserve(ids.size());
  for (auto pid : ids) names.push_back(graph.process(pid).name);
  return names;
}

}  // namespace

// --- snapshot evaluation -----------------------------------------------------
//
// Everything below detail:: evaluates one immutable StoreEntry. These are
// the functions batch tasks capture (together with their snapshot), so no
// evaluation path ever touches Session state.

namespace detail {

Result<SimulateResponse> eval_simulate(const StoreEntry& entry, const SimulateRequest& request) {
  return guarded<SimulateResponse>([&]() -> Result<SimulateResponse> {
    const spi::Graph& graph = entry.model().graph();
    sim::SimOptions options = request.options;
    if (request.render_timeline) options.record_trace = true;

    // Interface-aware simulation when the model carries variant structure.
    sim::SimResult result = entry.model().interface_count() > 0
                                ? sim::Simulator{entry.model(), options}.run()
                                : sim::Simulator{graph, options}.run();

    SimulateResponse response;
    response.model = graph.name();
    response.result = std::move(result);
    for (auto pid : graph.process_ids()) {
      const auto& stats = response.result.process(pid);
      response.processes.push_back({.name = graph.process(pid).name,
                                    .firings = stats.firings,
                                    .busy = stats.busy,
                                    .reconfigurations = stats.reconfigurations});
    }
    for (auto cid : graph.channel_ids()) {
      const auto& stats = response.result.channel(cid);
      response.channels.push_back({.name = graph.channel(cid).name,
                                   .produced = stats.produced,
                                   .consumed = stats.consumed,
                                   .occupancy = stats.occupancy,
                                   .max_occupancy = stats.max_occupancy});
    }
    if (request.render_timeline) {
      response.timeline = sim::render_timeline(graph, response.result);
    }
    return Result<SimulateResponse>::success(std::move(response));
  });
}

Result<ExploreResponse> eval_explore(const StoreEntry& entry, const ExploreRequest& request) {
  return guarded<ExploreResponse>([&]() -> Result<ExploreResponse> {
    const auto setup = resolve_setup(entry, request.problem, request.library);
    if (!problem_has_elements(setup->problem)) {
      return Result<ExploreResponse>::failure(
          diag::kEmptyProblem, empty_problem_message(entry.model().graph().name()));
    }
    ExploreResponse response{
        .model = entry.model().graph().name(),
        .result = synth::explore(setup->library, setup->problem.apps, request.options),
        .problem = setup->problem.name,
        .applications = setup->problem.apps.size(),
        .elements = setup->problem.element_union().size(),
        .library_origin = setup->library_origin,
    };
    return Result<ExploreResponse>::success(std::move(response));
  });
}

Result<ParetoResponse> eval_pareto(const StoreEntry& entry, const ParetoRequest& request) {
  return guarded<ParetoResponse>([&]() -> Result<ParetoResponse> {
    const auto setup = resolve_setup(entry, request.problem, request.library);
    if (!problem_has_elements(setup->problem)) {
      return Result<ParetoResponse>::failure(
          diag::kEmptyProblem, empty_problem_message(entry.model().graph().name()));
    }
    ParetoResponse response{
        .model = entry.model().graph().name(),
        .points = synth::pareto_front(setup->library, setup->problem.apps, request.options),
        .applications = setup->problem.apps.size(),
        .library_origin = setup->library_origin,
    };
    return Result<ParetoResponse>::success(std::move(response));
  });
}

Result<AnalyzeResponse> eval_analyze(const StoreEntry& entry, const AnalyzeRequest& request) {
  return guarded<AnalyzeResponse>([&]() -> Result<AnalyzeResponse> {
    const spi::Graph& graph = entry.model().graph();
    AnalyzeResponse response;
    response.model = graph.name();
    response.request = request;

    if (request.deadlock) {
      for (const auto& d : analysis::find_structural_deadlocks(graph)) {
        response.deadlocks.push_back({.cycle = process_names(graph, d.cycle),
                                      .initial_tokens = d.initial_tokens,
                                      .required_tokens = d.required_tokens,
                                      .description = d.describe(graph)});
      }
    }
    if (request.buffers) response.buffer_flows = analysis::analyze_buffers(graph);
    if (request.timing) {
      response.latency_checks =
          analysis::check_latency_constraints(graph, request.include_reconfiguration);
    }
    if (request.structure) {
      response.structure.acyclic = analysis::is_acyclic(graph);
      response.structure.sources = process_names(graph, analysis::source_processes(graph));
      response.structure.sinks = process_names(graph, analysis::sink_processes(graph));
      response.structure.dead = process_names(graph, analysis::dead_processes(graph));
      response.structure.components = analysis::weak_components(graph).size();
    }
    return Result<AnalyzeResponse>::success(std::move(response));
  });
}

}  // namespace detail

// --- construction ------------------------------------------------------------

Session::Session() : Session(nullptr, nullptr) {}

Session::Session(std::shared_ptr<Executor> executor) : Session(nullptr, std::move(executor)) {}

Session::Session(std::shared_ptr<ModelStore> store, std::shared_ptr<Executor> executor)
    : store_(std::move(store)), executor_(std::move(executor)) {
  if (!store_) store_ = std::make_shared<ModelStore>();
  if (!executor_) executor_ = std::make_shared<SerialExecutor>();
  targets_ = std::make_shared<TargetCache>(store_);
}

// --- tenant binding ----------------------------------------------------------

void Session::bind_tenant(std::shared_ptr<StoreView> view,
                          std::shared_ptr<AdmissionController> admission) {
  view_ = std::move(view);
  admission_ = std::move(admission);
  tenant_ = view_ ? view_->tenant() : TenantContext{};
  // Envelope targets must load under the tenant too — a spec resolved by a
  // bound session issues a tenant-owned, quota-checked, salted handle.
  std::lock_guard lock{targets_->mutex};
  targets_->specs.bind_view(view_);
}

// --- loading (forwarded to the store, via the tenant view when bound) --------

Result<ModelInfo> Session::load_text(std::string_view text, std::string_view name) {
  return view_ ? view_->load_text(text, name) : store_->load_text(text, name);
}

Result<ModelInfo> Session::load_file(const std::string& path) {
  return view_ ? view_->load_file(path) : store_->load_file(path);
}

Result<ModelInfo> Session::load_builtin(std::string_view name) {
  return view_ ? view_->load_builtin(name) : store_->load_builtin(name);
}

Result<ModelInfo> Session::load_builtin(const LoadBuiltinRequest& request) {
  return view_ ? view_->load_builtin(request) : store_->load_builtin(request);
}

Result<ModelInfo> Session::load_model(std::string_view spec) {
  return view_ ? view_->load_model(spec) : store_->load_model(spec);
}

Result<ModelInfo> Session::load(variant::VariantModel model, std::string_view origin) {
  return view_ ? view_->load(std::move(model), origin) : store_->load(std::move(model), origin);
}

UnloadStatus Session::unload(ModelId id) {
  return view_ ? view_->unload(id) : store_->unload(id);
}

Result<ModelInfo> Session::resolve(const std::string& spec,
                                   const std::vector<std::string>& options) {
  std::lock_guard lock{targets_->mutex};
  return targets_->specs.resolve(spec, options);
}

std::vector<ModelId> Session::resolved_handles(const std::string& spec) const {
  std::lock_guard lock{targets_->mutex};
  return targets_->specs.handles(spec);
}

// --- result caching ----------------------------------------------------------

std::shared_ptr<ResultCache> Session::enable_cache(CacheConfig config) {
  return store_->enable_cache(config);
}

std::optional<CacheStats> Session::cache_stats() const { return store_->cache_stats(); }

// --- introspection ----------------------------------------------------------

std::vector<ModelInfo> Session::models() const {
  return view_ ? view_->models() : store_->models();
}

Result<ModelInfo> Session::info(ModelId id) const {
  return view_ ? view_->info(id) : store_->info(id);
}

std::vector<std::string> Session::builtins() { return builtin_names(); }

// --- pipeline operations ----------------------------------------------------

Result<ValidateResponse> Session::validate(ModelId id) const {
  const ModelStore::Snapshot snapshot = store_->find(id);
  if (!snapshot) return unknown_model<ValidateResponse>(id);
  return guarded<ValidateResponse>([&]() -> Result<ValidateResponse> {
    ValidateResponse response{.model = snapshot->model().graph().name(), .findings = {}};
    if (snapshot->model().interface_count() > 0) {
      // Includes the core graph pass with the mutual-exclusivity oracle.
      response.findings = variant::validate_variants(snapshot->model());
    } else {
      response.findings = spi::validate(snapshot->model().graph());
    }
    return Result<ValidateResponse>::success(std::move(response));
  });
}

Result<spi::ModelStatistics> Session::stats(ModelId id) const {
  const ModelStore::Snapshot snapshot = store_->find(id);
  if (!snapshot) return unknown_model<spi::ModelStatistics>(id);
  return guarded<spi::ModelStatistics>([&] {
    return Result<spi::ModelStatistics>::success(
        spi::collect_statistics(snapshot->model().graph()));
  });
}

Result<std::string> Session::dot(ModelId id) const {
  const ModelStore::Snapshot snapshot = store_->find(id);
  if (!snapshot) return unknown_model<std::string>(id);
  return guarded<std::string>([&] {
    return Result<std::string>::success(snapshot->model().interface_count() > 0
                                            ? variant::to_dot(snapshot->model())
                                            : spi::to_dot(snapshot->model().graph()));
  });
}

Result<std::string> Session::write_text(ModelId id) const {
  const ModelStore::Snapshot snapshot = store_->find(id);
  if (!snapshot) return unknown_model<std::string>(id);
  // variant::write_text appends the versioned `variants v1` section for
  // models with interfaces, so variant structure is no longer silently
  // dropped on save; flat models keep emitting plain graph text.
  return guarded<std::string>(
      [&] { return Result<std::string>::success(variant::write_text(snapshot->model())); });
}

namespace {

/// The one snapshot-and-cache path behind every evaluation entry point —
/// per-kind endpoint, envelope call, and every batch slot all converge
/// here, which is what makes their results (and cache keys) identical.
template <typename Response, typename Request, typename Eval>
Result<Response> call_one(const ModelStore& store, const Request& request, Eval&& eval) {
  const ModelStore::Snapshot snapshot = store.find(request.model);
  if (!snapshot) return unknown_model<Response>(request.model);
  return detail::with_cache<Response>(store.cache(), *snapshot, request,
                                      std::forward<Eval>(eval));
}

}  // namespace

Result<AnalyzeResponse> Session::analyze(const AnalyzeRequest& request) const {
  return call_one<AnalyzeResponse>(*store_, request, &detail::eval_analyze);
}

Result<SimulateResponse> Session::simulate(const SimulateRequest& request) const {
  return call_one<SimulateResponse>(*store_, request, &detail::eval_simulate);
}

Result<ExploreResponse> Session::explore(const ExploreRequest& request) const {
  return call_one<ExploreResponse>(*store_, request, &detail::eval_explore);
}

Result<ParetoResponse> Session::pareto(const ParetoRequest& request) const {
  return call_one<ParetoResponse>(*store_, request, &detail::eval_pareto);
}

Result<CompareResponse> Session::compare(const CompareRequest& request) const {
  return call_one<CompareResponse>(*store_, request,
                                   [this](const StoreEntry& entry, const CompareRequest& r) {
                                     return detail::eval_compare(entry, r, *executor_);
                                   });
}

// --- the unified envelope (v5) ----------------------------------------------

namespace {

/// Lifts a typed Result into the envelope's Result<AnyResponse>, keeping
/// diagnostics (failure lists and success notes) intact.
template <typename Response>
Result<AnyResponse> to_any(Result<Response> result) {
  if (!result.ok()) return Result<AnyResponse>::failure(result.diagnostics());
  support::DiagnosticList notes = result.diagnostics();
  return Result<AnyResponse>::success(AnyResponse{std::move(result).value()}, std::move(notes));
}

/// Evaluates one resolved payload against a captured snapshot through the
/// result-cache seam — the envelope twin of the submit_batch task body.
/// `executor` powers compare's nested strategy fan-out (raw pointer for the
/// same lifetime reason as Session::submit_compare).
Result<AnyResponse> eval_any(const std::shared_ptr<ResultCache>& cache, const StoreEntry& entry,
                             const RequestPayload& payload, Executor* executor) {
  return std::visit(
      [&](const auto& request) -> Result<AnyResponse> {
        using Request = std::decay_t<decltype(request)>;
        if constexpr (std::is_same_v<Request, CompareRequest>) {
          return to_any(detail::with_cache<CompareResponse>(
              cache, entry, request, [executor](const StoreEntry& e, const CompareRequest& r) {
                return detail::eval_compare(e, r, *executor);
              }));
        } else if constexpr (std::is_same_v<Request, SimulateRequest>) {
          return to_any(
              detail::with_cache<SimulateResponse>(cache, entry, request, &detail::eval_simulate));
        } else if constexpr (std::is_same_v<Request, AnalyzeRequest>) {
          return to_any(
              detail::with_cache<AnalyzeResponse>(cache, entry, request, &detail::eval_analyze));
        } else if constexpr (std::is_same_v<Request, ExploreRequest>) {
          return to_any(
              detail::with_cache<ExploreResponse>(cache, entry, request, &detail::eval_explore));
        } else {
          static_assert(std::is_same_v<Request, ParetoRequest>);
          return to_any(
              detail::with_cache<ParetoResponse>(cache, entry, request, &detail::eval_pareto));
        }
      },
      payload);
}

}  // namespace

Result<ModelId> Session::resolve_target(const AnyRequest& request) const {
  if (request.target.empty()) {
    if (!request.target_options.empty()) {
      return Result<ModelId>::failure(diag::kBadOption,
                                      "envelope target options require a target spec");
    }
    const ModelId id = model_of(request.payload);
    // A bound session only evaluates ids its own view issued — a raw handle
    // guessed (or leaked) from another tenant fails exactly like an unknown
    // model, never disclosing that it exists.
    if (view_ && !view_->owns(id)) return unknown_model<ModelId>(id);
    return Result<ModelId>::success(id);
  }
  std::lock_guard lock{targets_->mutex};
  Result<ModelInfo> resolved = targets_->specs.resolve(request.target, request.target_options);
  if (!resolved.ok()) return Result<ModelId>::failure(resolved.diagnostics());
  return Result<ModelId>::success(resolved.value().id);
}

std::optional<AdmissionDecision> Session::shed() const {
  if (!admission_) return std::nullopt;
  const AdmissionDecision decision = admission_->admit(executor_->stats());
  if (decision.admitted) return std::nullopt;
  return decision;
}

namespace {

/// The typed shed reply: diag::kOverload plus a parseable retry-after hint
/// ("retry-after-ms N") so clients can back off without guessing.
Result<AnyResponse> overload_failure(const AdmissionDecision& decision) {
  char detail[128];
  std::snprintf(detail, sizeof(detail),
                "server overloaded: projected deadline-miss rate %.3f exceeds the bound; "
                "retry-after-ms %lld",
                decision.projected_miss_rate,
                static_cast<long long>(decision.retry_after.count()));
  return Result<AnyResponse>::failure(diag::kOverload, detail);
}

}  // namespace

Result<AnyResponse> Session::call(const AnyRequest& request) const {
  if (const auto decision = shed()) return overload_failure(*decision);
  const Result<ModelId> target = resolve_target(request);
  if (!target.ok()) return Result<AnyResponse>::failure(target.diagnostics());
  RequestPayload payload = request.payload;
  set_model(payload, target.value());
  const ModelStore::Snapshot snapshot = store_->find(target.value());
  if (!snapshot) return unknown_model<AnyResponse>(target.value());
  // Inline calls evaluate on this thread, so the trace (if the envelope
  // carries one) installs here; no queue-wait span on this path.
  obs::TraceScope scope{request.trace.get()};
  return eval_any(store_->cache(), *snapshot, payload, executor_.get());
}

// --- batch surface ----------------------------------------------------------

namespace {

/// Shared submit path of the streaming surface. Every request's snapshot is
/// resolved *now* — the batch evaluates the store as of submission, so a
/// concurrent unload (or session move/destruction) cannot touch a slot.
/// Tasks capture only the batch state, the snapshot, the result cache (if
/// the store has one) and `eval`; cancelled slots never touch the cache.
template <typename Response, typename Request, typename Eval>
BatchHandle<Response> submit_batch(const ModelStore& store, std::shared_ptr<Executor> executor,
                                   std::vector<Request> requests,
                                   SlotCallback<Response> on_slot, SubmitOptions options,
                                   Eval eval) {
  auto state =
      std::make_shared<detail::BatchState<Response>>(requests.size(), std::move(on_slot));
  const std::shared_ptr<ResultCache> cache = store.cache();
  std::vector<std::function<void()>> tasks;
  tasks.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    tasks.push_back([state, cache, snapshot = store.find(requests[i].model),
                     request = std::move(requests[i]), i, eval] {
      Result<Response> result = [&]() -> Result<Response> {
        if (state->core.cancel_requested()) {
          return Result<Response>::failure(detail::cancelled_diagnostics(i));
        }
        if (!snapshot) return unknown_model<Response>(request.model);
        return detail::with_cache<Response>(cache, *snapshot, request, eval);
      }();
      state->deliver(i, std::move(result));
    });
  }
  executor->submit(std::move(tasks), options);
  return make_batch_handle<Response>(std::move(state), std::move(executor));
}

}  // namespace

BatchHandle<SimulateResponse> Session::submit_simulate_batch(
    std::vector<SimulateRequest> requests, SlotCallback<SimulateResponse> on_slot,
    SubmitOptions options) const {
  return submit_batch<SimulateResponse>(*store_, executor_, std::move(requests),
                                        std::move(on_slot), options, &detail::eval_simulate);
}

BatchHandle<ExploreResponse> Session::submit_explore_batch(
    std::vector<ExploreRequest> requests, SlotCallback<ExploreResponse> on_slot,
    SubmitOptions options) const {
  return submit_batch<ExploreResponse>(*store_, executor_, std::move(requests),
                                       std::move(on_slot), options, &detail::eval_explore);
}

BatchHandle<CompareResponse> Session::submit_compare(std::vector<CompareRequest> requests,
                                                     SlotCallback<CompareResponse> on_slot,
                                                     SubmitOptions options) const {
  // Each compare slot fans its strategy jobs across the same executor; the
  // self-scheduling pool lets the slot's thread help drain its own jobs, so
  // nesting cannot deadlock. Deliberately a raw pointer: the executor
  // outlives every queued task (the handle keeps it alive, and the pool
  // destructor drains its queue before joining), while an owning copy here
  // could make a *worker* drop the last reference and self-join the pool.
  Executor* executor = executor_.get();
  return submit_batch<CompareResponse>(
      *store_, executor_, std::move(requests), std::move(on_slot), options,
      [executor](const StoreEntry& entry, const CompareRequest& request) {
        return detail::eval_compare(entry, request, *executor);
      });
}

namespace {

/// Blocking twin of submit_batch with the same snapshot-at-submit
/// semantics, built on Executor::run for two reasons the streaming path
/// can't provide: the calling thread participates in its own batch (so a
/// blocking batch issued from inside a pool task cannot deadlock), and
/// results move straight out of their slots — no promise/future machinery,
/// no copies.
template <typename Response, typename Request, typename Eval>
std::vector<Result<Response>> run_batch(const ModelStore& store, Executor& executor,
                                        const std::vector<Request>& requests, Eval eval) {
  const std::shared_ptr<ResultCache> cache = store.cache();
  std::vector<std::optional<Result<Response>>> slots(requests.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    tasks.push_back(
        [&slots, &requests, &cache, snapshot = store.find(requests[i].model), &eval, i] {
          slots[i] = snapshot
                         ? detail::with_cache<Response>(cache, *snapshot, requests[i], eval)
                         : unknown_model<Response>(requests[i].model);
        });
  }
  executor.run(std::move(tasks));

  std::vector<Result<Response>> results;
  results.reserve(slots.size());
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

}  // namespace

std::vector<Result<SimulateResponse>> Session::simulate_batch(
    const std::vector<SimulateRequest>& requests) const {
  return run_batch<SimulateResponse>(*store_, *executor_, requests, &detail::eval_simulate);
}

std::vector<Result<ExploreResponse>> Session::explore_batch(
    const std::vector<ExploreRequest>& requests) const {
  return run_batch<ExploreResponse>(*store_, *executor_, requests, &detail::eval_explore);
}

// --- envelope batch surface --------------------------------------------------

namespace {

/// One envelope slot after submission-time resolution: the payload pointed
/// at its model, the snapshot it will evaluate (null when resolution or
/// lookup failed — `failure` then carries what the slot lands with), and
/// the slot's scheduling options.
struct PreparedSlot {
  RequestPayload payload;
  ModelStore::Snapshot snapshot;
  std::optional<support::DiagnosticList> failure;
  SubmitOptions options;
  /// The envelope's trace, carried onto the executor task so the queue-wait
  /// span and the evaluation seams record against it. Null = untraced.
  std::shared_ptr<obs::TraceContext> trace;
};

/// Envelope slots grouped by identical SubmitOptions, in first-appearance
/// order. Each group becomes one executor submission, so priority bands and
/// EDF deadlines hold per slot while slots that agree still share one
/// self-scheduling batch. Tasks are *moved* into their group — a slot task
/// owns the request payload and snapshot, so copying it would duplicate
/// every request's data.
template <typename Task>
std::vector<std::pair<SubmitOptions, std::vector<Task>>> group_by_options(
    const std::vector<PreparedSlot>& slots, std::vector<Task>&& tasks) {
  std::vector<std::pair<SubmitOptions, std::vector<Task>>> groups;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    auto group = groups.begin();
    for (; group != groups.end(); ++group) {
      if (group->first == slots[i].options) break;
    }
    if (group == groups.end()) {
      groups.push_back({slots[i].options, {}});
      group = std::prev(groups.end());
    }
    group->second.push_back(std::move(tasks[i]));
  }
  return groups;
}

/// Resolves every envelope's target and snapshot at submission time — the
/// batch sees the store as of submit, exactly like the v4 streaming
/// surface. Takes the requests by value so owning callers (submit) move
/// payloads through instead of copying; call_batch pays its one copy here
/// and none later.
std::vector<PreparedSlot> prepare(const ModelStore& store, std::vector<AnyRequest> requests,
                                  const std::function<Result<ModelId>(const AnyRequest&)>& resolve) {
  std::vector<PreparedSlot> slots;
  slots.reserve(requests.size());
  for (AnyRequest& request : requests) {
    const Result<ModelId> target = resolve(request);  // reads the request: resolve before moving
    PreparedSlot slot{.payload = std::move(request.payload), .options = request.options,
                      .trace = std::move(request.trace)};
    if (slot.trace) slot.trace->mark_queued();  // queue-wait starts at submission
    if (!target.ok()) {
      slot.failure = target.diagnostics();
    } else {
      set_model(slot.payload, target.value());
      slot.snapshot = store.find(target.value());
    }
    slots.push_back(std::move(slot));
  }
  return slots;
}

}  // namespace

BatchHandle<AnyResponse> Session::submit(std::vector<AnyRequest> requests,
                                         SlotCallback<AnyResponse> on_slot) const {
  if (const auto decision = shed()) {
    // Shed before submission: every slot lands with the typed overload
    // failure and the executor never sees the work — queueing it anyway is
    // exactly how an overloaded tail gets worse.
    auto state =
        std::make_shared<detail::BatchState<AnyResponse>>(requests.size(), std::move(on_slot));
    for (std::size_t i = 0; i < requests.size(); ++i) {
      state->deliver(i, overload_failure(*decision));
    }
    return make_batch_handle<AnyResponse>(std::move(state), executor_);
  }
  auto state =
      std::make_shared<detail::BatchState<AnyResponse>>(requests.size(), std::move(on_slot));
  const std::shared_ptr<ResultCache> cache = store_->cache();
  // Raw pointer for compare's nested fan-out; the handle's owning copy
  // keeps the executor alive past the session (see submit_compare).
  Executor* executor = executor_.get();

  std::vector<PreparedSlot> slots = prepare(*store_, std::move(requests),
                                            [this](const AnyRequest& r) { return resolve_target(r); });
  std::vector<std::function<void()>> tasks;
  tasks.reserve(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    tasks.push_back([state, cache, executor, i, payload = std::move(slots[i].payload),
                     snapshot = std::move(slots[i].snapshot),
                     failure = std::move(slots[i].failure), trace = std::move(slots[i].trace)] {
      if (trace) trace->end_queue_wait();
      obs::TraceScope scope{trace.get()};
      Result<AnyResponse> result = [&]() -> Result<AnyResponse> {
        if (state->core.cancel_requested()) {
          return Result<AnyResponse>::failure(detail::cancelled_diagnostics(i));
        }
        if (failure) return Result<AnyResponse>::failure(*failure);
        if (!snapshot) return unknown_model<AnyResponse>(model_of(payload));
        return eval_any(cache, *snapshot, payload, executor);
      }();
      state->deliver(i, std::move(result));
    });
  }
  for (auto& [options, group] : group_by_options(slots, std::move(tasks))) {
    executor_->submit(std::move(group), options);
  }
  return make_batch_handle<AnyResponse>(std::move(state), executor_);
}

std::vector<Result<AnyResponse>> Session::call_batch(
    const std::vector<AnyRequest>& requests) const {
  if (const auto decision = shed()) {
    std::vector<Result<AnyResponse>> out;
    out.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) out.push_back(overload_failure(*decision));
    return out;
  }
  const std::shared_ptr<ResultCache> cache = store_->cache();
  Executor* executor = executor_.get();
  std::vector<PreparedSlot> slots =
      prepare(*store_, requests, [this](const AnyRequest& r) { return resolve_target(r); });

  std::vector<std::optional<Result<AnyResponse>>> results(slots.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    tasks.push_back([&results, &slots, cache, executor, i] {
      const PreparedSlot& slot = slots[i];
      if (slot.trace) slot.trace->end_queue_wait();
      obs::TraceScope scope{slot.trace.get()};
      results[i] = slot.failure ? Result<AnyResponse>::failure(*slot.failure)
                   : !slot.snapshot
                       ? unknown_model<AnyResponse>(model_of(slot.payload))
                       : eval_any(cache, *slot.snapshot, slot.payload, executor);
    });
  }

  auto groups = group_by_options(slots, std::move(tasks));
  if (groups.size() <= 1) {
    // Uniform options: the classic participating run() — safe even from
    // inside a task already on the session's pool.
    if (!groups.empty()) executor_->run(std::move(groups.front().second), groups.front().first);
  } else {
    // Mixed options: one submission per options group so the executor can
    // order them (priority band, then EDF), plus a latch so the call stays
    // blocking. Groups drain on the pool's workers; prefer uniform options
    // when calling from inside a pool task.
    struct Latch {
      std::mutex mutex;
      std::condition_variable done;
      std::size_t remaining;
    };
    auto latch = std::make_shared<Latch>();
    latch->remaining = slots.size();  // tasks was consumed by the grouping
    for (auto& [options, group] : groups) {
      for (auto& task : group) {
        task = [task = std::move(task), latch] {
          task();
          std::lock_guard lock{latch->mutex};
          if (--latch->remaining == 0) latch->done.notify_all();
        };
      }
      executor_->submit(std::move(group), options);
    }
    std::unique_lock lock{latch->mutex};
    latch->done.wait(lock, [&] { return latch->remaining == 0; });
  }

  std::vector<Result<AnyResponse>> out;
  out.reserve(results.size());
  for (auto& result : results) out.push_back(std::move(*result));
  return out;
}

}  // namespace spivar::api
