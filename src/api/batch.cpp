#include "api/batch.hpp"

#include <string>

namespace spivar::api::detail {

support::DiagnosticList cancelled_diagnostics(std::size_t slot) {
  support::DiagnosticList diagnostics;
  diagnostics.error(diag::kCancelled,
                    "slot " + std::to_string(slot) +
                        " cancelled before evaluation (BatchHandle::cancel)");
  return diagnostics;
}

}  // namespace spivar::api::detail
