// api::Session — the unified entry point over the whole pipeline.
//
// A Session is a *view* over a ModelStore plus an execution policy. The
// store owns the models (immutable snapshots, see store.hpp); the session
// exposes every pipeline stage of the paper — validate, analyze, simulate,
// explore, pareto, compare — as uniform request/response operations
// returning Result<T>. No exception escapes a session call: parse errors,
// model errors and unexpected failures surface as diagnostics in the failed
// Result.
//
//   api::Session session;                         // private store, serial
//   auto model = session.load_builtin("fig2");
//   auto sim = session.simulate({.model = model.value().id});
//
//   auto store = std::make_shared<api::ModelStore>();
//   api::Session a{store};                        // many sessions,
//   api::Session b{store, api::make_executor(4)}; // one model store
//
// The batch surface evaluates whole scenario sets: blocking
// (simulate_batch/explore_batch/compare) or streaming (submit_* returning a
// BatchHandle with per-slot futures, an on_slot callback, and cancel()).
// Batch tasks capture store snapshots — never the session — so sessions are
// movable even with batches in flight.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "api/admission.hpp"
#include "api/batch.hpp"
#include "api/executor.hpp"
#include "api/options.hpp"
#include "api/registry.hpp"
#include "api/requests.hpp"
#include "api/responses.hpp"
#include "api/result.hpp"
#include "api/spec_cache.hpp"
#include "api/store.hpp"
#include "api/store_view.hpp"
#include "api/tenant.hpp"
#include "spi/statistics.hpp"
#include "variant/model.hpp"

namespace spivar::api {

class Session {
 public:
  /// Private store, serial execution — batches evaluate on the calling
  /// thread.
  Session();
  /// Private store with an injected execution policy (make_executor(jobs)).
  explicit Session(std::shared_ptr<Executor> executor);
  /// Attaches to a shared store: models loaded by any attached session are
  /// visible to all of them, and each session brings its own execution
  /// policy (null falls back to serial).
  explicit Session(std::shared_ptr<ModelStore> store,
                   std::shared_ptr<Executor> executor = nullptr);

  // Copies are deleted (two sessions silently sharing one store should be
  // explicit, via the store constructor). Moves are allowed: batch tasks
  // capture store snapshots, never `this`, so an in-flight batch keeps
  // running across a move. A moved-from session may only be destroyed or
  // assigned to.
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  Session(Session&&) noexcept = default;
  Session& operator=(Session&&) noexcept = default;

  [[nodiscard]] const Executor& executor() const noexcept { return *executor_; }
  /// The shared model store; hand it to another Session to shard work.
  [[nodiscard]] const std::shared_ptr<ModelStore>& store() const noexcept { return store_; }

  /// Deadline-miss telemetry of the session's executor: tasks completed,
  /// deadline misses, and worst/summed lateness (see ExecutorStats).
  [[nodiscard]] ExecutorStats executor_stats() const noexcept { return executor_->stats(); }

  // --- tenant binding -------------------------------------------------------

  /// Binds this session to one tenant: every load/unload/enumeration below
  /// routes through `view` (tenant-scoped ids and quotas, salted content
  /// identity — including envelope target resolution), and when `admission`
  /// is set, call/call_batch/submit shed with a typed api-overload failure
  /// carrying a retry-after hint while the projected deadline-miss rate
  /// sits above the controller's bound. Either argument may be null; an
  /// unbound session is the default tenant and behaves exactly as before
  /// tenancy existed. Bind before use, not concurrently with calls.
  void bind_tenant(std::shared_ptr<StoreView> view,
                   std::shared_ptr<AdmissionController> admission = nullptr);

  /// The bound tenant's context; the default context when unbound.
  [[nodiscard]] const TenantContext& tenant() const noexcept { return tenant_; }
  /// The bound tenant view, null when unbound.
  [[nodiscard]] const std::shared_ptr<StoreView>& tenant_view() const noexcept { return view_; }
  /// The bound admission controller, null when none.
  [[nodiscard]] const std::shared_ptr<AdmissionController>& admission() const noexcept {
    return admission_;
  }

  // --- loading (forwarded to the store) -------------------------------------

  /// Parses a model from "spit" text. `name` overrides the model name for
  /// presentation (empty keeps the parsed one).
  Result<ModelInfo> load_text(std::string_view text, std::string_view name = {});

  /// Reads and parses a .spit file.
  Result<ModelInfo> load_file(const std::string& path);

  /// Instantiates a registry model with its default options.
  Result<ModelInfo> load_builtin(std::string_view name);

  /// Instantiates a registry model with a typed option struct, e.g.
  /// `load_builtin({.name = "synthetic", .options = models::SyntheticSpec{
  /// .variants = 4}})`. A struct that belongs to a different model fails
  /// with diagnostics.
  Result<ModelInfo> load_builtin(const LoadBuiltinRequest& request);

  /// Builtin name when it matches one, file path otherwise — the CLI's
  /// positional-model resolution in one place.
  Result<ModelInfo> load_model(std::string_view spec);

  /// Adopts an already-built model (programmatic construction).
  Result<ModelInfo> load(variant::VariantModel model, std::string_view origin = "adopted");

  /// Resolves a spec (builtin name or .spit path, with optional "key=value"
  /// builtin options) through the session's tombstone-aware target cache —
  /// the same cache AnyRequest::target resolution uses, so a spec resolved
  /// here and a later envelope naming the same target share one handle.
  /// Thread-safe.
  Result<ModelInfo> resolve(const std::string& spec,
                            const std::vector<std::string>& options = {});

  /// Every handle this session's target cache resolved for `spec` (across
  /// all option combinations), without loading — the service front end's
  /// `unload <spec>` support. Thread-safe.
  [[nodiscard]] std::vector<ModelId> resolved_handles(const std::string& spec) const;

  /// Tombstones the model in the store. Returns kUnloaded when this call
  /// removed a live model, kAlreadyUnloaded when the id had been unloaded
  /// before, and kNeverLoaded for ids the store never issued — the three
  /// cases are distinguishable forever because ids are never reused.
  /// In-flight batches that captured the model's snapshot finish unaffected;
  /// results cached for the id are invalidated.
  UnloadStatus unload(ModelId id);

  // --- result caching --------------------------------------------------------

  /// Enables the store's (snapshot, request) result cache — every eval path
  /// of every session on this store is fronted from now on. Idempotent;
  /// returns the active cache (see ModelStore::enable_cache).
  std::shared_ptr<ResultCache> enable_cache(CacheConfig config = {});

  /// Hit/miss/eviction/invalidation counters of the store's cache, or
  /// nullopt when caching is off.
  [[nodiscard]] std::optional<CacheStats> cache_stats() const;

  // --- introspection --------------------------------------------------------

  [[nodiscard]] std::vector<ModelInfo> models() const;
  [[nodiscard]] Result<ModelInfo> info(ModelId id) const;
  [[nodiscard]] static std::vector<std::string> builtins();

  // --- pipeline operations --------------------------------------------------

  /// Core graph validation plus the variant pass when the model has
  /// interfaces. Findings (even errors) are the payload.
  [[nodiscard]] Result<ValidateResponse> validate(ModelId id) const;

  [[nodiscard]] Result<spi::ModelStatistics> stats(ModelId id) const;

  /// GraphViz rendering (variant-aware when the model has interfaces).
  [[nodiscard]] Result<std::string> dot(ModelId id) const;

  /// Canonical "spit" text of the model — including the versioned variant
  /// section (clusters, interfaces, selection rules) when the model has
  /// one, so `--opt`-configured variant models round-trip losslessly.
  [[nodiscard]] Result<std::string> write_text(ModelId id) const;

  [[nodiscard]] Result<AnalyzeResponse> analyze(const AnalyzeRequest& request) const;
  [[nodiscard]] Result<SimulateResponse> simulate(const SimulateRequest& request) const;
  [[nodiscard]] Result<ExploreResponse> explore(const ExploreRequest& request) const;
  [[nodiscard]] Result<ParetoResponse> pareto(const ParetoRequest& request) const;

  /// Runs the requested synthesis strategies (all five when unspecified)
  /// over the model and returns the ranked outcome table — Table 1 of the
  /// paper as one call. Order-sensitive baselines can sweep application
  /// orders; ranking follows the request's objective chain (total cost by
  /// default; see CompareRequest::objectives); strategy runs dispatch
  /// across the session's executor.
  [[nodiscard]] Result<CompareResponse> compare(const CompareRequest& request) const;

  // --- the unified envelope (v5) --------------------------------------------
  //
  // One entry point for every evaluation kind: the AnyRequest envelope
  // carries the payload variant, an optional target spec (resolved through
  // a tombstone-aware per-session target cache — wire clients never hold
  // handles), and per-slot SubmitOptions. Dispatch runs through the same
  // snapshot + result-cache seam as the per-kind methods above, so an
  // envelope call and its dedicated endpoint produce bit-identical results
  // and share cache entries. The per-kind methods are thin wrappers over
  // the same internals and remain the convenient typed surface.

  /// Evaluates one envelope (target resolved first when set).
  [[nodiscard]] Result<AnyResponse> call(const AnyRequest& request) const;

  /// Heterogeneous blocking batch: every slot evaluates independently
  /// across the executor and the call returns all slots in order,
  /// bit-identical to per-kind evaluation. Slots sharing identical
  /// SubmitOptions run as one executor submission (the calling thread
  /// participates when every slot agrees, so a uniform batch is safe from
  /// inside a pool task); mixed options split into per-options submissions
  /// so priority and deadline hold per slot.
  [[nodiscard]] std::vector<Result<AnyResponse>> call_batch(
      const std::vector<AnyRequest>& requests) const;

  /// Heterogeneous streaming batch: snapshots resolve at submission, slots
  /// land through `on_slot` and the handle's futures, and each slot's
  /// SubmitOptions select its scheduling band — a high-priority simulate
  /// overtakes a queued normal compare from the same envelope batch.
  [[nodiscard]] BatchHandle<AnyResponse> submit(std::vector<AnyRequest> requests,
                                                SlotCallback<AnyResponse> on_slot = {}) const;

  // --- blocking batch surface ------------------------------------------------

  /// Evaluates each request independently across the session's executor;
  /// one failing scenario never aborts the batch — its slot carries the
  /// diagnostics. Results are bit-identical to serial evaluation (requests
  /// are deterministic by seed and write disjoint slots). The calling
  /// thread participates in the batch, so these are safe to call even from
  /// inside a task already running on the session's pool.
  [[nodiscard]] std::vector<Result<SimulateResponse>> simulate_batch(
      const std::vector<SimulateRequest>& requests) const;
  [[nodiscard]] std::vector<Result<ExploreResponse>> explore_batch(
      const std::vector<ExploreRequest>& requests) const;

  // --- streaming batch surface -----------------------------------------------
  //
  // submit_* resolve every request's snapshot immediately (the batch sees
  // the store as of submission) and return without waiting. Results stream
  // through `on_slot` and the handle's per-slot futures as they land;
  // handle.wait() yields the same vector the blocking entry point would.
  // `options` selects the executor's scheduling band: a high-priority batch
  // overtakes queued normal/low work, and a deadline orders it EDF within
  // its band (see SubmitOptions).

  [[nodiscard]] BatchHandle<SimulateResponse> submit_simulate_batch(
      std::vector<SimulateRequest> requests, SlotCallback<SimulateResponse> on_slot = {},
      SubmitOptions options = {}) const;
  [[nodiscard]] BatchHandle<ExploreResponse> submit_explore_batch(
      std::vector<ExploreRequest> requests, SlotCallback<ExploreResponse> on_slot = {},
      SubmitOptions options = {}) const;
  /// One slot per CompareRequest — a cross-model comparison sweep; each
  /// slot's strategy jobs fan out across the same executor (safe: the pool
  /// self-schedules nested batches).
  [[nodiscard]] BatchHandle<CompareResponse> submit_compare(
      std::vector<CompareRequest> requests, SlotCallback<CompareResponse> on_slot = {},
      SubmitOptions options = {}) const;

 private:
  /// Tombstone-aware target-spec memoization behind AnyRequest::target.
  /// Shared-ptr + mutex: sessions stay movable and call()/submit stay safe
  /// from several threads (SpecCache itself is single-threaded).
  struct TargetCache {
    explicit TargetCache(std::shared_ptr<ModelStore> store) : specs(std::move(store)) {}
    std::mutex mutex;
    SpecCache specs;
  };

  /// Resolves the envelope's target spec (when set) into the payload's
  /// model handle; returns the resolution failure otherwise.
  [[nodiscard]] Result<ModelId> resolve_target(const AnyRequest& request) const;

  /// The overload gate at the head of call/call_batch/submit: nullopt
  /// admits, a decision sheds (the caller turns it into per-slot failures).
  [[nodiscard]] std::optional<AdmissionDecision> shed() const;

  std::shared_ptr<ModelStore> store_;
  std::shared_ptr<Executor> executor_;
  std::shared_ptr<TargetCache> targets_;

  TenantContext tenant_;  ///< default-constructed until bind_tenant
  std::shared_ptr<StoreView> view_;
  std::shared_ptr<AdmissionController> admission_;
};

}  // namespace spivar::api
