// api::Session — the unified entry point over the whole pipeline.
//
// A Session owns loaded models (parsed from text, read from disk, or
// instantiated from the built-in registry) and exposes every pipeline stage
// of the paper — validate, analyze, simulate, explore, pareto — as uniform
// request/response operations returning Result<T>. No exception escapes a
// session call: parse errors, model errors and unexpected failures surface
// as diagnostics in the failed Result.
//
//   api::Session session;
//   auto model = session.load_builtin("fig2");
//   auto sim = session.simulate({.model = model.value().id});
//   auto arch = session.explore({.model = model.value().id});
//
// The batch entry points evaluate whole scenario sets through one call —
// the seam where sharding/parallel dispatch lands later.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/executor.hpp"
#include "api/options.hpp"
#include "api/registry.hpp"
#include "api/requests.hpp"
#include "api/responses.hpp"
#include "api/result.hpp"
#include "spi/statistics.hpp"
#include "variant/model.hpp"

namespace spivar::api {

class Session {
 public:
  /// Serial execution — batches evaluate on the calling thread.
  Session();
  /// Injected execution policy for the batch surface (make_executor(jobs)).
  explicit Session(std::shared_ptr<Executor> executor);

  // Sessions own their models; handles would dangle after a copy. Moves are
  // deleted too: a batch in flight on a thread-pool executor holds tasks
  // referencing this session, which a move would silently dangle.
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  Session(Session&&) = delete;
  Session& operator=(Session&&) = delete;

  [[nodiscard]] const Executor& executor() const noexcept { return *executor_; }

  // --- loading --------------------------------------------------------------

  /// Parses a model from "spit" text. `name` overrides the model name for
  /// presentation (empty keeps the parsed one).
  Result<ModelInfo> load_text(std::string_view text, std::string_view name = {});

  /// Reads and parses a .spit file.
  Result<ModelInfo> load_file(const std::string& path);

  /// Instantiates a registry model with its default options.
  Result<ModelInfo> load_builtin(std::string_view name);

  /// Instantiates a registry model with a typed option struct, e.g.
  /// `load_builtin({.name = "synthetic", .options = models::SyntheticSpec{
  /// .variants = 4}})`. A struct that belongs to a different model fails
  /// with diagnostics.
  Result<ModelInfo> load_builtin(const LoadBuiltinRequest& request);

  /// Builtin name when it matches one, file path otherwise — the CLI's
  /// positional-model resolution in one place.
  Result<ModelInfo> load_model(std::string_view spec);

  /// Adopts an already-built model (programmatic construction).
  Result<ModelInfo> load(variant::VariantModel model, std::string_view origin = "adopted");

  bool unload(ModelId id);

  // --- introspection --------------------------------------------------------

  [[nodiscard]] std::vector<ModelInfo> models() const;
  [[nodiscard]] Result<ModelInfo> info(ModelId id) const;
  [[nodiscard]] static std::vector<std::string> builtins();

  // --- pipeline operations --------------------------------------------------

  /// Core graph validation plus the variant pass when the model has
  /// interfaces. Findings (even errors) are the payload.
  [[nodiscard]] Result<ValidateResponse> validate(ModelId id) const;

  [[nodiscard]] Result<spi::ModelStatistics> stats(ModelId id) const;

  /// GraphViz rendering (variant-aware when the model has interfaces).
  [[nodiscard]] Result<std::string> dot(ModelId id) const;

  /// Canonical "spit" text of the model's graph.
  [[nodiscard]] Result<std::string> write_text(ModelId id) const;

  [[nodiscard]] Result<AnalyzeResponse> analyze(const AnalyzeRequest& request) const;
  [[nodiscard]] Result<SimulateResponse> simulate(const SimulateRequest& request) const;
  [[nodiscard]] Result<ExploreResponse> explore(const ExploreRequest& request) const;
  [[nodiscard]] Result<ParetoResponse> pareto(const ParetoRequest& request) const;

  /// Runs the requested synthesis strategies (all five when unspecified)
  /// over the model and returns the ranked outcome table — Table 1 of the
  /// paper as one call. Order-sensitive baselines can sweep application
  /// orders; strategy runs dispatch across the session's executor.
  [[nodiscard]] Result<CompareResponse> compare(const CompareRequest& request) const;

  // --- batch surface --------------------------------------------------------

  /// Evaluates each request independently across the session's executor;
  /// one failing scenario never aborts the batch — its slot carries the
  /// diagnostics. Results are bit-identical to serial evaluation (requests
  /// are deterministic by seed and write disjoint slots).
  [[nodiscard]] std::vector<Result<SimulateResponse>> simulate_batch(
      const std::vector<SimulateRequest>& requests) const;
  [[nodiscard]] std::vector<Result<ExploreResponse>> explore_batch(
      const std::vector<ExploreRequest>& requests) const;

 private:
  struct Entry {
    std::string origin;
    variant::VariantModel model;
    const BuiltinModel* builtin = nullptr;  ///< registry entry when applicable
  };

  Result<ModelInfo> adopt(Entry entry);
  [[nodiscard]] const Entry* find(ModelId id) const;
  [[nodiscard]] ModelInfo describe(ModelId id, const Entry& entry) const;

  /// Resolves the (library, problem) pair for a synthesis request: explicit
  /// request override > curated registry library > derived synthetic one.
  struct SynthesisSetup {
    synth::ImplLibrary library;
    synth::SynthesisProblem problem;
    std::string library_origin;
  };
  [[nodiscard]] SynthesisSetup synthesis_setup(const Entry& entry,
                                               const std::optional<synth::ProblemOptions>& problem,
                                               const std::optional<synth::ImplLibrary>& library) const;

  std::map<std::uint32_t, Entry> entries_;
  std::uint32_t next_id_ = 0;
  std::shared_ptr<Executor> executor_;
};

}  // namespace spivar::api
