// Execution policy for the session's batch surface.
//
// Every batch entry point (simulate_batch, explore_batch, compare and the
// submit_* streaming variants) splits its work into independent tasks and
// hands them to the session's Executor. Tasks are deterministic by seed and
// write to disjoint result slots, so the outcome is bit-identical whether
// they run serially or across a pool — parallelism is purely a wall-clock
// decision, asserted by the tests.
//
//   api::Session fast{api::make_executor(4)};   // thread pool, 4 workers
//   api::Session exact;                         // serial (the default)
//
// The pool is *self-scheduling*: a batch is one queue node with an atomic
// cursor, and every participating thread claims the next task index with a
// single fetch_add — no per-task queue traffic, and a skewed batch (one
// giant task next to many small ones) never serializes behind a static
// partition. The thread calling run() participates in its own batch, which
// also makes nested dispatch (a compare slot fanning its strategy jobs onto
// the same pool) deadlock-free by construction.
//
// Scheduling is priority + deadline aware: every run/submit carries
// SubmitOptions{priority, deadline}. Workers always pick the best queued
// batch — higher priority band first, earliest deadline within a band (EDF;
// no deadline sorts last), FIFO on ties — and between tasks they yield to a
// strictly higher band, so a high-priority task overtakes a queued (or even
// in-flight) skewed batch instead of waiting behind it. Deadlines order
// work, they never cancel it; a task already running is never interrupted.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace spivar::api {

/// Scheduling band of one submitted batch; kHigh drains first.
enum class Priority : std::uint8_t { kLow, kNormal, kHigh };

[[nodiscard]] constexpr const char* to_string(Priority priority) noexcept {
  switch (priority) {
    case Priority::kLow: return "low";
    case Priority::kNormal: return "normal";
    case Priority::kHigh: return "high";
  }
  return "?";
}

/// Canonical name back to the band; nullopt for unknown names.
[[nodiscard]] std::optional<Priority> parse_priority(std::string_view name);

/// Per-submission scheduling options, uniform across run() and submit().
struct SubmitOptions {
  Priority priority = Priority::kNormal;
  /// Soft deadline relative to submission: within a priority band, batches
  /// order earliest-deadline-first (no deadline sorts after any deadline).
  /// Purely an ordering hint — late work still runs to completion.
  std::optional<std::chrono::milliseconds> deadline;

  friend bool operator==(const SubmitOptions&, const SubmitOptions&) = default;
};

/// Deadline-miss telemetry, recorded per task at completion (ROADMAP:
/// "deadlines order work but nothing records how late a batch actually
/// ran"). A task misses when it finishes after its submission's deadline;
/// lateness is completion minus deadline. Deadline-free tasks only bump
/// `completed`. One consistent snapshot per Executor::stats() call.
struct ExecutorStats {
  std::uint64_t completed = 0;        ///< tasks run to completion
  std::uint64_t deadline_misses = 0;  ///< tasks finished past their deadline
  std::chrono::microseconds max_lateness{0};    ///< worst single-task lateness
  std::chrono::microseconds total_lateness{0};  ///< summed over every miss

  /// Misses per completed task (0 when nothing completed yet).
  [[nodiscard]] double miss_rate() const noexcept {
    return completed == 0 ? 0.0
                          : static_cast<double>(deadline_misses) / static_cast<double>(completed);
  }
};

namespace detail {

/// Lock-free accumulator behind Executor::stats(); shared by the serial and
/// pool executors so telemetry is uniform across execution policies.
class ExecutorStatsRecorder {
 public:
  /// Records one task completion against the (absolute) deadline of its
  /// submission; nullopt marks deadline-free work.
  void record(const std::optional<std::chrono::steady_clock::time_point>& deadline) noexcept {
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (!deadline) return;
    const auto now = std::chrono::steady_clock::now();
    if (now <= *deadline) return;
    const std::int64_t late =
        std::chrono::duration_cast<std::chrono::microseconds>(now - *deadline).count();
    misses_.fetch_add(1, std::memory_order_relaxed);
    total_lateness_us_.fetch_add(static_cast<std::uint64_t>(late), std::memory_order_relaxed);
    std::int64_t prev = max_lateness_us_.load(std::memory_order_relaxed);
    while (prev < late &&
           !max_lateness_us_.compare_exchange_weak(prev, late, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] ExecutorStats snapshot() const noexcept {
    ExecutorStats stats;
    stats.completed = completed_.load(std::memory_order_relaxed);
    stats.deadline_misses = misses_.load(std::memory_order_relaxed);
    stats.max_lateness =
        std::chrono::microseconds{max_lateness_us_.load(std::memory_order_relaxed)};
    stats.total_lateness = std::chrono::microseconds{
        static_cast<std::int64_t>(total_lateness_us_.load(std::memory_order_relaxed))};
    return stats;
  }

 private:
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::int64_t> max_lateness_us_{0};
  std::atomic<std::uint64_t> total_lateness_us_{0};
};

}  // namespace detail

class Executor {
 public:
  virtual ~Executor() = default;

  /// Runs every task to completion before returning, in any order, possibly
  /// concurrently. Tasks must be independent and must not throw (the session
  /// wraps its work in the no-throw boundary before submitting). Safe to
  /// call from within a task running on this executor (nested batches make
  /// progress on the calling thread). The caller participates in its own
  /// batch regardless of priority; `options` governs how idle workers pick
  /// it against other queued work.
  virtual void run(std::vector<std::function<void()>> tasks, SubmitOptions options) = 0;

  /// Enqueues the tasks and returns immediately; completion is observable
  /// only through the tasks' own side effects (the async batch surface
  /// counts landed slots). A serial executor has no background thread, so
  /// its submit degenerates to inline execution.
  virtual void submit(std::vector<std::function<void()>> tasks, SubmitOptions options) = 0;

  // Default-options conveniences (normal priority, no deadline).
  void run(std::vector<std::function<void()>> tasks) { run(std::move(tasks), {}); }
  void submit(std::vector<std::function<void()>> tasks) { submit(std::move(tasks), {}); }

  [[nodiscard]] virtual std::size_t workers() const noexcept = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Deadline-miss telemetry over every task this executor has completed.
  [[nodiscard]] virtual ExecutorStats stats() const noexcept = 0;
};

/// Runs tasks inline on the calling thread, in submission order. With no
/// queue there is nothing to reorder, so SubmitOptions are accepted and
/// ignored.
class SerialExecutor final : public Executor {
 public:
  using Executor::run;
  using Executor::submit;
  void run(std::vector<std::function<void()>> tasks, SubmitOptions options) override;
  void submit(std::vector<std::function<void()>> tasks, SubmitOptions options) override;
  [[nodiscard]] std::size_t workers() const noexcept override { return 1; }
  [[nodiscard]] std::string name() const override { return "serial"; }
  [[nodiscard]] ExecutorStats stats() const noexcept override { return recorder_.snapshot(); }

 private:
  detail::ExecutorStatsRecorder recorder_;
};

/// Persistent worker threads self-scheduling over queued batches. run()
/// blocks until its whole batch has completed (the caller helps execute it);
/// submit() is fire-and-forget; concurrent batches from different threads
/// interleave safely. Idle workers always claim from the best queued batch
/// (band — priority, top-level over nested fan-out — then EDF, then FIFO).
/// The destructor drains every queued batch first.
class ThreadPoolExecutor final : public Executor {
 public:
  /// `workers == 0` uses the hardware concurrency (at least one thread).
  explicit ThreadPoolExecutor(std::size_t workers = 0);
  ~ThreadPoolExecutor() override;

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  using Executor::run;
  using Executor::submit;
  void run(std::vector<std::function<void()>> tasks, SubmitOptions options) override;
  void submit(std::vector<std::function<void()>> tasks, SubmitOptions options) override;
  [[nodiscard]] std::size_t workers() const noexcept override { return threads_.size(); }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] ExecutorStats stats() const noexcept override { return recorder_.snapshot(); }

 private:
  /// One enqueued batch. Threads claim task indexes through `cursor`
  /// (fetch_add) — the self-scheduling loop — and the last finisher
  /// signals `done`. Scheduling rank (band, deadline, seq) is fixed at
  /// enqueue time.
  struct TaskBatch {
    TaskBatch(std::vector<std::function<void()>> work, SubmitOptions options, bool nested)
        : tasks(std::move(work)),
          remaining(tasks.size()),
          priority(options.priority),
          band(static_cast<int>(options.priority) * 2 + (nested ? 0 : 1)) {
      if (options.deadline) deadline = std::chrono::steady_clock::now() + *options.deadline;
    }
    std::vector<std::function<void()>> tasks;
    std::atomic<std::size_t> cursor{0};     ///< next unclaimed task index
    std::atomic<std::size_t> remaining;     ///< tasks not yet finished
    std::mutex mutex;                       ///< guards finished, for run()'s wait
    std::condition_variable done;
    bool finished = false;

    Priority priority = Priority::kNormal;
    /// Scheduling band: each priority splits into a top-level sub-band and,
    /// below it, a nested sub-band for fan-out run()/submit() issued from
    /// inside a pool task (e.g. compare's per-order jobs). A nested batch
    /// already owns its caller as a helper; ranking it under independent
    /// top-level batches of the same priority stops a wide fan-out from
    /// absorbing every worker and starving later small requests — the
    /// priority inversion the pipelined serve path exposed. Explicit
    /// priorities still dominate: nested kHigh outranks top-level kNormal.
    int band = 0;
    std::optional<std::chrono::steady_clock::time_point> deadline;  ///< absolute, EDF key
    std::uint64_t seq = 0;  ///< FIFO tie-break within (band, deadline)
    /// Owning executor's telemetry sink; every finished task records its
    /// completion (and lateness against `deadline`) here.
    detail::ExecutorStatsRecorder* stats = nullptr;
  };

  /// Strict weak order: higher band first (priority, top-level over nested
  /// within it), then earliest deadline (none sorts last), then submission
  /// order — the queue's multiset comparator.
  struct BatchOrder {
    bool operator()(const std::shared_ptr<TaskBatch>& a,
                    const std::shared_ptr<TaskBatch>& b) const noexcept;
  };

  /// Assigns the FIFO tie-break sequence under the queue lock and inserts.
  void enqueue(std::shared_ptr<TaskBatch> batch);
  /// Claims and runs tasks from `batch` until its cursor is exhausted.
  /// run()'s caller uses this: it must drive its own batch to completion.
  static void help(TaskBatch& batch);
  /// Worker variant of help(): additionally yields between tasks when a
  /// strictly higher-band batch arrives in the queue, so a high-priority
  /// submission — or a top-level request behind a nested fan-out — overtakes
  /// an in-flight lower band at task granularity (the abandoned batch stays
  /// queued and is resumed afterwards).
  void help_until_preempted(TaskBatch& batch);
  /// Marks one task finished; the last one signals completion.
  static void finish_one(TaskBatch& batch);
  void worker_loop();
  /// Recomputes top_queued_band_ from the queue head; call with mutex_.
  void refresh_top_band();

  std::vector<std::thread> threads_;
  std::mutex mutex_;                 ///< guards queue_, stop_ and next_seq_
  std::condition_variable work_cv_;  ///< signals queued work / shutdown
  /// Best batch first; fully claimed batches are lazily retired by workers.
  std::multiset<std::shared_ptr<TaskBatch>, BatchOrder> queue_;
  /// Band of the queue's best batch (-1 when empty) — the relaxed hint
  /// workers poll between tasks to detect band preemption without a lock.
  std::atomic<int> top_queued_band_{-1};
  std::uint64_t next_seq_ = 0;
  bool stop_ = false;
  detail::ExecutorStatsRecorder recorder_;
};

/// Policy by worker count: `jobs <= 1` is the serial executor, anything
/// above a `ThreadPoolExecutor{jobs}` — the CLI's `--jobs N` in one place.
[[nodiscard]] std::shared_ptr<Executor> make_executor(std::size_t jobs);

}  // namespace spivar::api
