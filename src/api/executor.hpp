// Execution policy for the session's batch surface.
//
// Every batch entry point (simulate_batch, explore_batch, compare and the
// submit_* streaming variants) splits its work into independent tasks and
// hands them to the session's Executor. Tasks are deterministic by seed and
// write to disjoint result slots, so the outcome is bit-identical whether
// they run serially or across a pool — parallelism is purely a wall-clock
// decision, asserted by the tests.
//
//   api::Session fast{api::make_executor(4)};   // thread pool, 4 workers
//   api::Session exact;                         // serial (the default)
//
// The pool is *self-scheduling*: a batch is one queue node with an atomic
// cursor, and every participating thread claims the next task index with a
// single fetch_add — no per-task queue traffic, and a skewed batch (one
// giant task next to many small ones) never serializes behind a static
// partition. The thread calling run() participates in its own batch, which
// also makes nested dispatch (a compare slot fanning its strategy jobs onto
// the same pool) deadlock-free by construction.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace spivar::api {

class Executor {
 public:
  virtual ~Executor() = default;

  /// Runs every task to completion before returning, in any order, possibly
  /// concurrently. Tasks must be independent and must not throw (the session
  /// wraps its work in the no-throw boundary before submitting). Safe to
  /// call from within a task running on this executor (nested batches make
  /// progress on the calling thread).
  virtual void run(std::vector<std::function<void()>> tasks) = 0;

  /// Enqueues the tasks and returns immediately; completion is observable
  /// only through the tasks' own side effects (the async batch surface
  /// counts landed slots). A serial executor has no background thread, so
  /// its submit degenerates to inline execution.
  virtual void submit(std::vector<std::function<void()>> tasks) = 0;

  [[nodiscard]] virtual std::size_t workers() const noexcept = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Runs tasks inline on the calling thread, in submission order.
class SerialExecutor final : public Executor {
 public:
  void run(std::vector<std::function<void()>> tasks) override;
  void submit(std::vector<std::function<void()>> tasks) override;
  [[nodiscard]] std::size_t workers() const noexcept override { return 1; }
  [[nodiscard]] std::string name() const override { return "serial"; }
};

/// Persistent worker threads self-scheduling over queued batches. run()
/// blocks until its whole batch has completed (the caller helps execute it);
/// submit() is fire-and-forget; concurrent batches from different threads
/// interleave safely. The destructor drains every queued batch first.
class ThreadPoolExecutor final : public Executor {
 public:
  /// `workers == 0` uses the hardware concurrency (at least one thread).
  explicit ThreadPoolExecutor(std::size_t workers = 0);
  ~ThreadPoolExecutor() override;

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  void run(std::vector<std::function<void()>> tasks) override;
  void submit(std::vector<std::function<void()>> tasks) override;
  [[nodiscard]] std::size_t workers() const noexcept override { return threads_.size(); }
  [[nodiscard]] std::string name() const override;

 private:
  /// One enqueued batch. Threads claim task indexes through `cursor`
  /// (fetch_add) — the self-scheduling loop — and the last finisher
  /// signals `done`.
  struct TaskBatch {
    explicit TaskBatch(std::vector<std::function<void()>> work)
        : tasks(std::move(work)), remaining(tasks.size()) {}
    std::vector<std::function<void()>> tasks;
    std::atomic<std::size_t> cursor{0};     ///< next unclaimed task index
    std::atomic<std::size_t> remaining;     ///< tasks not yet finished
    std::mutex mutex;                       ///< guards finished, for run()'s wait
    std::condition_variable done;
    bool finished = false;
  };

  void enqueue(std::shared_ptr<TaskBatch> batch);
  /// Claims and runs tasks from `batch` until its cursor is exhausted.
  static void help(TaskBatch& batch);
  /// Marks one task finished; the last one signals completion.
  static void finish_one(TaskBatch& batch);
  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex mutex_;                 ///< guards queue_ and stop_
  std::condition_variable work_cv_;  ///< signals queued work / shutdown
  std::deque<std::shared_ptr<TaskBatch>> queue_;
  bool stop_ = false;
};

/// Policy by worker count: `jobs <= 1` is the serial executor, anything
/// above a `ThreadPoolExecutor{jobs}` — the CLI's `--jobs N` in one place.
[[nodiscard]] std::shared_ptr<Executor> make_executor(std::size_t jobs);

}  // namespace spivar::api
