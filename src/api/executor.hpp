// Execution policy for the session's batch surface.
//
// Every batch entry point (simulate_batch, explore_batch, compare) splits
// its work into independent tasks and hands them to the session's Executor.
// Tasks are deterministic by seed and write to disjoint result slots, so the
// outcome is bit-identical whether they run serially or across a pool —
// parallelism is purely a wall-clock decision, asserted by the tests.
//
//   api::Session fast{api::make_executor(4)};   // thread pool, 4 workers
//   api::Session exact;                         // serial (the default)
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace spivar::api {

class Executor {
 public:
  virtual ~Executor() = default;

  /// Runs every task to completion before returning, in any order, possibly
  /// concurrently. Tasks must be independent and must not throw (the session
  /// wraps its work in the no-throw boundary before submitting).
  virtual void run(std::vector<std::function<void()>> tasks) = 0;

  [[nodiscard]] virtual std::size_t workers() const noexcept = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Runs tasks inline on the calling thread, in submission order.
class SerialExecutor final : public Executor {
 public:
  void run(std::vector<std::function<void()>> tasks) override;
  [[nodiscard]] std::size_t workers() const noexcept override { return 1; }
  [[nodiscard]] std::string name() const override { return "serial"; }
};

/// Persistent worker threads draining a shared queue. run() blocks the
/// calling thread until its whole batch has completed; concurrent run()
/// calls from different threads interleave safely.
class ThreadPoolExecutor final : public Executor {
 public:
  /// `workers == 0` uses the hardware concurrency (at least one thread).
  explicit ThreadPoolExecutor(std::size_t workers = 0);
  ~ThreadPoolExecutor() override;

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  void run(std::vector<std::function<void()>> tasks) override;
  [[nodiscard]] std::size_t workers() const noexcept override { return threads_.size(); }
  [[nodiscard]] std::string name() const override;

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex mutex_;                 ///< guards queue_ and stop_
  std::condition_variable work_cv_;  ///< signals queued work / shutdown
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

/// Policy by worker count: `jobs <= 1` is the serial executor, anything
/// above a `ThreadPoolExecutor{jobs}` — the CLI's `--jobs N` in one place.
[[nodiscard]] std::shared_ptr<Executor> make_executor(std::size_t jobs);

}  // namespace spivar::api
