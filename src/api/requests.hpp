// Request structs for api::Session operations.
//
// Each request wraps the underlying subsystem's option type plus the handle
// of the session model it applies to, so one struct travels through single
// and batch entry points alike. AnyRequest is the v5 envelope: one variant
// over every request kind plus a target spec and per-slot scheduling
// options, so mixed-kind workloads travel through one entry point
// (Session::call / call_batch / submit) and one wire protocol (api/wire).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "api/executor.hpp"
#include "sim/options.hpp"
#include "support/ids.hpp"
#include "synth/explore.hpp"
#include "synth/from_model.hpp"
#include "synth/pareto.hpp"
#include "synth/strategies.hpp"

namespace spivar::obs {
class TraceContext;
}  // namespace spivar::obs

namespace spivar::api {

/// Handle to a model loaded into a Session. Handles are session-scoped and
/// stay valid until the model is unloaded.
struct SessionModelTag {};
using ModelId = support::Id<SessionModelTag>;

/// Which evaluation a request drives — part of the result-cache key, so two
/// request types with coincidentally equal fingerprints can never collide.
enum class RequestKind : std::uint8_t {
  kSimulate,
  kAnalyze,
  kExplore,
  kPareto,
  kCompare,
};

[[nodiscard]] constexpr const char* to_string(RequestKind kind) noexcept {
  switch (kind) {
    case RequestKind::kSimulate: return "simulate";
    case RequestKind::kAnalyze: return "analyze";
    case RequestKind::kExplore: return "explore";
    case RequestKind::kPareto: return "pareto";
    case RequestKind::kCompare: return "compare";
  }
  return "?";
}

/// Canonical name back to the kind; nullopt for unknown names (the wire
/// codec's frame-header dispatch).
[[nodiscard]] std::optional<RequestKind> parse_request_kind(std::string_view name);

struct SimulateRequest {
  ModelId model;
  sim::SimOptions options{};
  /// Render the ASCII activity timeline into SimulateResponse::timeline
  /// (forces trace recording).
  bool render_timeline = false;
};

/// Which analysis passes to run; all on by default.
struct AnalyzeRequest {
  ModelId model;
  bool deadlock = true;
  bool buffers = true;
  bool structure = true;
  bool timing = true;
  /// Timing: charge each process's worst reconfiguration latency once.
  bool include_reconfiguration = false;
};

struct ExploreRequest {
  ModelId model;
  synth::ExploreOptions options{};
  /// How model entities become synthesis elements. When absent, the model's
  /// registry default applies (curated builtins pick the granularity their
  /// library was calibrated for).
  std::optional<synth::ProblemOptions> problem;
  /// Implementation library override. When absent, the builtin's curated
  /// library is used, or a deterministic synthetic library derived from the
  /// model (process granularity) for models without one.
  std::optional<synth::ImplLibrary> library;
};

struct ParetoRequest {
  ModelId model;
  synth::ParetoOptions options{};
  std::optional<synth::ProblemOptions> problem;
  std::optional<synth::ImplLibrary> library;
};

/// Runs a subset of the five synthesis strategies (paper §5, Table 1) over
/// one model and ranks the outcomes — the Table 1 reproduction as one call.
struct CompareRequest {
  ModelId model;
  /// Strategy subset, in presentation order; empty runs all five.
  std::vector<synth::StrategyKind> strategies;
  synth::ExploreOptions options{};
  /// Order-sensitive baselines (serialized, incremental): try every
  /// application order up to `max_orders` and keep the best outcome per
  /// strategy (the spread is reported); identity order only when false.
  bool all_orders = false;
  /// Permutation cap when `all_orders` (orders grow factorially).
  std::size_t max_orders = 24;
  /// Ranking objective chain for the system rows, applied lexicographically
  /// after the feasibility split. Empty ranks by total cost only (Table 1's
  /// classic ordering, stable on ties); e.g. {kTotalCost,
  /// kWorstUtilization, kDesignTime} breaks cost ties by processor headroom,
  /// then design time.
  std::vector<synth::RankObjective> objectives;
  std::optional<synth::ProblemOptions> problem;
  std::optional<synth::ImplLibrary> library;
};

// --- canonical request fingerprints ------------------------------------------
//
// 64-bit digests of every outcome-relevant field *except* the model handle
// (the cache key carries the snapshot identity separately). Canonical where
// semantics allow: duplicate compare strategies collapse, library elements
// hash in name order; order stays significant where it changes the response
// (objective chains, strategy presentation order). Implemented in cache.cpp.

[[nodiscard]] std::uint64_t fingerprint(const SimulateRequest& request);
[[nodiscard]] std::uint64_t fingerprint(const AnalyzeRequest& request);
[[nodiscard]] std::uint64_t fingerprint(const ExploreRequest& request);
[[nodiscard]] std::uint64_t fingerprint(const ParetoRequest& request);
[[nodiscard]] std::uint64_t fingerprint(const CompareRequest& request);

/// The evaluation a request type drives (the cache key's kind column).
[[nodiscard]] constexpr RequestKind kind_of(const SimulateRequest&) noexcept {
  return RequestKind::kSimulate;
}
[[nodiscard]] constexpr RequestKind kind_of(const AnalyzeRequest&) noexcept {
  return RequestKind::kAnalyze;
}
[[nodiscard]] constexpr RequestKind kind_of(const ExploreRequest&) noexcept {
  return RequestKind::kExplore;
}
[[nodiscard]] constexpr RequestKind kind_of(const ParetoRequest&) noexcept {
  return RequestKind::kPareto;
}
[[nodiscard]] constexpr RequestKind kind_of(const CompareRequest&) noexcept {
  return RequestKind::kCompare;
}

// --- the v5 envelope ---------------------------------------------------------

/// One alternative per evaluation kind — the payload of AnyRequest.
using RequestPayload =
    std::variant<SimulateRequest, AnalyzeRequest, ExploreRequest, ParetoRequest, CompareRequest>;

/// The unified request envelope: any evaluation kind, an optional target
/// spec, and per-slot scheduling options — the one shape Session::call /
/// call_batch / submit and the wire protocol speak.
struct AnyRequest {
  RequestPayload payload;

  /// Optional model spec (builtin name or .spit path) resolved at dispatch
  /// through the session's tombstone-aware target cache; when set it
  /// overrides the payload's model handle. This is how wire clients name
  /// models without ever holding store handles.
  std::string target;
  /// `--opt key=value` assignments applied when `target` names a builtin
  /// (same rules as SpecCache::resolve; rejected for non-builtin targets).
  std::vector<std::string> target_options;

  /// Per-slot scheduling: call_batch and submit honor priority and deadline
  /// for this request's slot (EDF within a priority band, see SubmitOptions).
  SubmitOptions options;

  /// Observability context minted at the wire/session boundary (see
  /// obs/trace.hpp). Session-local: never serialized by the wire codec and
  /// never part of the request fingerprint — two requests differing only in
  /// trace identity are the same cache entry. Null = untraced.
  std::shared_ptr<obs::TraceContext> trace;
};

/// The payload's evaluation kind / canonical fingerprint / model handle —
/// visitors over the variant, so envelope code never switch-cases by hand.
[[nodiscard]] RequestKind kind_of(const AnyRequest& request) noexcept;
[[nodiscard]] std::uint64_t fingerprint(const AnyRequest& request);
[[nodiscard]] ModelId model_of(const RequestPayload& payload) noexcept;
/// Points the payload at `model` (what target resolution writes back).
void set_model(RequestPayload& payload, ModelId model) noexcept;

}  // namespace spivar::api
