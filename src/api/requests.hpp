// Request structs for api::Session operations.
//
// Each request wraps the underlying subsystem's option type plus the handle
// of the session model it applies to, so one struct travels through single
// and batch entry points alike.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/options.hpp"
#include "support/ids.hpp"
#include "synth/explore.hpp"
#include "synth/from_model.hpp"
#include "synth/pareto.hpp"
#include "synth/strategies.hpp"

namespace spivar::api {

/// Handle to a model loaded into a Session. Handles are session-scoped and
/// stay valid until the model is unloaded.
struct SessionModelTag {};
using ModelId = support::Id<SessionModelTag>;

struct SimulateRequest {
  ModelId model;
  sim::SimOptions options{};
  /// Render the ASCII activity timeline into SimulateResponse::timeline
  /// (forces trace recording).
  bool render_timeline = false;
};

/// Which analysis passes to run; all on by default.
struct AnalyzeRequest {
  ModelId model;
  bool deadlock = true;
  bool buffers = true;
  bool structure = true;
  bool timing = true;
  /// Timing: charge each process's worst reconfiguration latency once.
  bool include_reconfiguration = false;
};

struct ExploreRequest {
  ModelId model;
  synth::ExploreOptions options{};
  /// How model entities become synthesis elements. When absent, the model's
  /// registry default applies (curated builtins pick the granularity their
  /// library was calibrated for).
  std::optional<synth::ProblemOptions> problem;
  /// Implementation library override. When absent, the builtin's curated
  /// library is used, or a deterministic synthetic library derived from the
  /// model (process granularity) for models without one.
  std::optional<synth::ImplLibrary> library;
};

struct ParetoRequest {
  ModelId model;
  synth::ParetoOptions options{};
  std::optional<synth::ProblemOptions> problem;
  std::optional<synth::ImplLibrary> library;
};

/// Runs a subset of the five synthesis strategies (paper §5, Table 1) over
/// one model and ranks the outcomes — the Table 1 reproduction as one call.
struct CompareRequest {
  ModelId model;
  /// Strategy subset, in presentation order; empty runs all five.
  std::vector<synth::StrategyKind> strategies;
  synth::ExploreOptions options{};
  /// Order-sensitive baselines (serialized, incremental): try every
  /// application order up to `max_orders` and keep the best outcome per
  /// strategy (the spread is reported); identity order only when false.
  bool all_orders = false;
  /// Permutation cap when `all_orders` (orders grow factorially).
  std::size_t max_orders = 24;
  /// Ranking objective chain for the system rows, applied lexicographically
  /// after the feasibility split. Empty ranks by total cost only (Table 1's
  /// classic ordering, stable on ties); e.g. {kTotalCost,
  /// kWorstUtilization, kDesignTime} breaks cost ties by processor headroom,
  /// then design time.
  std::vector<synth::RankObjective> objectives;
  std::optional<synth::ProblemOptions> problem;
  std::optional<synth::ImplLibrary> library;
};

}  // namespace spivar::api
