// detail::eval_compare — the strategy-comparison evaluation (paper §5,
// Table 1), running against one immutable store snapshot.
//
// One call runs any subset of the five synthesis strategies over a model
// snapshot and returns the ranked outcome table. Independent synthesis
// yields one row per application (Table 1 rows 1-2); the order-sensitive
// baselines optionally sweep application orders, report the best outcome
// plus the cost spread, and expose the full per-order outcome list. System
// rows rank by the request's objective chain (total cost by default; worst
// utilization and design time as tie-breakers on demand). Every strategy
// run (and every order) is an independent, seed-deterministic job dispatched
// across the executor — which may be the same pool the compare itself runs
// on (the self-scheduling pool lets the calling thread drain its own jobs).
#include <algorithm>
#include <utility>

#include "api/detail.hpp"
#include "api/executor.hpp"
#include "api/store.hpp"

namespace spivar::api::detail {

namespace {

using synth::StrategyKind;

/// One strategy run: a (row, order) pair. Independent rows carry the single
/// application they synthesize; everything else runs on the shared problem
/// (empty `apps` — no per-job copy of the application vector).
struct Job {
  std::size_t row = 0;
  StrategyKind kind{};
  std::vector<synth::Application> apps;    ///< one-app slice, or empty = whole problem
  std::vector<std::size_t> order;          ///< identity when empty
};

/// Requested kinds in presentation order, deduplicated; all five when the
/// request leaves the subset empty.
std::vector<StrategyKind> requested_kinds(const CompareRequest& request) {
  std::vector<StrategyKind> kinds;
  const auto add = [&kinds](StrategyKind kind) {
    if (std::find(kinds.begin(), kinds.end(), kind) == kinds.end()) kinds.push_back(kind);
  };
  if (request.strategies.empty()) {
    for (StrategyKind kind : synth::kAllStrategies) add(kind);
  } else {
    for (StrategyKind kind : request.strategies) add(kind);
  }
  return kinds;
}

}  // namespace

Result<CompareResponse> eval_compare(const StoreEntry& entry, const CompareRequest& request,
                                     Executor& executor) {
  return guarded<CompareResponse>([&]() -> Result<CompareResponse> {
    const auto setup = resolve_setup(entry, request.problem, request.library);
    if (!problem_has_elements(setup->problem)) {
      return Result<CompareResponse>::failure(
          diag::kEmptyProblem, empty_problem_message(entry.model().graph().name()));
    }
    const std::vector<synth::Application>& apps = setup->problem.apps;

    CompareResponse response;
    response.model = entry.model().graph().name();
    response.problem = setup->problem.name;
    response.applications = apps.size();
    response.library_origin = setup->library_origin;
    response.objectives = request.objectives;

    // Row skeleton + job list. Rows keep the canonical presentation order;
    // jobs reference their row so parallel completion cannot reorder them.
    std::vector<Job> jobs;
    for (StrategyKind kind : requested_kinds(request)) {
      if (kind == StrategyKind::kIndependent) {
        for (const synth::Application& app : apps) {
          response.rows.push_back({.strategy = synth::to_string(kind), .scope = app.name});
          jobs.push_back({.row = response.rows.size() - 1, .kind = kind, .apps = {app}});
        }
        continue;
      }
      response.rows.push_back({.strategy = synth::to_string(kind), .scope = "system"});
      const std::size_t row = response.rows.size() - 1;
      const bool sweep = request.all_orders && synth::order_sensitive(kind) && apps.size() > 1;
      const auto orders = sweep ? synth::application_orders(apps.size(), request.max_orders)
                                : std::vector<std::vector<std::size_t>>{{}};
      for (const auto& order : orders) {
        jobs.push_back({.row = row, .kind = kind, .order = order});
      }
    }

    // Every job is independent and deterministic by seed — dispatch across
    // the executor, then aggregate per row in job order (so the serial and
    // parallel paths produce identical responses).
    struct Slot {
      std::optional<synth::StrategyOutcome> outcome;
      std::string error;
    };
    std::vector<Slot> slots(jobs.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      tasks.push_back([&slots, &jobs, &setup, &request, &apps, i] {
        try {
          const auto& job_apps = jobs[i].apps.empty() ? apps : jobs[i].apps;
          slots[i].outcome = synth::run_strategy(jobs[i].kind, setup->library, job_apps,
                                                 jobs[i].order, request.options);
        } catch (const std::exception& e) {
          slots[i].error = e.what();
        }
      });
    }
    executor.run(std::move(tasks));

    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (!slots[i].error.empty()) {
        return Result<CompareResponse>::failure(
            diag::kModelError, std::string{synth::to_string(jobs[i].kind)} + ": " + slots[i].error);
      }
      CompareResponse::Row& row = response.rows[jobs[i].row];
      synth::StrategyOutcome& outcome = *slots[i].outcome;
      row.decisions += outcome.decisions;
      row.evaluations += outcome.evaluations;
      if (synth::order_sensitive(jobs[i].kind)) {
        row.per_order.push_back({.order = jobs[i].order,
                                 .total = outcome.cost.total,
                                 .worst_utilization = outcome.cost.worst_utilization,
                                 .feasible = outcome.feasible,
                                 .decisions = outcome.decisions});
      }
      const bool first = row.outcome.strategy.empty();
      if (first) {
        row.orders_tried = 1;
        row.worst_total = outcome.cost.total;
        row.outcome = std::move(outcome);
        continue;
      }
      row.orders_tried += 1;
      row.worst_total = std::max(row.worst_total, outcome.cost.total);
      if (synth::better_outcome(outcome, row.outcome, request.objectives)) {
        row.outcome = std::move(outcome);
      }
    }

    for (std::size_t i = 0; i < response.rows.size(); ++i) {
      if (response.rows[i].system()) response.ranking.push_back(i);
    }
    std::stable_sort(response.ranking.begin(), response.ranking.end(),
                     [&response, &request](std::size_t a, std::size_t b) {
                       return synth::better_outcome(response.rows[a].outcome,
                                                    response.rows[b].outcome,
                                                    request.objectives);
                     });
    return Result<CompareResponse>::success(std::move(response));
  });
}

}  // namespace spivar::api::detail
