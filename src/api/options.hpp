// Typed per-model options for registry loading.
//
// Every builtin's option struct travels through one std::variant, so
// LoadBuiltinRequest stays a single type while the registry dispatches to
// the matching factory. std::monostate selects the model's defaults; a
// mismatched alternative (e.g. VideoOptions for "fig2") is a load failure,
// not a silent fallback. parse_builtin_options() turns the CLI's
// `--opt key=value` assignments into the right struct.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "api/result.hpp"
#include "models/emission_control.hpp"
#include "models/fig1.hpp"
#include "models/fig2.hpp"
#include "models/multistandard_tv.hpp"
#include "models/synthetic.hpp"
#include "models/video_system.hpp"

namespace spivar::api {

/// One alternative per builtin family; std::monostate = registry defaults.
using BuiltinOptions =
    std::variant<std::monostate, models::Fig1Options, models::Fig2Options, models::Fig3Options,
                 models::VideoOptions, models::TvOptions, models::EmissionOptions,
                 models::SyntheticSpec>;

/// Typed load request: `load_builtin({.name = "synthetic",
/// .options = models::SyntheticSpec{.variants = 4}})`.
struct LoadBuiltinRequest {
  std::string name;
  BuiltinOptions options{};
};

/// Builds the typed option struct for `builtin` from "key=value" assignments
/// (e.g. {"frames=100", "input_valve=false"}). Unknown keys and malformed
/// values come back as diagnostics listing what the model understands;
/// unassigned fields keep their defaults. Duration-valued keys carry an
/// `_ms` suffix and accept fractional milliseconds.
[[nodiscard]] Result<BuiltinOptions> parse_builtin_options(
    std::string_view builtin, const std::vector<std::string>& assignments);

/// The option keys `parse_builtin_options` understands for `builtin`
/// (empty for unknown names) — help text and error messages. Corpus
/// (`sweep/...`) names report the synthetic knob set.
[[nodiscard]] std::vector<std::string> builtin_option_keys(std::string_view builtin);

/// (key, default value) pairs for `builtin`, rendered in the same format the
/// parser accepts — the machine-readable listing behind `models --json`.
/// For corpus names the "defaults" are the knobs encoded in the name.
[[nodiscard]] std::vector<std::pair<std::string, std::string>> builtin_option_defaults(
    std::string_view builtin);

}  // namespace spivar::api
