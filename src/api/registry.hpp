// Built-in model registry.
//
// One factory for every example system shipped with the repository, so call
// sites (CLI, examples, tests, services) stop including per-model headers.
// Each entry knows how to construct the model, which implementation library
// calibrates its synthesis problem (curated where the paper provides one,
// derived deterministically otherwise), and the element granularity that
// library was built for.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "api/options.hpp"
#include "synth/from_model.hpp"
#include "synth/target.hpp"
#include "variant/model.hpp"

namespace spivar::api {

struct BuiltinModel {
  std::string name;
  std::string description;

  /// Constructs the model from a typed option struct; std::monostate picks
  /// the model's defaults, a mismatched alternative throws ModelError (the
  /// session converts it into diagnostics). Flat graphs (fig1, video_system)
  /// are wrapped into a VariantModel with zero interfaces so every builtin
  /// travels through one type.
  std::function<variant::VariantModel(const BuiltinOptions& options)> make;

  /// Curated implementation library, or nullptr when none exists — the
  /// session then derives a deterministic synthetic library covering every
  /// non-virtual process.
  std::function<synth::ImplLibrary(const variant::VariantModel& model)> library;

  /// Element granularity the library was calibrated for.
  synth::ProblemOptions problem{};
};

/// All built-in models, in presentation order (curated entries only — corpus
/// models are minted on demand by find_builtin and not listed here).
[[nodiscard]] const std::vector<BuiltinModel>& builtin_models();

/// Entry by name, or nullptr. Names under `sweep/` (corpus::kCorpusPrefix)
/// are parsed by the corpus name grammar and minted into a pointer-stable
/// side table on first use: every well-formed sweep point loads through the
/// same registry path as a curated builtin, with the library calibrated by
/// the name's cost profile. Malformed sweep names return nullptr.
[[nodiscard]] const BuiltinModel* find_builtin(std::string_view name);

[[nodiscard]] std::vector<std::string> builtin_names();

}  // namespace spivar::api
