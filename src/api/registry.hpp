// Built-in model registry.
//
// One factory for every example system shipped with the repository, so call
// sites (CLI, examples, tests, services) stop including per-model headers.
// Each entry knows how to construct the model, which implementation library
// calibrates its synthesis problem (curated where the paper provides one,
// derived deterministically otherwise), and the element granularity that
// library was built for.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "api/options.hpp"
#include "synth/from_model.hpp"
#include "synth/target.hpp"
#include "variant/model.hpp"

namespace spivar::api {

struct BuiltinModel {
  std::string name;
  std::string description;

  /// Constructs the model from a typed option struct; std::monostate picks
  /// the model's defaults, a mismatched alternative throws ModelError (the
  /// session converts it into diagnostics). Flat graphs (fig1, video_system)
  /// are wrapped into a VariantModel with zero interfaces so every builtin
  /// travels through one type.
  variant::VariantModel (*make)(const BuiltinOptions& options);

  /// Curated implementation library, or nullptr when none exists — the
  /// session then derives a deterministic synthetic library covering every
  /// non-virtual process.
  synth::ImplLibrary (*library)(const variant::VariantModel& model);

  /// Element granularity the library was calibrated for.
  synth::ProblemOptions problem{};
};

/// All built-in models, in presentation order.
[[nodiscard]] const std::vector<BuiltinModel>& builtin_models();

/// Entry by name, or nullptr.
[[nodiscard]] const BuiltinModel* find_builtin(std::string_view name);

[[nodiscard]] std::vector<std::string> builtin_names();

}  // namespace spivar::api
