// api::AdmissionController — lateness-driven overload shedding.
//
// The executor already records deadline-miss telemetry (ExecutorStats); this
// controller turns it into an admit/shed decision: a rolling window over
// stats deltas projects the deadline-miss rate the *next* request would see,
// and once that projection crosses a configured bound the controller sheds —
// the caller replies with a typed `api-overload` failure carrying a
// retry-after hint instead of queueing work it cannot finish on time.
//
// Shedding early is the whole point: a request admitted into an overloaded
// queue still burns a worker and still misses its deadline, so the tail only
// recovers when excess work is refused *before* submission. The controller
// is deliberately cheap (one mutex, a handful of integers) — it sits on
// every call/submit path.
//
//   api::AdmissionController control{{.max_miss_rate = 0.25}};
//   const auto decision = control.admit(executor.stats());
//   if (!decision.admitted) reply(overload_failure(decision));
//
// Thread-safe: admit() may race from every connection thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

#include "api/executor.hpp"

namespace spivar::api {

struct AdmissionConfig {
  /// Projected deadline-miss-rate bound; a projection at or above it sheds.
  /// >= 1.0 disables shedding entirely (a miss rate can never exceed 1).
  double max_miss_rate = 1.0;
  /// Rolling-window length: stats deltas older than this no longer shape
  /// the projection, so a burst that drained stops shedding within one
  /// window instead of haunting the cumulative average forever.
  std::chrono::milliseconds window{1000};
  /// Completions the window must contain before shedding is allowed — a
  /// cold start or idle period never sheds on one unlucky task.
  std::uint64_t min_samples = 16;
  /// The retry-after hint attached to shed replies.
  std::chrono::milliseconds retry_after{100};
};

/// One admit() verdict plus the evidence behind it.
struct AdmissionDecision {
  bool admitted = true;
  /// Hint for the shed reply: how long the client should back off. Zero
  /// when admitted.
  std::chrono::milliseconds retry_after{0};
  /// The windowed miss-rate projection the verdict was based on.
  double projected_miss_rate = 0.0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config = {});

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Verdict for one incoming request given the executor's current
  /// cumulative telemetry. The caller passes `Executor::stats()`; the
  /// controller differences consecutive snapshots itself.
  [[nodiscard]] AdmissionDecision admit(const ExecutorStats& stats);

  [[nodiscard]] const AdmissionConfig& config() const noexcept { return config_; }

  /// Monotonic verdict counters (for `executor-stats` breakdowns).
  [[nodiscard]] std::uint64_t admitted() const noexcept;
  [[nodiscard]] std::uint64_t rejected() const noexcept;

 private:
  AdmissionConfig config_;

  mutable std::mutex mutex_;
  /// Cumulative counters at the start of the current window.
  std::uint64_t base_completed_ = 0;
  std::uint64_t base_misses_ = 0;
  std::chrono::steady_clock::time_point window_start_{};
  bool primed_ = false;  ///< window_start_/base_* hold a real snapshot

  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace spivar::api
