// Internal helpers shared by the api translation units (store.cpp,
// session.cpp, compare.cpp). Not part of the public api surface — do not
// include from api.hpp or front ends.
#pragma once

#include <chrono>
#include <exception>
#include <memory>
#include <string>
#include <utility>

#include "api/cache.hpp"
#include "api/requests.hpp"
#include "api/responses.hpp"
#include "api/result.hpp"
#include "api/store.hpp"
#include "obs/trace.hpp"
#include "spi/textio.hpp"
#include "support/diagnostics.hpp"
#include "synth/target.hpp"

namespace spivar::api {
class Executor;
}  // namespace spivar::api

namespace spivar::api::detail {

/// Shared failure for operations given a handle the session doesn't hold.
template <typename T>
Result<T> unknown_model(ModelId id) {
  return Result<T>::failure(diag::kUnknownModel,
                            id.valid() ? "no model with handle #" + std::to_string(id.value())
                                       : "invalid (default-constructed) model handle");
}

/// Runs `fn` (returning Result<T>) with every exception converted into a
/// failed Result — the session's no-throw boundary.
template <typename T, typename Fn>
Result<T> guarded(Fn&& fn) {
  try {
    return fn();
  } catch (const spi::ParseError& e) {
    return Result<T>::failure(diag::kParseError, e.what());
  } catch (const support::ModelError& e) {
    return Result<T>::failure(diag::kModelError, e.what());
  } catch (const std::exception& e) {
    return Result<T>::failure(diag::kInternalError, e.what());
  }
}

/// Shared guard for the synthesis operations: a problem is explorable iff
/// some application contributes at least one element.
inline bool problem_has_elements(const synth::SynthesisProblem& problem) {
  for (const synth::Application& app : problem.apps) {
    if (!app.elements.empty()) return true;
  }
  return false;
}

inline std::string empty_problem_message(const std::string& model_name) {
  return "model '" + model_name + "' yields no synthesis elements (only virtual processes?)";
}

// --- snapshot evaluation seam ------------------------------------------------
//
// The whole pipeline evaluates against immutable StoreEntry snapshots, never
// against a Session: batch tasks capture a snapshot (keeping the model alive
// across unloads and session moves) and call these.

[[nodiscard]] Result<SimulateResponse> eval_simulate(const StoreEntry& entry,
                                                     const SimulateRequest& request);
[[nodiscard]] Result<ExploreResponse> eval_explore(const StoreEntry& entry,
                                                   const ExploreRequest& request);
[[nodiscard]] Result<ParetoResponse> eval_pareto(const StoreEntry& entry,
                                                 const ParetoRequest& request);
[[nodiscard]] Result<AnalyzeResponse> eval_analyze(const StoreEntry& entry,
                                                   const AnalyzeRequest& request);
/// Compare fans its strategy jobs across `executor` (nested dispatch is safe
/// on the self-scheduling pool).
[[nodiscard]] Result<CompareResponse> eval_compare(const StoreEntry& entry,
                                                   const CompareRequest& request,
                                                   Executor& executor);

// --- result-cache seam -------------------------------------------------------

/// Fronts one eval with the store's result cache: a hit returns a copy of
/// the memoized Result (bit-identical to a cold eval, results are
/// deterministic per (snapshot, request)); a miss evaluates and memoizes,
/// charging the entry its measured evaluation time — the weight the cache's
/// cost-aware eviction protects. Null cache degrades to a plain eval. The
/// key's kind and fingerprint both derive from `request`, so the typed find
/// can never alias across response types.
template <typename Response, typename Request, typename Eval>
Result<Response> with_cache(const std::shared_ptr<ResultCache>& cache, const StoreEntry& entry,
                            const Request& request, Eval&& eval) {
  if (!cache) {
    obs::ScopedSpan span{obs::SpanKind::kEval};
    return eval(entry, request);
  }
  // The content fingerprint is the restart-stable half of the key: it routes
  // the persistent tier and costs nothing here (memoized per entry, and the
  // store already computed it to describe the model).
  const ResultCache::Key key{.model = entry.id().value(),
                             .generation = entry.generation(),
                             .kind = kind_of(request),
                             .fingerprint = fingerprint(request),
                             .content = entry.content_fingerprint()};
  {
    obs::ScopedSpan probe{obs::SpanKind::kCacheProbe};
    if (const auto hit = cache->find<Response>(key)) return *hit;
  }
  const auto started = std::chrono::steady_clock::now();
  Result<Response> result = eval(entry, request);
  const auto ended = std::chrono::steady_clock::now();
  if (obs::TraceContext* trace = obs::current_trace()) {
    // Reuse the cost clock readings: the eval span costs no extra clock reads.
    trace->add_span(obs::SpanKind::kEval, started, ended);
  }
  const auto cost_us = std::chrono::duration_cast<std::chrono::microseconds>(ended - started).count();
  cache->insert(key, result, static_cast<std::uint64_t>(cost_us));
  return result;
}

}  // namespace spivar::api::detail
