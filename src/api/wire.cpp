#include "api/wire.hpp"

#include <charconv>
#include <cstdlib>
#include <istream>
#include <limits>
#include <utility>
#include <variant>

namespace spivar::api::wire {

namespace {

// --- writing primitives ------------------------------------------------------

std::string fmt_u64(std::uint64_t value) { return std::to_string(value); }
std::string fmt_i64(std::int64_t value) { return std::to_string(value); }

/// Shortest decimal that parses back to the same IEEE double — the
/// bit-identical transport for costs, utilizations and rates.
std::string fmt_f64(double value) {
  char buffer[64];
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return ec == std::errc{} ? std::string(buffer, end) : std::string{"0"};
}

const char* fmt_bool(bool value) { return value ? "true" : "false"; }

// --- frame splitting / tokens ------------------------------------------------

/// Internal decode failure; converted into a diag::kWireError Result at the
/// decoder boundary, message prefixed with the 1-based line number.
struct FrameError {
  std::size_t line;
  std::string message;
};

[[noreturn]] void fail(std::size_t line, std::string message) {
  throw FrameError{line, std::move(message)};
}

struct Token {
  std::string text;
  bool quoted = false;
};

struct Line {
  std::size_t number = 0;
  std::vector<Token> tokens;

  [[nodiscard]] const std::string& key() const { return tokens.front().text; }
};

std::vector<Token> tokenize(std::string_view text, std::size_t number) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] == ' ') {
      ++i;
      continue;
    }
    if (text[i] == '"') {
      std::string decoded;
      ++i;
      for (;; ++i) {
        if (i >= text.size()) fail(number, "unterminated quoted string");
        const char c = text[i];
        if (c == '"') break;
        if (c != '\\') {
          decoded.push_back(c);
          continue;
        }
        if (++i >= text.size()) fail(number, "dangling escape in quoted string");
        switch (text[i]) {
          case '\\': decoded.push_back('\\'); break;
          case '"': decoded.push_back('"'); break;
          case 'n': decoded.push_back('\n'); break;
          case 'r': decoded.push_back('\r'); break;
          case 't': decoded.push_back('\t'); break;
          default: fail(number, std::string{"unknown escape '\\"} + text[i] + "'");
        }
      }
      ++i;  // closing quote
      tokens.push_back({std::move(decoded), true});
      continue;
    }
    const std::size_t start = i;
    while (i < text.size() && text[i] != ' ') ++i;
    tokens.push_back({std::string{text.substr(start, i - start)}, false});
  }
  return tokens;
}

/// Non-empty lines of `frame`, tokenized, with their 1-based numbers.
std::vector<Line> split_frame(std::string_view frame) {
  std::vector<Line> lines;
  std::size_t number = 0;
  std::size_t begin = 0;
  while (begin <= frame.size()) {
    const std::size_t nl = frame.find('\n', begin);
    std::string_view raw =
        frame.substr(begin, nl == std::string_view::npos ? std::string_view::npos : nl - begin);
    begin = nl == std::string_view::npos ? frame.size() + 1 : nl + 1;
    ++number;
    if (!raw.empty() && raw.back() == '\r') raw.remove_suffix(1);
    if (raw.empty()) continue;
    Line line{.number = number, .tokens = tokenize(raw, number)};
    if (line.tokens.empty()) continue;  // whitespace-only lines are blank
    lines.push_back(std::move(line));
  }
  return lines;
}

/// Sequential reader over one line's tokens (past the key) with typed,
/// line-number-carrying accessors.
class Args {
 public:
  explicit Args(const Line& line, std::size_t first = 1) : line_(line), next_(first) {}

  [[nodiscard]] bool done() const noexcept { return next_ >= line_.tokens.size(); }
  [[nodiscard]] std::size_t number() const noexcept { return line_.number; }

  const Token& take(const char* what) {
    if (done()) fail(line_.number, std::string{"missing "} + what + " after '" + line_.key() + "'");
    return line_.tokens[next_++];
  }

  std::string str(const char* what) {
    const Token& token = take(what);
    if (!token.quoted) fail(line_.number, std::string{what} + " must be a quoted string");
    return token.text;
  }

  std::string word(const char* what) {
    const Token& token = take(what);
    if (token.quoted) fail(line_.number, std::string{what} + " must be unquoted");
    return token.text;
  }

  std::uint64_t u64(const char* what) {
    const std::string text = word(what);
    std::uint64_t value = 0;
    const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || end != text.data() + text.size()) {
      fail(line_.number, std::string{"invalid "} + what + " '" + text + "'");
    }
    return value;
  }

  std::uint32_t u32(const char* what) {
    const std::uint64_t value = u64(what);
    if (value > std::numeric_limits<std::uint32_t>::max()) {
      fail(line_.number, std::string{what} + " out of range: " + std::to_string(value));
    }
    return static_cast<std::uint32_t>(value);
  }

  std::int64_t i64(const char* what) {
    const std::string text = word(what);
    std::int64_t value = 0;
    const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || end != text.data() + text.size()) {
      fail(line_.number, std::string{"invalid "} + what + " '" + text + "'");
    }
    return value;
  }

  double f64(const char* what) {
    const std::string text = word(what);
    double value = 0.0;
    const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || end != text.data() + text.size()) {
      fail(line_.number, std::string{"invalid "} + what + " '" + text + "'");
    }
    return value;
  }

  bool boolean(const char* what) {
    const std::string text = word(what);
    if (text == "true") return true;
    if (text == "false") return false;
    fail(line_.number, std::string{"invalid "} + what + " '" + text + "' (true|false)");
  }

  void finish() {
    if (!done()) {
      fail(line_.number, "unexpected trailing token '" + line_.tokens[next_].text + "' after '" +
                             line_.key() + "'");
    }
  }

 private:
  const Line& line_;
  std::size_t next_;
};

// --- small enum codecs -------------------------------------------------------

sim::Resolution parse_resolution(Args& args) {
  const std::string name = args.word("resolution");
  if (name == "lower") return sim::Resolution::kLowerBound;
  if (name == "upper") return sim::Resolution::kUpperBound;
  if (name == "random") return sim::Resolution::kRandom;
  fail(args.number(), "unknown resolution '" + name + "' (lower|upper|random)");
}

synth::ExploreEngine parse_engine(Args& args) {
  const std::string name = args.word("engine");
  if (name == "exhaustive") return synth::ExploreEngine::kExhaustive;
  if (name == "greedy") return synth::ExploreEngine::kGreedy;
  if (name == "annealing") return synth::ExploreEngine::kAnnealing;
  fail(args.number(), "unknown engine '" + name + "' (exhaustive|greedy|annealing)");
}

synth::Target parse_target_kind(Args& args) {
  const std::string name = args.word("target");
  if (name == "SW") return synth::Target::kSoftware;
  if (name == "HW") return synth::Target::kHardware;
  fail(args.number(), "unknown mapping target '" + name + "' (SW|HW)");
}

sim::TraceKind parse_trace_kind(Args& args) {
  const std::string name = args.word("trace kind");
  for (const auto kind : {sim::TraceKind::kFire, sim::TraceKind::kComplete,
                          sim::TraceKind::kReconfigure, sim::TraceKind::kSelect,
                          sim::TraceKind::kCancel, sim::TraceKind::kDrop}) {
    if (name == sim::to_string(kind)) return kind;
  }
  fail(args.number(), "unknown trace kind '" + name + "'");
}

analysis::FlowClass parse_flow_class(Args& args) {
  const std::string name = args.word("flow class");
  for (const auto flow :
       {analysis::FlowClass::kBalanced, analysis::FlowClass::kPossiblyUnbounded,
        analysis::FlowClass::kStarving, analysis::FlowClass::kSourceOnly,
        analysis::FlowClass::kSinkOnly, analysis::FlowClass::kRegister}) {
    if (name == analysis::to_string(flow)) return flow;
  }
  fail(args.number(), "unknown flow class '" + name + "'");
}

support::Severity parse_severity(Args& args) {
  const std::string name = args.word("severity");
  if (name == "note") return support::Severity::kNote;
  if (name == "warning") return support::Severity::kWarning;
  if (name == "error") return support::Severity::kError;
  fail(args.number(), "unknown severity '" + name + "' (note|warning|error)");
}

// --- comma lists -------------------------------------------------------------

template <typename T, typename Parse>
std::vector<T> parse_comma_list(Args& args, const char* what, Parse&& parse) {
  const std::string list = args.word(what);
  std::vector<T> values;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string name =
        list.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    const auto value = parse(name);
    if (!value) fail(args.number(), std::string{"unknown "} + what + " '" + name + "'");
    values.push_back(*value);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

template <typename T>
std::string comma_list(const std::vector<T>& values) {
  std::string out;
  for (const T& value : values) {
    if (!out.empty()) out.push_back(',');
    out += to_string(value);
  }
  return out;
}

// --- shared request sections -------------------------------------------------

void encode_explore_options(std::string& out, const synth::ExploreOptions& options) {
  out += "engine " + std::string{to_string(options.engine)} + "\n";
  out += "seed " + fmt_u64(options.seed) + "\n";
  out += "exhaustive-limit " + fmt_u64(options.exhaustive_limit) + "\n";
  out += "annealing-trials " + fmt_u64(options.annealing_trials_per_element) + "\n";
  out += "annealing-temperature " + fmt_f64(options.annealing_initial_temperature) + "\n";
  out += "infeasibility-penalty " + fmt_f64(options.infeasibility_penalty) + "\n";
}

bool decode_explore_options(const std::string& key, Args& args, synth::ExploreOptions& options) {
  if (key == "engine") {
    options.engine = parse_engine(args);
  } else if (key == "seed") {
    options.seed = args.u64("seed");
  } else if (key == "exhaustive-limit") {
    options.exhaustive_limit = args.u64("exhaustive-limit");
  } else if (key == "annealing-trials") {
    options.annealing_trials_per_element = args.u64("annealing-trials");
  } else if (key == "annealing-temperature") {
    options.annealing_initial_temperature = args.f64("annealing-temperature");
  } else if (key == "infeasibility-penalty") {
    options.infeasibility_penalty = args.f64("infeasibility-penalty");
  } else {
    return false;
  }
  return true;
}

void encode_overrides(std::string& out, const std::optional<synth::ProblemOptions>& problem,
                      const std::optional<synth::ImplLibrary>& library) {
  if (problem) {
    out += std::string{"problem "} +
           (problem->granularity == synth::ElementGranularity::kProcess ? "process" : "cluster") +
           " " + fmt_bool(problem->skip_virtual) + "\n";
  }
  if (library) {
    out += "library " + fmt_f64(library->processor_cost) + " " +
           fmt_f64(library->processor_budget) + "\n";
    for (const auto& [name, impl] : library->elements()) {
      out += "element " + quote(name) + " " + fmt_f64(impl.sw_load) + " " +
             fmt_i64(impl.sw_wcet.count()) + " " + fmt_f64(impl.hw_cost) + " " +
             fmt_i64(impl.hw_wcet.count()) + " " + fmt_bool(impl.can_sw) + " " +
             fmt_bool(impl.can_hw);
      if (impl.period) out += " " + fmt_i64(impl.period->count());
      out += "\n";
    }
  }
}

bool decode_overrides(const std::string& key, Args& args,
                      std::optional<synth::ProblemOptions>& problem,
                      std::optional<synth::ImplLibrary>& library) {
  if (key == "problem") {
    synth::ProblemOptions options;
    const std::string granularity = args.word("granularity");
    if (granularity == "process") {
      options.granularity = synth::ElementGranularity::kProcess;
    } else if (granularity == "cluster") {
      options.granularity = synth::ElementGranularity::kClusterAtomic;
    } else {
      fail(args.number(), "unknown granularity '" + granularity + "' (cluster|process)");
    }
    options.skip_virtual = args.boolean("skip-virtual");
    problem = options;
  } else if (key == "library") {
    synth::ImplLibrary lib;
    lib.processor_cost = args.f64("processor-cost");
    lib.processor_budget = args.f64("processor-budget");
    library = std::move(lib);
  } else if (key == "element") {
    if (!library) fail(args.number(), "'element' before 'library'");
    const std::string name = args.str("element name");
    synth::ElementImpl impl;
    impl.sw_load = args.f64("sw-load");
    impl.sw_wcet = support::Duration{args.i64("sw-wcet-us")};
    impl.hw_cost = args.f64("hw-cost");
    impl.hw_wcet = support::Duration{args.i64("hw-wcet-us")};
    impl.can_sw = args.boolean("can-sw");
    impl.can_hw = args.boolean("can-hw");
    if (!args.done()) impl.period = support::Duration{args.i64("period-us")};
    library->add(name, impl);
  } else {
    return false;
  }
  return true;
}

// --- request payload codecs --------------------------------------------------

void encode_payload(std::string& out, const SimulateRequest& request) {
  out += std::string{"resolution "} + to_string(request.options.resolution) + "\n";
  out += "seed " + fmt_u64(request.options.seed) + "\n";
  out += "max-time-us " + fmt_i64(request.options.max_time.count()) + "\n";
  out += "max-firings " + fmt_i64(request.options.max_total_firings) + "\n";
  out += std::string{"record-trace "} + fmt_bool(request.options.record_trace) + "\n";
  out += "trace-limit " + fmt_u64(request.options.trace_limit) + "\n";
  out += std::string{"render-timeline "} + fmt_bool(request.render_timeline) + "\n";
}

bool decode_payload(const std::string& key, Args& args, SimulateRequest& request) {
  if (key == "resolution") {
    request.options.resolution = parse_resolution(args);
  } else if (key == "seed") {
    request.options.seed = args.u64("seed");
  } else if (key == "max-time-us") {
    request.options.max_time = support::TimePoint{args.i64("max-time-us")};
  } else if (key == "max-firings") {
    request.options.max_total_firings = args.i64("max-firings");
  } else if (key == "record-trace") {
    request.options.record_trace = args.boolean("record-trace");
  } else if (key == "trace-limit") {
    request.options.trace_limit = args.u64("trace-limit");
  } else if (key == "render-timeline") {
    request.render_timeline = args.boolean("render-timeline");
  } else {
    return false;
  }
  return true;
}

void encode_payload(std::string& out, const AnalyzeRequest& request) {
  out += std::string{"passes "} + fmt_bool(request.deadlock) + " " + fmt_bool(request.buffers) +
         " " + fmt_bool(request.structure) + " " + fmt_bool(request.timing) + "\n";
  out += std::string{"include-reconfiguration "} + fmt_bool(request.include_reconfiguration) +
         "\n";
}

bool decode_payload(const std::string& key, Args& args, AnalyzeRequest& request) {
  if (key == "passes") {
    request.deadlock = args.boolean("deadlock");
    request.buffers = args.boolean("buffers");
    request.structure = args.boolean("structure");
    request.timing = args.boolean("timing");
  } else if (key == "include-reconfiguration") {
    request.include_reconfiguration = args.boolean("include-reconfiguration");
  } else {
    return false;
  }
  return true;
}

void encode_payload(std::string& out, const ExploreRequest& request) {
  encode_explore_options(out, request.options);
  encode_overrides(out, request.problem, request.library);
}

bool decode_payload(const std::string& key, Args& args, ExploreRequest& request) {
  return decode_explore_options(key, args, request.options) ||
         decode_overrides(key, args, request.problem, request.library);
}

void encode_payload(std::string& out, const ParetoRequest& request) {
  out += "exhaustive-limit " + fmt_u64(request.options.exhaustive_limit) + "\n";
  out += "samples " + fmt_u64(request.options.samples) + "\n";
  out += "seed " + fmt_u64(request.options.seed) + "\n";
  encode_overrides(out, request.problem, request.library);
}

bool decode_payload(const std::string& key, Args& args, ParetoRequest& request) {
  if (key == "exhaustive-limit") {
    request.options.exhaustive_limit = args.u64("exhaustive-limit");
  } else if (key == "samples") {
    request.options.samples = args.u64("samples");
  } else if (key == "seed") {
    request.options.seed = args.u64("seed");
  } else {
    return decode_overrides(key, args, request.problem, request.library);
  }
  return true;
}

void encode_payload(std::string& out, const CompareRequest& request) {
  if (!request.strategies.empty()) {
    out += "strategies " + comma_list(request.strategies) + "\n";
  }
  encode_explore_options(out, request.options);
  out += std::string{"all-orders "} + fmt_bool(request.all_orders) + "\n";
  out += "max-orders " + fmt_u64(request.max_orders) + "\n";
  if (!request.objectives.empty()) {
    out += "objectives " + comma_list(request.objectives) + "\n";
  }
  encode_overrides(out, request.problem, request.library);
}

bool decode_payload(const std::string& key, Args& args, CompareRequest& request) {
  if (key == "strategies") {
    request.strategies =
        parse_comma_list<synth::StrategyKind>(args, "strategy", synth::parse_strategy);
  } else if (key == "all-orders") {
    request.all_orders = args.boolean("all-orders");
  } else if (key == "max-orders") {
    request.max_orders = args.u64("max-orders");
  } else if (key == "objectives") {
    request.objectives =
        parse_comma_list<synth::RankObjective>(args, "objective", synth::parse_objective);
  } else {
    return decode_explore_options(key, args, request.options) ||
           decode_overrides(key, args, request.problem, request.library);
  }
  return true;
}

// --- response payload codecs -------------------------------------------------

void encode_mapping_line(std::string& out, const char* key, const synth::Mapping& mapping) {
  for (const auto& [element, target] : mapping.assignments()) {
    out += std::string{key} + " " + quote(element) + " " + to_string(target) + "\n";
  }
}

void encode_names(std::string& out, const char* key, const std::vector<std::string>& names) {
  out += key;
  for (const std::string& name : names) out += " " + quote(name);
  out += "\n";
}

std::vector<std::string> decode_names(Args& args, const char* what) {
  std::vector<std::string> names;
  while (!args.done()) names.push_back(args.str(what));
  return names;
}

void encode_cost(std::string& out, const char* key, const synth::CostBreakdown& cost) {
  out += std::string{key} + " " + fmt_f64(cost.processor_cost) + " " + fmt_f64(cost.asic_cost) +
         " " + fmt_f64(cost.total) + " " + fmt_bool(cost.feasible) + " " +
         fmt_f64(cost.worst_utilization) + " " + quote(cost.infeasibility) + "\n";
}

void decode_cost(Args& args, synth::CostBreakdown& cost) {
  cost.processor_cost = args.f64("processor-cost");
  cost.asic_cost = args.f64("asic-cost");
  cost.total = args.f64("total");
  cost.feasible = args.boolean("feasible");
  cost.worst_utilization = args.f64("worst-utilization");
  cost.infeasibility = args.str("infeasibility");
}

void encode_payload(std::string& out, const SimulateResponse& response) {
  out += "model " + quote(response.model) + "\n";
  const sim::SimResult& r = response.result;
  out += "end-time-us " + fmt_i64(r.end_time.count()) + "\n";
  out += "total-firings " + fmt_i64(r.total_firings) + "\n";
  out += std::string{"quiescent "} + fmt_bool(r.quiescent) + "\n";
  out += std::string{"hit-limit "} + fmt_bool(r.hit_limit) + "\n";
  for (const sim::ProcessStats& p : r.processes) {
    out += "process-stat " + fmt_i64(p.firings) + " " + fmt_i64(p.busy.count()) + " " +
           fmt_i64(p.reconfigurations) + " " + fmt_i64(p.reconfig_time.count()) + " " +
           fmt_i64(p.cancelled);
    for (const std::int64_t firings : p.mode_firings) out += " " + fmt_i64(firings);
    out += "\n";
  }
  for (const sim::ChannelStats& c : r.channels) {
    out += "channel-stat " + fmt_i64(c.produced) + " " + fmt_i64(c.consumed) + " " +
           fmt_i64(c.dropped) + " " + fmt_i64(c.occupancy) + " " + fmt_i64(c.max_occupancy) +
           "\n";
  }
  for (const auto& [id, stats] : r.interfaces) {
    out += "interface-stat " + fmt_u64(id.value()) + " " + fmt_i64(stats.selections) + " " +
           fmt_i64(stats.reconfigurations) + " " + fmt_i64(stats.reconfig_time.count()) + "\n";
  }
  for (const sim::ConstraintMeasurement& c : r.constraints) {
    out += "constraint " + quote(c.name) + " " + fmt_bool(c.satisfied) + " " +
           fmt_f64(c.observed) + " " + fmt_f64(c.bound) + " " + fmt_i64(c.samples) + "\n";
  }
  for (const sim::TraceEvent& e : r.trace.events()) {
    out += "trace-event " + fmt_i64(e.time.count()) + " " + to_string(e.kind) + " " +
           quote(e.subject) + " " + quote(e.detail) + "\n";
  }
  out += std::string{"trace-truncated "} + fmt_bool(r.trace.truncated()) + "\n";
  for (const SimulateResponse::ProcessRow& row : response.processes) {
    out += "process-row " + quote(row.name) + " " + fmt_i64(row.firings) + " " +
           fmt_i64(row.busy.count()) + " " + fmt_i64(row.reconfigurations) + "\n";
  }
  for (const SimulateResponse::ChannelRow& row : response.channels) {
    out += "channel-row " + quote(row.name) + " " + fmt_i64(row.produced) + " " +
           fmt_i64(row.consumed) + " " + fmt_i64(row.occupancy) + " " +
           fmt_i64(row.max_occupancy) + "\n";
  }
  out += "timeline " + quote(response.timeline) + "\n";
}

/// Decoder state for rebuilding a SimulateResponse's Trace (sim::Trace only
/// grows through record(); the flag-only truncation marker is reproduced by
/// recording one overflow past a tight limit).
struct TraceRebuild {
  std::vector<sim::TraceEvent> events;
  bool truncated = false;

  [[nodiscard]] sim::Trace build() const {
    sim::Trace trace{truncated ? events.size() : std::max<std::size_t>(events.size(), 100'000)};
    for (const sim::TraceEvent& e : events) trace.record(e.time, e.kind, e.subject, e.detail);
    if (truncated) trace.record(support::TimePoint{}, sim::TraceKind::kFire, "", "");
    return trace;
  }
};

bool decode_payload(const std::string& key, Args& args, SimulateResponse& response,
                    TraceRebuild& trace) {
  sim::SimResult& r = response.result;
  if (key == "model") {
    response.model = args.str("model");
  } else if (key == "end-time-us") {
    r.end_time = support::TimePoint{args.i64("end-time-us")};
  } else if (key == "total-firings") {
    r.total_firings = args.i64("total-firings");
  } else if (key == "quiescent") {
    r.quiescent = args.boolean("quiescent");
  } else if (key == "hit-limit") {
    r.hit_limit = args.boolean("hit-limit");
  } else if (key == "process-stat") {
    sim::ProcessStats stats;
    stats.firings = args.i64("firings");
    stats.busy = support::Duration{args.i64("busy-us")};
    stats.reconfigurations = args.i64("reconfigurations");
    stats.reconfig_time = support::Duration{args.i64("reconfig-us")};
    stats.cancelled = args.i64("cancelled");
    while (!args.done()) stats.mode_firings.push_back(args.i64("mode firings"));
    r.processes.push_back(std::move(stats));
  } else if (key == "channel-stat") {
    sim::ChannelStats stats;
    stats.produced = args.i64("produced");
    stats.consumed = args.i64("consumed");
    stats.dropped = args.i64("dropped");
    stats.occupancy = args.i64("occupancy");
    stats.max_occupancy = args.i64("max-occupancy");
    r.channels.push_back(stats);
  } else if (key == "interface-stat") {
    const auto id = support::InterfaceId{args.u32("interface id")};
    sim::InterfaceStats stats;
    stats.selections = args.i64("selections");
    stats.reconfigurations = args.i64("reconfigurations");
    stats.reconfig_time = support::Duration{args.i64("reconfig-us")};
    r.interfaces.emplace(id, stats);
  } else if (key == "constraint") {
    sim::ConstraintMeasurement c;
    c.name = args.str("constraint name");
    c.satisfied = args.boolean("satisfied");
    c.observed = args.f64("observed");
    c.bound = args.f64("bound");
    c.samples = args.i64("samples");
    r.constraints.push_back(std::move(c));
  } else if (key == "trace-event") {
    sim::TraceEvent e;
    e.time = support::TimePoint{args.i64("time-us")};
    e.kind = parse_trace_kind(args);
    e.subject = args.str("subject");
    e.detail = args.str("detail");
    trace.events.push_back(std::move(e));
  } else if (key == "trace-truncated") {
    trace.truncated = args.boolean("trace-truncated");
  } else if (key == "process-row") {
    SimulateResponse::ProcessRow row;
    row.name = args.str("process name");
    row.firings = args.i64("firings");
    row.busy = support::Duration{args.i64("busy-us")};
    row.reconfigurations = args.i64("reconfigurations");
    response.processes.push_back(std::move(row));
  } else if (key == "channel-row") {
    SimulateResponse::ChannelRow row;
    row.name = args.str("channel name");
    row.produced = args.i64("produced");
    row.consumed = args.i64("consumed");
    row.occupancy = args.i64("occupancy");
    row.max_occupancy = args.i64("max-occupancy");
    response.channels.push_back(std::move(row));
  } else if (key == "timeline") {
    response.timeline = args.str("timeline");
  } else {
    return false;
  }
  return true;
}

void encode_payload(std::string& out, const AnalyzeResponse& response) {
  out += "model " + quote(response.model) + "\n";
  out += "request " + fmt_u64(response.request.model.value()) + " " +
         fmt_bool(response.request.deadlock) + " " + fmt_bool(response.request.buffers) + " " +
         fmt_bool(response.request.structure) + " " + fmt_bool(response.request.timing) + " " +
         fmt_bool(response.request.include_reconfiguration) + "\n";
  for (const AnalyzeResponse::Deadlock& d : response.deadlocks) {
    out += "deadlock " + fmt_i64(d.initial_tokens) + " " + fmt_i64(d.required_tokens) + " " +
           quote(d.description);
    for (const std::string& name : d.cycle) out += " " + quote(name);
    out += "\n";
  }
  for (const analysis::ChannelFlow& flow : response.buffer_flows) {
    out += "buffer-flow " + fmt_u64(flow.channel.value()) + " " + quote(flow.name) + " " +
           to_string(flow.flow) + " " + fmt_f64(flow.max_inflow) + " " +
           fmt_f64(flow.min_drain) + "\n";
  }
  for (const analysis::LatencyCheck& check : response.latency_checks) {
    out += "latency-check " + quote(check.constraint) + " " +
           fmt_i64(check.path_latency.lo().count()) + " " +
           fmt_i64(check.path_latency.hi().count()) + " " + fmt_i64(check.bound.count()) + " " +
           fmt_bool(check.satisfiable) + " " + fmt_bool(check.guaranteed) + " " +
           fmt_i64(check.slack.count()) + "\n";
  }
  out += std::string{"structure "} + fmt_bool(response.structure.acyclic) + " " +
         fmt_u64(response.structure.components) + "\n";
  encode_names(out, "sources", response.structure.sources);
  encode_names(out, "sinks", response.structure.sinks);
  encode_names(out, "dead", response.structure.dead);
}

bool decode_payload(const std::string& key, Args& args, AnalyzeResponse& response) {
  if (key == "model") {
    response.model = args.str("model");
  } else if (key == "request") {
    response.request.model = ModelId{args.u32("model handle")};
    response.request.deadlock = args.boolean("deadlock");
    response.request.buffers = args.boolean("buffers");
    response.request.structure = args.boolean("structure");
    response.request.timing = args.boolean("timing");
    response.request.include_reconfiguration = args.boolean("include-reconfiguration");
  } else if (key == "deadlock") {
    AnalyzeResponse::Deadlock d;
    d.initial_tokens = args.i64("initial tokens");
    d.required_tokens = args.i64("required tokens");
    d.description = args.str("description");
    d.cycle = decode_names(args, "cycle process");
    response.deadlocks.push_back(std::move(d));
  } else if (key == "buffer-flow") {
    analysis::ChannelFlow flow;
    flow.channel = support::ChannelId{args.u32("channel id")};
    flow.name = args.str("channel name");
    flow.flow = parse_flow_class(args);
    flow.max_inflow = args.f64("max-inflow");
    flow.min_drain = args.f64("min-drain");
    response.buffer_flows.push_back(std::move(flow));
  } else if (key == "latency-check") {
    analysis::LatencyCheck check;
    check.constraint = args.str("constraint name");
    const auto lo = support::Duration{args.i64("lo-us")};
    const auto hi = support::Duration{args.i64("hi-us")};
    check.path_latency = support::DurationInterval{lo, hi};
    check.bound = support::Duration{args.i64("bound-us")};
    check.satisfiable = args.boolean("satisfiable");
    check.guaranteed = args.boolean("guaranteed");
    check.slack = support::Duration{args.i64("slack-us")};
    response.latency_checks.push_back(std::move(check));
  } else if (key == "structure") {
    response.structure.acyclic = args.boolean("acyclic");
    response.structure.components = args.u64("components");
  } else if (key == "sources") {
    response.structure.sources = decode_names(args, "source");
  } else if (key == "sinks") {
    response.structure.sinks = decode_names(args, "sink");
  } else if (key == "dead") {
    response.structure.dead = decode_names(args, "dead process");
  } else {
    return false;
  }
  return true;
}

void encode_payload(std::string& out, const ExploreResponse& response) {
  out += "model " + quote(response.model) + "\n";
  out += "problem " + quote(response.problem) + "\n";
  out += "applications " + fmt_u64(response.applications) + "\n";
  out += "elements " + fmt_u64(response.elements) + "\n";
  out += "library-origin " + quote(response.library_origin) + "\n";
  out += "engine " + quote(response.result.engine) + "\n";
  out += std::string{"found-feasible "} + fmt_bool(response.result.found_feasible) + "\n";
  out += "decisions " + fmt_i64(response.result.decisions) + "\n";
  out += "evaluations " + fmt_i64(response.result.evaluations) + "\n";
  encode_cost(out, "cost", response.result.cost);
  encode_names(out, "cost-software", response.result.cost.software);
  encode_names(out, "cost-hardware", response.result.cost.hardware);
  encode_mapping_line(out, "map", response.result.mapping);
}

bool decode_payload(const std::string& key, Args& args, ExploreResponse& response) {
  if (key == "model") {
    response.model = args.str("model");
  } else if (key == "problem") {
    response.problem = args.str("problem");
  } else if (key == "applications") {
    response.applications = args.u64("applications");
  } else if (key == "elements") {
    response.elements = args.u64("elements");
  } else if (key == "library-origin") {
    response.library_origin = args.str("library-origin");
  } else if (key == "engine") {
    response.result.engine = args.str("engine");
  } else if (key == "found-feasible") {
    response.result.found_feasible = args.boolean("found-feasible");
  } else if (key == "decisions") {
    response.result.decisions = args.i64("decisions");
  } else if (key == "evaluations") {
    response.result.evaluations = args.i64("evaluations");
  } else if (key == "cost") {
    decode_cost(args, response.result.cost);
  } else if (key == "cost-software") {
    response.result.cost.software = decode_names(args, "software element");
  } else if (key == "cost-hardware") {
    response.result.cost.hardware = decode_names(args, "hardware element");
  } else if (key == "map") {
    const std::string element = args.str("element");
    response.result.mapping.set(element, parse_target_kind(args));
  } else {
    return false;
  }
  return true;
}

void encode_payload(std::string& out, const ParetoResponse& response) {
  out += "model " + quote(response.model) + "\n";
  out += "applications " + fmt_u64(response.applications) + "\n";
  out += "library-origin " + quote(response.library_origin) + "\n";
  for (const synth::ParetoPoint& point : response.points) {
    out += "point " + fmt_f64(point.cost) + " " + fmt_i64(point.worst_latency.count());
    for (const auto& [element, target] : point.mapping.assignments()) {
      out += " " + quote(element) + " " + to_string(target);
    }
    out += "\n";
  }
}

bool decode_payload(const std::string& key, Args& args, ParetoResponse& response) {
  if (key == "model") {
    response.model = args.str("model");
  } else if (key == "applications") {
    response.applications = args.u64("applications");
  } else if (key == "library-origin") {
    response.library_origin = args.str("library-origin");
  } else if (key == "point") {
    synth::ParetoPoint point;
    point.cost = args.f64("cost");
    point.worst_latency = support::Duration{args.i64("worst-latency-us")};
    while (!args.done()) {
      const std::string element = args.str("element");
      point.mapping.set(element, parse_target_kind(args));
    }
    response.points.push_back(std::move(point));
  } else {
    return false;
  }
  return true;
}

void encode_outcome(std::string& out, const char* prefix, const synth::StrategyOutcome& outcome) {
  const std::string p{prefix};
  out += p + " " + quote(outcome.strategy) + " " + quote(outcome.detail) + " " +
         fmt_bool(outcome.feasible) + " " + fmt_i64(outcome.decisions) + " " +
         fmt_i64(outcome.evaluations) + "\n";
  encode_cost(out, (p + "-cost").c_str(), outcome.cost);
  encode_names(out, (p + "-software").c_str(), outcome.cost.software);
  encode_names(out, (p + "-hardware").c_str(), outcome.cost.hardware);
  encode_mapping_line(out, (p + "-map").c_str(), outcome.mapping);
  for (const synth::Mapping& mapping : outcome.per_app) {
    out += p + "-per-app\n";
    encode_mapping_line(out, (p + "-per-app-map").c_str(), mapping);
  }
}

void encode_payload(std::string& out, const CompareResponse& response) {
  out += "model " + quote(response.model) + "\n";
  out += "problem " + quote(response.problem) + "\n";
  out += "applications " + fmt_u64(response.applications) + "\n";
  out += "library-origin " + quote(response.library_origin) + "\n";
  if (!response.objectives.empty()) {
    out += "objectives " + comma_list(response.objectives) + "\n";
  }
  out += "ranking";
  for (const std::size_t index : response.ranking) out += " " + fmt_u64(index);
  out += "\n";
  for (const CompareResponse::Row& row : response.rows) {
    out += "row " + quote(row.strategy) + " " + quote(row.scope) + " " +
           fmt_u64(row.orders_tried) + " " + fmt_f64(row.worst_total) + " " +
           fmt_i64(row.decisions) + " " + fmt_i64(row.evaluations) + "\n";
    encode_outcome(out, "outcome", row.outcome);
    for (const CompareResponse::OrderOutcome& order : row.per_order) {
      out += "per-order " + fmt_f64(order.total) + " " + fmt_f64(order.worst_utilization) + " " +
             fmt_bool(order.feasible) + " " + fmt_i64(order.decisions);
      for (const std::size_t index : order.order) out += " " + fmt_u64(index);
      out += "\n";
    }
  }
}

bool decode_payload(const std::string& key, Args& args, CompareResponse& response) {
  CompareResponse::Row* row = response.rows.empty() ? nullptr : &response.rows.back();
  const auto require_row = [&]() -> CompareResponse::Row& {
    if (!row) fail(args.number(), "'" + key + "' before any 'row'");
    return *row;
  };
  if (key == "model") {
    response.model = args.str("model");
  } else if (key == "problem") {
    response.problem = args.str("problem");
  } else if (key == "applications") {
    response.applications = args.u64("applications");
  } else if (key == "library-origin") {
    response.library_origin = args.str("library-origin");
  } else if (key == "objectives") {
    response.objectives =
        parse_comma_list<synth::RankObjective>(args, "objective", synth::parse_objective);
  } else if (key == "ranking") {
    while (!args.done()) response.ranking.push_back(args.u64("ranking index"));
  } else if (key == "row") {
    CompareResponse::Row fresh;
    fresh.strategy = args.str("strategy");
    fresh.scope = args.str("scope");
    fresh.orders_tried = args.u64("orders-tried");
    fresh.worst_total = args.f64("worst-total");
    fresh.decisions = args.i64("decisions");
    fresh.evaluations = args.i64("evaluations");
    response.rows.push_back(std::move(fresh));
  } else if (key == "outcome") {
    synth::StrategyOutcome& outcome = require_row().outcome;
    outcome.strategy = args.str("strategy");
    outcome.detail = args.str("detail");
    outcome.feasible = args.boolean("feasible");
    outcome.decisions = args.i64("decisions");
    outcome.evaluations = args.i64("evaluations");
  } else if (key == "outcome-cost") {
    decode_cost(args, require_row().outcome.cost);
  } else if (key == "outcome-software") {
    require_row().outcome.cost.software = decode_names(args, "software element");
  } else if (key == "outcome-hardware") {
    require_row().outcome.cost.hardware = decode_names(args, "hardware element");
  } else if (key == "outcome-map") {
    const std::string element = args.str("element");
    require_row().outcome.mapping.set(element, parse_target_kind(args));
  } else if (key == "outcome-per-app") {
    require_row().outcome.per_app.emplace_back();
  } else if (key == "outcome-per-app-map") {
    auto& per_app = require_row().outcome.per_app;
    if (per_app.empty()) fail(args.number(), "'outcome-per-app-map' before 'outcome-per-app'");
    const std::string element = args.str("element");
    per_app.back().set(element, parse_target_kind(args));
  } else if (key == "per-order") {
    CompareResponse::OrderOutcome order;
    order.total = args.f64("total");
    order.worst_utilization = args.f64("worst-utilization");
    order.feasible = args.boolean("feasible");
    order.decisions = args.i64("decisions");
    while (!args.done()) order.order.push_back(args.u64("order index"));
    require_row().per_order.push_back(std::move(order));
  } else {
    return false;
  }
  return true;
}

// --- frame scaffolding -------------------------------------------------------

void encode_diagnostics(std::string& out, const support::DiagnosticList& diagnostics) {
  for (const support::Diagnostic& d : diagnostics.items()) {
    out += std::string{"diagnostic "} + to_string(d.severity) + " " + quote(d.code) + " " +
           quote(d.message) + "\n";
  }
}

/// Parses the body lines of a frame: diagnostics collect into `diagnostics`,
/// everything else dispatches to `body` (which returns false for unknown
/// keys). Requires the final `end` line.
template <typename Body>
void decode_body(const std::vector<Line>& lines, support::DiagnosticList& diagnostics,
                 Body&& body) {
  bool ended = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const Line& line = lines[i];
    if (ended) fail(line.number, "content after 'end'");
    if (line.tokens.front().quoted) fail(line.number, "expected a key, got a quoted string");
    const std::string& key = line.key();
    if (key == "end") {
      Args args{line};
      args.finish();
      ended = true;
      continue;
    }
    Args args{line};
    if (key == "diagnostic") {
      const support::Severity severity = parse_severity(args);
      std::string code = args.str("code");
      std::string message = args.str("message");
      diagnostics.add(severity, std::move(code), std::move(message));
    } else if (!body(key, args)) {
      fail(line.number, "unknown key '" + key + "'");
    }
    args.finish();
  }
  if (!ended) {
    fail(lines.empty() ? 1 : lines.back().number, "frame not terminated by 'end'");
  }
}

/// A frame's non-empty lines plus the header version the decoder accepted.
struct OpenedFrame {
  std::vector<Line> lines;
  int version = kVersion;
};

/// Checks a frame header `<tag> v<version> ...` and returns its lines.
/// Versions 1..max_version are accepted (the envelope decoders take v2 —
/// the pipelined headers — while `info` stays v1-only).
OpenedFrame open_frame(std::string_view frame, const char* tag, int max_version = kVersion) {
  std::vector<Line> lines = split_frame(frame);
  if (lines.empty()) fail(1, std::string{"empty frame (expected '"} + tag + "')");
  Args args{lines.front(), 0};
  const std::string head = args.word("frame tag");
  if (head != tag) fail(lines.front().number, "expected '" + std::string{tag} + "' frame, got '" + head + "'");
  const std::string version = args.word("version");
  int parsed = 0;
  const char* first = version.data() + 1;
  const char* last = version.data() + version.size();
  const bool well_formed =
      version.size() >= 2 && version.front() == 'v' &&
      [&] {
        const auto [end, ec] = std::from_chars(first, last, parsed);
        return ec == std::errc{} && end == last;
      }();
  if (!well_formed || parsed < 1 || parsed > max_version) {
    const std::string range = max_version == kVersion
                                  ? "v" + std::to_string(kVersion)
                                  : "v1..v" + std::to_string(max_version);
    fail(lines.front().number,
         "unsupported wire version '" + version + "' (expected " + range + ")");
  }
  return OpenedFrame{std::move(lines), parsed};
}

template <typename T>
Result<T> wire_failure(const FrameError& error) {
  return Result<T>::failure(diag::kWireError,
                            "line " + std::to_string(error.line) + ": " + error.message);
}

}  // namespace

// --- public surface ----------------------------------------------------------

std::string quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

namespace {

/// Everything below a request's header line — bodies are identical across
/// protocol versions, so both encoders share this.
void encode_request_body(std::string& out, const AnyRequest& request) {
  // Options without a target spec still travel (as an empty target), so
  // the invalid combination round-trips and fails identically on both
  // sides of the wire instead of silently becoming a valid request.
  if (!request.target.empty() || !request.target_options.empty()) {
    out += "target " + quote(request.target);
    for (const std::string& option : request.target_options) out += " " + quote(option);
    out += "\n";
  }
  if (const ModelId model = model_of(request.payload); model.valid()) {
    out += "model " + fmt_u64(model.value()) + "\n";
  }
  if (request.options.priority != Priority::kNormal) {
    out += std::string{"priority "} + to_string(request.options.priority) + "\n";
  }
  if (request.options.deadline) {
    out += "deadline-ms " + fmt_i64(request.options.deadline->count()) + "\n";
  }
  std::visit([&out](const auto& payload) { encode_payload(out, payload); }, request.payload);
  out += "end\n";
}

}  // namespace

std::string encode(const AnyRequest& request) {
  std::string out = "request v" + std::to_string(kVersion) + " " +
                    to_string(kind_of(request)) + "\n";
  encode_request_body(out, request);
  return out;
}

std::string encode(const AnyRequest& request, std::uint64_t frame_id) {
  std::string out = "request v" + std::to_string(kVersionPipelined) + " " +
                    to_string(kind_of(request)) + " " + fmt_u64(frame_id) + "\n";
  encode_request_body(out, request);
  return out;
}

Result<AnyRequest> decode_request(std::string_view frame) {
  try {
    const auto [lines, version] = open_frame(frame, "request", kVersionPipelined);
    Args header{lines.front(), 2};
    const std::string kind_name = header.word("request kind");
    if (version >= kVersionPipelined) (void)header.u64("frame id");
    header.finish();
    const std::optional<RequestKind> kind = parse_request_kind(kind_name);
    if (!kind) fail(lines.front().number, "unknown request kind '" + kind_name + "'");

    AnyRequest request;
    switch (*kind) {
      case RequestKind::kSimulate: request.payload = SimulateRequest{}; break;
      case RequestKind::kAnalyze: request.payload = AnalyzeRequest{}; break;
      case RequestKind::kExplore: request.payload = ExploreRequest{}; break;
      case RequestKind::kPareto: request.payload = ParetoRequest{}; break;
      case RequestKind::kCompare: request.payload = CompareRequest{}; break;
    }

    support::DiagnosticList ignored;
    decode_body(lines, ignored, [&](const std::string& key, Args& args) {
      if (key == "target") {
        request.target = args.str("target spec");
        while (!args.done()) request.target_options.push_back(args.str("target option"));
        return true;
      }
      if (key == "model") {
        set_model(request.payload, ModelId{args.u32("model handle")});
        return true;
      }
      if (key == "priority") {
        const std::string name = args.word("priority");
        const std::optional<Priority> priority = parse_priority(name);
        if (!priority) fail(args.number(), "unknown priority '" + name + "' (low|normal|high)");
        request.options.priority = *priority;
        return true;
      }
      if (key == "deadline-ms") {
        request.options.deadline = std::chrono::milliseconds{args.i64("deadline-ms")};
        return true;
      }
      return std::visit([&](auto& payload) { return decode_payload(key, args, payload); },
                        request.payload);
    });
    return Result<AnyRequest>::success(std::move(request));
  } catch (const FrameError& error) {
    return wire_failure<AnyRequest>(error);
  } catch (const std::exception& e) {
    return Result<AnyRequest>::failure(diag::kWireError, e.what());
  }
}

namespace {

/// Status, kind and body shared by both response headers; `head` is the
/// already-versioned header prefix ("response v1" / "response v2 <id>").
std::string encode_response_frame(std::string head, const Result<AnyResponse>& result) {
  std::string out = std::move(head);
  if (!result.ok()) {
    out += " error\n";
    encode_diagnostics(out, result.diagnostics());
    out += "end\n";
    return out;
  }
  out += " ok " + std::string{to_string(kind_of(result.value()))} + "\n";
  encode_diagnostics(out, result.diagnostics());
  std::visit([&out](const auto& response) { encode_payload(out, response); }, result.value());
  out += "end\n";
  return out;
}

}  // namespace

std::string encode(const Result<AnyResponse>& result) {
  return encode_response_frame("response v" + std::to_string(kVersion), result);
}

std::string encode(const Result<AnyResponse>& result, std::uint64_t frame_id) {
  return encode_response_frame(
      "response v" + std::to_string(kVersionPipelined) + " " + fmt_u64(frame_id), result);
}

Result<AnyResponse> decode_response(std::string_view frame) {
  try {
    const auto [lines, version] = open_frame(frame, "response", kVersionPipelined);
    Args header{lines.front(), 2};
    if (version >= kVersionPipelined) (void)header.u64("frame id");
    const std::string status = header.word("status");
    if (status == "error") {
      header.finish();
      support::DiagnosticList diagnostics;
      decode_body(lines, diagnostics, [](const std::string&, Args&) { return false; });
      if (diagnostics.empty()) {
        diagnostics.error(diag::kWireError, "error response without diagnostics");
      }
      return Result<AnyResponse>::failure(std::move(diagnostics));
    }
    if (status != "ok") {
      fail(lines.front().number, "unknown response status '" + status + "' (ok|error)");
    }
    const std::string kind_name = header.word("response kind");
    header.finish();
    const std::optional<RequestKind> kind = parse_request_kind(kind_name);
    if (!kind) fail(lines.front().number, "unknown response kind '" + kind_name + "'");

    support::DiagnosticList notes;
    AnyResponse response;
    switch (*kind) {
      case RequestKind::kSimulate: {
        SimulateResponse typed;
        TraceRebuild trace;
        decode_body(lines, notes, [&](const std::string& key, Args& args) {
          return decode_payload(key, args, typed, trace);
        });
        typed.result.trace = trace.build();
        response = std::move(typed);
        break;
      }
      case RequestKind::kAnalyze: {
        AnalyzeResponse typed;
        decode_body(lines, notes, [&](const std::string& key, Args& args) {
          return decode_payload(key, args, typed);
        });
        response = std::move(typed);
        break;
      }
      case RequestKind::kExplore: {
        ExploreResponse typed;
        decode_body(lines, notes, [&](const std::string& key, Args& args) {
          return decode_payload(key, args, typed);
        });
        response = std::move(typed);
        break;
      }
      case RequestKind::kPareto: {
        ParetoResponse typed;
        decode_body(lines, notes, [&](const std::string& key, Args& args) {
          return decode_payload(key, args, typed);
        });
        response = std::move(typed);
        break;
      }
      case RequestKind::kCompare: {
        CompareResponse typed;
        decode_body(lines, notes, [&](const std::string& key, Args& args) {
          return decode_payload(key, args, typed);
        });
        response = std::move(typed);
        break;
      }
    }
    return Result<AnyResponse>::success(std::move(response), std::move(notes));
  } catch (const FrameError& error) {
    return wire_failure<AnyResponse>(error);
  } catch (const std::exception& e) {
    return Result<AnyResponse>::failure(diag::kWireError, e.what());
  }
}

namespace {

/// Shared peek machinery: the u64 at token `position` of the first line,
/// provided the line starts `<tag> v2`. Never throws past this function —
/// a peek that cannot produce an id reports nullopt and leaves the full
/// decoder to produce the line-numbered error.
std::optional<std::uint64_t> peek_frame_id(std::string_view frame, const char* tag,
                                           std::size_t position) {
  try {
    const std::size_t nl = frame.find('\n');
    const std::vector<Token> tokens =
        tokenize(nl == std::string_view::npos ? frame : frame.substr(0, nl), 1);
    if (tokens.size() <= position) return std::nullopt;
    if (tokens[0].quoted || tokens[0].text != tag) return std::nullopt;
    if (tokens[1].quoted || tokens[1].text != "v" + std::to_string(kVersionPipelined)) {
      return std::nullopt;
    }
    const Token& id = tokens[position];
    if (id.quoted) return std::nullopt;
    std::uint64_t value = 0;
    const auto [end, ec] = std::from_chars(id.text.data(), id.text.data() + id.text.size(), value);
    if (ec != std::errc{} || end != id.text.data() + id.text.size()) return std::nullopt;
    return value;
  } catch (const FrameError&) {
    return std::nullopt;
  }
}

}  // namespace

std::optional<std::uint64_t> request_frame_id(std::string_view frame) {
  // `request v2 <kind> <id>`
  return peek_frame_id(frame, "request", 3);
}

std::optional<std::uint64_t> response_frame_id(std::string_view frame) {
  // `response v2 <id> <status> ...`
  return peek_frame_id(frame, "response", 2);
}

// --- service frames ----------------------------------------------------------

namespace {

/// Shared shape of the one-payload-line service frames (`batch`,
/// `control`): a header line plus the terminating `end`. The `end` is what
/// lets read_frame treat *every* frame uniformly — a typo'd tag consumes
/// exactly one frame and produces exactly one error reply instead of
/// desynchronizing the request/reply pairing. For backward-leniency the
/// parsers also accept the bare header without `end`.
std::optional<Line> service_frame_header(std::string_view frame, const char* tag) {
  const std::vector<Line> lines = split_frame(frame);
  if (lines.empty() || lines.size() > 2) return std::nullopt;
  if (lines.size() == 2 &&
      (lines[1].tokens.size() != 1 || lines[1].key() != "end" || lines[1].tokens[0].quoted)) {
    return std::nullopt;
  }
  Args args{lines.front(), 0};
  if (args.word("frame tag") != tag) return std::nullopt;
  if (args.word("version") != "v" + std::to_string(kVersion)) return std::nullopt;
  return lines.front();
}

}  // namespace

std::string batch_header(std::size_t slots) {
  return "batch v" + std::to_string(kVersion) + " " + fmt_u64(slots) + "\nend\n";
}

std::optional<std::size_t> parse_batch_header(std::string_view frame) {
  try {
    const std::optional<Line> header = service_frame_header(frame, "batch");
    if (!header) return std::nullopt;
    Args args{*header, 2};
    const std::size_t slots = args.u64("slot count");
    args.finish();
    return slots;
  } catch (const FrameError&) {
    return std::nullopt;
  }
}

std::string control_frame(std::string_view command, const std::vector<std::string>& args) {
  std::string out = "control v" + std::to_string(kVersion) + " " + std::string{command};
  for (const std::string& arg : args) out += " " + quote(arg);
  out += "\nend\n";
  return out;
}

std::optional<ControlCommand> parse_control(std::string_view frame) {
  try {
    const std::optional<Line> header = service_frame_header(frame, "control");
    if (!header) return std::nullopt;
    Args args{*header, 2};
    ControlCommand command;
    command.command = args.word("command");
    while (!args.done()) command.args.push_back(args.take("argument").text);
    return command;
  } catch (const FrameError&) {
    return std::nullopt;
  }
}

std::string hello_frame(std::string_view tenant, std::string_view token) {
  std::string out = "hello v" + std::to_string(kVersion) + " " + quote(tenant);
  if (!token.empty()) out += " " + quote(token);
  out += "\nend\n";
  return out;
}

std::optional<HelloCommand> parse_hello(std::string_view frame) {
  try {
    const std::optional<Line> header = service_frame_header(frame, "hello");
    if (!header) return std::nullopt;
    Args args{*header, 2};
    HelloCommand hello;
    hello.tenant = args.take("tenant").text;
    if (!args.done()) hello.token = args.take("token").text;
    args.finish();
    return hello;
  } catch (const FrameError&) {
    return std::nullopt;
  }
}

std::string encode_info(std::string_view text) {
  std::string out = "info v" + std::to_string(kVersion) + "\n";
  out += "text " + quote(text) + "\n";
  out += "end\n";
  return out;
}

Result<std::string> decode_info(std::string_view frame) {
  try {
    const std::vector<Line> lines = open_frame(frame, "info").lines;
    Args header{lines.front(), 2};
    header.finish();
    std::string text;
    support::DiagnosticList ignored;
    decode_body(lines, ignored, [&](const std::string& key, Args& args) {
      if (key != "text") return false;
      text = args.str("text");
      return true;
    });
    return Result<std::string>::success(std::move(text));
  } catch (const FrameError& error) {
    return wire_failure<std::string>(error);
  } catch (const std::exception& e) {
    return Result<std::string>::failure(diag::kWireError, e.what());
  }
}

// --- stream utilities --------------------------------------------------------

std::optional<std::string> read_frame(std::istream& in) {
  // Every frame — envelope, info, batch header, control, or a typo'd tag —
  // is `end`-terminated, so the reader needs no per-tag knowledge and a
  // malformed frame consumes exactly one frame's worth of lines (one error
  // reply, stream stays in sync).
  std::string frame;
  std::string line;
  bool started = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!started) {
      if (line.empty()) continue;  // skip blank separators between frames
      started = true;
      frame = line + "\n";
      if (line == "end") return frame;  // stray terminator: one-line frame
      continue;
    }
    frame += line + "\n";
    if (line == "end") return frame;
  }
  if (started) return frame;  // truncated frame: let the decoder report it
  return std::nullopt;
}

}  // namespace spivar::api::wire
