#include "api/registry.hpp"

#include <map>
#include <mutex>

#include "corpus/spec.hpp"
#include "models/emission_control.hpp"
#include "models/fig1.hpp"
#include "models/fig2.hpp"
#include "models/multistandard_tv.hpp"
#include "models/synthetic.hpp"
#include "models/video_system.hpp"

namespace spivar::api {

namespace {

using synth::ElementGranularity;
using synth::ProblemOptions;

/// The typed options for this factory, or the defaults when the request
/// carries std::monostate. Any other alternative is a caller error: the
/// option struct names a different model.
template <typename Opts>
Opts expect(const BuiltinOptions& options, const char* model) {
  if (std::holds_alternative<std::monostate>(options)) return Opts{};
  if (const Opts* typed = std::get_if<Opts>(&options)) return *typed;
  throw support::ModelError(std::string{"option struct does not belong to builtin '"} + model +
                            "'");
}

const std::vector<BuiltinModel>& table() {
  static const std::vector<BuiltinModel> entries = {
      {
          .name = "fig1",
          .description = "Figure 1: introductory SPI chain with mode-refined p2",
          .make =
              [](const BuiltinOptions& o) {
                return variant::VariantModel{
                    models::make_fig1(expect<models::Fig1Options>(o, "fig1"))};
              },
          .library = nullptr,
      },
      {
          .name = "fig2",
          .description = "Figure 2: two production variants behind interface theta (Table 1)",
          .make =
              [](const BuiltinOptions& o) {
                return models::make_fig2(expect<models::Fig2Options>(o, "fig2"));
              },
          .library = [](const variant::VariantModel&) { return models::table1_library(); },
          .problem = ProblemOptions{.granularity = ElementGranularity::kClusterAtomic},
      },
      {
          .name = "fig3",
          .description = "Figure 3: run-time variant selection via PUser/CV",
          .make =
              [](const BuiltinOptions& o) {
                return models::make_fig3(expect<models::Fig3Options>(o, "fig3"));
              },
          .library = [](const variant::VariantModel&) { return models::table1_library(); },
          .problem = ProblemOptions{.granularity = ElementGranularity::kClusterAtomic},
      },
      {
          .name = "video_system",
          .description = "Figure 4: reconfigurable video system with valve protocol",
          .make =
              [](const BuiltinOptions& o) {
                return variant::VariantModel{
                    models::make_video_system(expect<models::VideoOptions>(o, "video_system"))};
              },
          .library = nullptr,
      },
      {
          .name = "multistandard_tv",
          .description = "Multi-standard TV: linked video/audio variant sets (PAL/NTSC/SECAM)",
          .make =
              [](const BuiltinOptions& o) {
                return models::make_multistandard_tv(
                    expect<models::TvOptions>(o, "multistandard_tv"));
              },
          .library = [](const variant::VariantModel&) { return models::tv_library(); },
          .problem = ProblemOptions{.granularity = ElementGranularity::kClusterAtomic},
      },
      {
          .name = "emission_control",
          .description = "Automotive ECU with emission-law production variants",
          .make =
              [](const BuiltinOptions& o) {
                return models::make_emission_control(
                    expect<models::EmissionOptions>(o, "emission_control"));
              },
          .library = [](const variant::VariantModel&) { return models::emission_library(); },
          .problem = ProblemOptions{.granularity = ElementGranularity::kProcess},
      },
      {
          .name = "synthetic",
          .description = "Scalable synthetic variant system (ablation default spec)",
          .make =
              [](const BuiltinOptions& o) {
                return models::make_synthetic(expect<models::SyntheticSpec>(o, "synthetic"));
              },
          .library =
              [](const variant::VariantModel& model) {
                return models::make_synthetic_library(model);
              },
          .problem = ProblemOptions{.granularity = ElementGranularity::kProcess},
      },
  };
  return entries;
}

/// Corpus models, minted on first lookup. A std::map keeps node addresses
/// stable across insertions, so StoreEntry can hold the pointer for the
/// lifetime of the process exactly like it does for curated entries.
const BuiltinModel* mint_corpus(std::string_view name) {
  const auto parsed = corpus::parse_name(name);
  if (!parsed) return nullptr;

  static std::mutex mutex;
  static std::map<std::string, BuiltinModel, std::less<>> minted;
  std::scoped_lock lock{mutex};
  if (const auto it = minted.find(name); it != minted.end()) return &it->second;

  const corpus::CorpusSpec spec = *parsed;
  const models::SyntheticSpec& s = spec.spec;
  BuiltinModel entry{
      .name = std::string{name},
      .description = "sweep corpus: synthetic(p=" + std::to_string(s.shared_processes) +
                     ", i=" + std::to_string(s.interfaces) + ", v=" + std::to_string(s.variants) +
                     ", c=" + std::to_string(s.cluster_size) + ", m=" + std::to_string(s.modes) +
                     ", d=" + std::to_string(s.predicate_depth) + ", seed=" +
                     std::to_string(s.seed) + "), " + std::string{profile_name(spec.profile)} +
                     " library",
      .make =
          [spec, name = std::string{name}](const BuiltinOptions& o) {
            // `--opt` assignments arrive as a full SyntheticSpec already
            // merged over the name-parsed knobs by parse_builtin_options;
            // monostate means the name is the whole spec.
            models::SyntheticSpec merged = spec.spec;
            if (!std::holds_alternative<std::monostate>(o)) {
              merged = expect<models::SyntheticSpec>(o, name.c_str());
            }
            variant::VariantModel model = models::make_synthetic(merged);
            model.graph().set_name(name);
            return model;
          },
      .library =
          [spec](const variant::VariantModel& model) {
            return models::make_synthetic_library(model, corpus::library_options(spec));
          },
      .problem = ProblemOptions{.granularity = ElementGranularity::kProcess},
  };
  return &minted.emplace(std::string{name}, std::move(entry)).first->second;
}

}  // namespace

const std::vector<BuiltinModel>& builtin_models() { return table(); }

const BuiltinModel* find_builtin(std::string_view name) {
  for (const BuiltinModel& entry : table()) {
    if (entry.name == name) return &entry;
  }
  if (corpus::is_corpus_name(name)) return mint_corpus(name);
  return nullptr;
}

std::vector<std::string> builtin_names() {
  std::vector<std::string> names;
  names.reserve(table().size());
  for (const BuiltinModel& entry : table()) names.push_back(entry.name);
  return names;
}

}  // namespace spivar::api
