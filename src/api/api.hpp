// Umbrella header for the spivar::api layer — the only include front ends
// need.
//
// v8 surface — the unified request envelope remains the primary entry
// point; the result cache is *tiered* (a persistent on-disk second tier,
// content-fingerprint keyed, survives process restarts); and the store /
// session stack is now *multi-tenant* with lateness-driven overload
// shedding:
//   * TenantContext / TenantQuota (tenant.hpp) — a tenant's identity (name,
//     runtime tag, restart-stable content salt derived from the name) and
//     its limits (live models, cache entries, in-flight requests). Tag 0 is
//     the default tenant: bit-identical to pre-tenancy behavior everywhere.
//   * StoreView (store_view.hpp) — one tenant's namespace over one shared
//     ModelStore: loads are quota-checked, content-salted and recorded as
//     tenant-owned; unload/info/models refuse ids the view never issued
//     (no cross-tenant tombstones or cache invalidations); builtin and
//     corpus *names* stay globally loadable while the instantiated models
//     are tenant-scoped.
//   * AdmissionController (admission.hpp) — rolling-window projection of
//     the executor's deadline-miss rate; above the configured bound,
//     Session::call/call_batch/submit shed with a typed diag::kOverload
//     failure carrying a "retry-after-ms N" hint instead of queueing work
//     that would miss anyway. Session::bind_tenant wires both into a
//     session.
//   * AnyRequest / AnyResponse (requests.hpp / responses.hpp) — one
//     std::variant envelope over every evaluation kind (simulate, analyze,
//     explore, pareto, compare) plus an optional target spec (builtin name
//     or .spit path, resolved through a tombstone-aware per-session target
//     cache) and per-slot SubmitOptions{priority, deadline}. ModelInfo
//     carries the model's canonical content fingerprint.
//   * Session::call / call_batch / submit (session.hpp) — one uniform
//     entry point, one heterogeneous blocking batch, one heterogeneous
//     streaming batch (BatchHandle<AnyResponse>). Dispatch runs through the
//     same snapshot + result-cache seam as the per-kind endpoints, so an
//     envelope slot is bit-identical to its dedicated endpoint and shares
//     its cache entries; slots grouped by identical SubmitOptions become
//     one executor submission each, so priority bands and EDF deadlines
//     hold per slot.
//   * wire (wire.hpp) — versioned line-oriented codec for the envelope:
//     every AnyRequest/Result<AnyResponse> (error responses included)
//     round-trips bit-identically as a plain-text frame; malformed and
//     old-version frames decode into line-numbered diag::kWireError
//     failures. Plus the service frames (batch headers, control commands,
//     info replies) spoken by tools/spivar_serve and `spivar_cli remote`.
//     The persistent cache tier stores these same frames on disk.
//   * ModelStore (store.hpp) — thread-safe, share-by-snapshot model
//     ownership: loads produce immutable `shared_ptr<const StoreEntry>`
//     snapshots (model + registry entry + memoized synthesis setup +
//     memoized content fingerprint, each carrying its id and load
//     generation), unload is tombstone-only (UnloadStatus three-way
//     contract), and any number of sessions attach to one store.
//     enable_cache() attaches the result cache (CacheConfig::persist adds
//     the disk tier).
//   * ResultCache (cache.hpp) — sharded cost-aware LRU keyed by (store
//     entry id, load generation, request kind, canonical request
//     fingerprint, content fingerprint); every entry is charged its
//     measured eval time and eviction drops the cheapest entry in the LRU
//     tail's cost window (CacheConfig::cost_window — self-tuning with
//     adaptive_window). With CacheConfig::persist, inserts write through to
//     a persist::DiskTier, memory misses consult disk and promote on hit,
//     and evicted entries spill down; persist_all()/clear(include_disk)
//     are the admin hooks. CacheStats accounts hit/miss/eviction counters,
//     cached/saved/evicted cost, the live cost window, and the disk tier's
//     hits/spills/promotes/skipped/fill.
//   * persist::DiskTier (persist/disk_tier.hpp) — the durable tier itself:
//     one versioned, CRC-checked entry file per (content fingerprint,
//     kind, request fingerprint) key; corrupt or stale entries are skipped
//     with a diagnostic and compacted away, never served.
//   * Session (session.hpp) — a movable view over (store, executor):
//     load_text/load_file/load_model, typed load_builtin(LoadBuiltinRequest),
//     resolve() (spec -> handle through the target cache),
//     validate/stats/dot/write_text (variant-aware `variants v1` spit
//     round-trip), the per-kind analyze/simulate/explore/pareto/compare,
//     blocking batches (simulate_batch/explore_batch), the streaming
//     submit_* surface, and executor_stats() for deadline telemetry.
//   * Executor (executor.hpp) — SerialExecutor / self-scheduling
//     ThreadPoolExecutor / make_executor(jobs); run() participates in its
//     own batch (nested dispatch is deadlock-free), submit() streams, both
//     take SubmitOptions{priority, deadline} (priority bands drain first,
//     EDF within a band), and stats() reports ExecutorStats{completed,
//     deadline_misses, max_lateness, total_lateness} recorded per task at
//     completion.
//   * SpecCache (spec_cache.hpp) — tombstone-aware spec → handle
//     memoization for front ends chaining commands over one store.
//   * BatchHandle (batch.hpp) — per-slot shared_futures, on_slot streaming
//     callback, wait(), cooperative cancel() (diag::kCancelled); slot tasks
//     capture store snapshots, so handles survive unloads and session moves.
//   * BuiltinOptions (options.hpp) — std::variant of per-model option
//     structs plus parse_builtin_options() for "key=value" assignments.
//   * Result<T> (result.hpp) — value-or-diagnostics; no exception crosses
//     the session boundary.
//   * render() (format.hpp) — stable plain-text rendering of every
//     response type (AnyResponse dispatch included), CacheStats and
//     ExecutorStats.
#pragma once

#include "api/admission.hpp"  // IWYU pragma: export
#include "api/batch.hpp"      // IWYU pragma: export
#include "api/cache.hpp"      // IWYU pragma: export
#include "api/executor.hpp"   // IWYU pragma: export
#include "api/format.hpp"     // IWYU pragma: export
#include "api/options.hpp"    // IWYU pragma: export
#include "api/registry.hpp"   // IWYU pragma: export
#include "api/requests.hpp"   // IWYU pragma: export
#include "api/responses.hpp"  // IWYU pragma: export
#include "api/result.hpp"     // IWYU pragma: export
#include "api/session.hpp"    // IWYU pragma: export
#include "api/spec_cache.hpp" // IWYU pragma: export
#include "api/store.hpp"      // IWYU pragma: export
#include "api/store_view.hpp" // IWYU pragma: export
#include "api/tenant.hpp"     // IWYU pragma: export
#include "api/wire.hpp"       // IWYU pragma: export
#include "persist/disk_tier.hpp"  // IWYU pragma: export
