// Umbrella header for the spivar::api layer — the only include front ends
// need.
//
// v4 surface:
//   * ModelStore (store.hpp) — thread-safe, share-by-snapshot model
//     ownership: loads produce immutable `shared_ptr<const StoreEntry>`
//     snapshots (model + registry entry + memoized synthesis setup, each
//     carrying its id and load generation), unload is tombstone-only
//     (UnloadStatus three-way contract), and any number of sessions attach
//     to one store. enable_cache() attaches the result cache.
//   * ResultCache (cache.hpp) — sharded LRU keyed by (store entry id, load
//     generation, request kind, canonical request fingerprint); fronts
//     every eval path of every session on the store, invalidated per entry
//     on unload, hit/miss/eviction/invalidation stats via CacheStats.
//   * Session (session.hpp) — a movable view over (store, executor):
//     load_text/load_file/load_model, typed load_builtin(LoadBuiltinRequest)
//     with per-model option structs, validate/stats/dot/write_text
//     (variant-aware: the `variants v1` spit section round-trips clusters
//     and interfaces), analyze/simulate/explore/pareto, compare() (ranked
//     run of the five Table 1 strategies, multi-objective via
//     CompareRequest::objectives, per-order outcome lists), blocking
//     batches (simulate_batch/explore_batch) and the streaming
//     submit_simulate_batch/submit_explore_batch/submit_compare with
//     per-submission SubmitOptions.
//   * SpecCache (spec_cache.hpp) — tombstone-aware spec → handle
//     memoization for front ends chaining commands over one store.
//   * BatchHandle (batch.hpp) — per-slot shared_futures, on_slot streaming
//     callback, wait(), cooperative cancel() (diag::kCancelled); slot tasks
//     capture store snapshots, so handles survive unloads and session moves.
//   * Executor (executor.hpp) — SerialExecutor / self-scheduling
//     ThreadPoolExecutor / make_executor(jobs); run() participates in its
//     own batch (nested dispatch is deadlock-free), submit() streams, and
//     both take SubmitOptions{priority, deadline}: workers drain the
//     highest priority band first, earliest deadline first within a band.
//   * BuiltinOptions (options.hpp) — std::variant of per-model option
//     structs plus parse_builtin_options() for "key=value" assignments.
//   * Result<T> (result.hpp) — value-or-diagnostics; no exception crosses
//     the session boundary.
//   * render() (format.hpp) — stable plain-text rendering of every
//     response type, CacheStats included.
#pragma once

#include "api/batch.hpp"      // IWYU pragma: export
#include "api/cache.hpp"      // IWYU pragma: export
#include "api/executor.hpp"   // IWYU pragma: export
#include "api/format.hpp"     // IWYU pragma: export
#include "api/options.hpp"    // IWYU pragma: export
#include "api/registry.hpp"   // IWYU pragma: export
#include "api/requests.hpp"   // IWYU pragma: export
#include "api/responses.hpp"  // IWYU pragma: export
#include "api/result.hpp"     // IWYU pragma: export
#include "api/session.hpp"    // IWYU pragma: export
#include "api/spec_cache.hpp" // IWYU pragma: export
#include "api/store.hpp"      // IWYU pragma: export
