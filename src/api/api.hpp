// Umbrella header for the spivar::api layer — the only include front ends
// need.
//
// v2 surface:
//   * Session (session.hpp) — load_text/load_file/load_model, typed
//     load_builtin(LoadBuiltinRequest) with per-model option structs,
//     validate/stats/dot/write_text, analyze/simulate/explore/pareto,
//     compare() (ranked run of the five Table 1 strategies), and the batch
//     entry points simulate_batch/explore_batch.
//   * Executor (executor.hpp) — SerialExecutor / ThreadPoolExecutor /
//     make_executor(jobs); inject into Session to parallelize the batch
//     surface with bit-identical results.
//   * BuiltinOptions (options.hpp) — std::variant of per-model option
//     structs plus parse_builtin_options() for "key=value" assignments.
//   * Result<T> (result.hpp) — value-or-diagnostics; no exception crosses
//     the session boundary.
//   * render() (format.hpp) — stable plain-text rendering of every
//     response type.
#pragma once

#include "api/executor.hpp"  // IWYU pragma: export
#include "api/format.hpp"    // IWYU pragma: export
#include "api/options.hpp"   // IWYU pragma: export
#include "api/registry.hpp"  // IWYU pragma: export
#include "api/requests.hpp"  // IWYU pragma: export
#include "api/responses.hpp" // IWYU pragma: export
#include "api/result.hpp"    // IWYU pragma: export
#include "api/session.hpp"   // IWYU pragma: export
