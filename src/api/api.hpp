// Umbrella header for the spivar::api layer — the only include front ends
// need. See session.hpp for the facade, format.hpp for text rendering.
#pragma once

#include "api/format.hpp"    // IWYU pragma: export
#include "api/registry.hpp"  // IWYU pragma: export
#include "api/requests.hpp"  // IWYU pragma: export
#include "api/responses.hpp" // IWYU pragma: export
#include "api/result.hpp"    // IWYU pragma: export
#include "api/session.hpp"   // IWYU pragma: export
