// Typed responses returned by api::Session operations.
//
// Responses are self-contained: summary rows are name-resolved against the
// model so front ends (CLI, examples, services) never need to reach back
// into the Graph to present results. The raw subsystem results ride along
// for callers that want the full detail.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "analysis/buffer_bounds.hpp"
#include "analysis/timing.hpp"
#include "api/requests.hpp"
#include "sim/stats.hpp"
#include "support/diagnostics.hpp"
#include "synth/explore.hpp"
#include "synth/pareto.hpp"

namespace spivar::api {

/// Summary of one loaded model.
struct ModelInfo {
  ModelId id;
  std::string name;
  std::string origin;  ///< "builtin:<name>", "text", or the file path
  std::size_t processes = 0;
  std::size_t channels = 0;
  std::size_t interfaces = 0;
  std::size_t clusters = 0;
  /// Canonical content fingerprint (variant::content_fingerprint): equal
  /// text ⇒ equal fingerprint across processes and restarts — the identity
  /// the persistent result cache keys on. 0 when the model's text cannot
  /// round-trip (no content identity).
  std::uint64_t content_fingerprint = 0;
  [[nodiscard]] bool has_variants() const noexcept { return interfaces > 0; }
};

/// Validation findings (core graph pass + variant pass when applicable).
/// A response with errors is still a *successful* operation — the findings
/// are the payload; Result failure is reserved for not being able to run
/// validation at all.
struct ValidateResponse {
  std::string model;
  support::DiagnosticList findings;
  [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
  [[nodiscard]] bool has_errors() const noexcept { return findings.has_errors(); }
};

struct SimulateResponse {
  std::string model;
  sim::SimResult result;  ///< full id-indexed result for power users

  struct ProcessRow {
    std::string name;
    std::int64_t firings = 0;
    support::Duration busy{};
    std::int64_t reconfigurations = 0;
  };
  struct ChannelRow {
    std::string name;
    std::int64_t produced = 0;
    std::int64_t consumed = 0;
    std::int64_t occupancy = 0;
    std::int64_t max_occupancy = 0;
  };
  std::vector<ProcessRow> processes;
  std::vector<ChannelRow> channels;
  std::string timeline;  ///< rendered when SimulateRequest::render_timeline
};

struct AnalyzeResponse {
  std::string model;
  AnalyzeRequest request;  ///< which passes ran (renderers skip the others)

  struct Deadlock {
    std::vector<std::string> cycle;  ///< process names, in cycle order
    std::int64_t initial_tokens = 0;
    std::int64_t required_tokens = 0;
    std::string description;
  };
  std::vector<Deadlock> deadlocks;

  std::vector<analysis::ChannelFlow> buffer_flows;
  std::vector<analysis::LatencyCheck> latency_checks;

  struct Structure {
    bool acyclic = false;
    std::vector<std::string> sources;
    std::vector<std::string> sinks;
    std::vector<std::string> dead;  ///< processes that can never activate
    std::size_t components = 0;
  };
  Structure structure;

  [[nodiscard]] bool deadlock_free() const noexcept { return deadlocks.empty(); }
};

struct ExploreResponse {
  std::string model;
  synth::ExploreResult result;
  std::string problem;               ///< synthesis problem name
  std::size_t applications = 0;      ///< variant bindings explored jointly
  std::size_t elements = 0;          ///< size of the shared element universe
  std::string library_origin;        ///< "curated", "derived", or "request"
};

struct ParetoResponse {
  std::string model;
  std::vector<synth::ParetoPoint> points;  ///< ascending cost, non-dominated
  std::size_t applications = 0;
  std::string library_origin;
};

/// Ranked outcome table of Session::compare() — the paper's Table 1 shape.
/// Independent synthesis contributes one row per application (the table's
/// "Application k" rows); every other strategy one system-level row.
struct CompareResponse {
  std::string model;
  std::string problem;
  std::size_t applications = 0;
  std::string library_origin;

  /// One tried application order of an order-sensitive baseline, in the
  /// order it was tried (identity first) — the order-sensitivity of the
  /// literature baselines as data, not just a best/worst spread.
  struct OrderOutcome {
    std::vector<std::size_t> order;  ///< applied permutation; empty = identity
    double total = 0.0;
    double worst_utilization = 0.0;
    bool feasible = false;
    std::int64_t decisions = 0;
  };

  struct Row {
    std::string strategy;  ///< canonical strategy name
    /// Application name for per-application (independent) rows, "system"
    /// for whole-system strategies — only system rows are ranked.
    std::string scope;
    /// Best outcome; for order-permuted baselines the best over all orders
    /// (under the request's objective chain).
    synth::StrategyOutcome outcome;
    std::size_t orders_tried = 1;
    double worst_total = 0.0;     ///< worst cost over the tried orders
    std::int64_t decisions = 0;   ///< summed over every tried order
    std::int64_t evaluations = 0; ///< summed over every tried order
    /// Per-order outcome list; populated for order-sensitive strategies
    /// (one entry even without a sweep: the identity order).
    std::vector<OrderOutcome> per_order;
    [[nodiscard]] bool system() const noexcept { return scope == "system"; }
  };
  std::vector<Row> rows;  ///< canonical presentation order

  /// Objective chain the ranking used (echo of the request; empty = total
  /// cost only).
  std::vector<synth::RankObjective> objectives;

  /// Indices into `rows` of the system-level rows: feasible before
  /// infeasible, then by the objective chain (ties keep canonical order).
  std::vector<std::size_t> ranking;

  /// The winning system-level row (nullptr when no system strategy ran).
  [[nodiscard]] const Row* best() const noexcept {
    return ranking.empty() ? nullptr : &rows[ranking.front()];
  }
  /// Row of `strategy` with system scope, or nullptr.
  [[nodiscard]] const Row* find(std::string_view strategy) const noexcept {
    for (const Row& row : rows) {
      if (row.system() && row.strategy == strategy) return &row;
    }
    return nullptr;
  }
};

// --- the v5 envelope ---------------------------------------------------------

/// One alternative per evaluation kind — what Session::call returns and the
/// wire protocol transports. The alternative always matches the request's
/// payload kind.
using AnyResponse =
    std::variant<SimulateResponse, AnalyzeResponse, ExploreResponse, ParetoResponse,
                 CompareResponse>;

/// The evaluation kind behind an envelope response.
[[nodiscard]] RequestKind kind_of(const AnyResponse& response) noexcept;

/// The response's model name (every alternative carries one).
[[nodiscard]] const std::string& model_of(const AnyResponse& response) noexcept;

}  // namespace spivar::api
