#include "api/store.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "api/detail.hpp"
#include "corpus/spec.hpp"
#include "support/hash.hpp"
#include "models/synthetic.hpp"
#include "spi/textio.hpp"
#include "variant/textio.hpp"

namespace spivar::api {

using detail::guarded;

namespace {

/// Derived fallback library: the deterministic per-process synthetic library,
/// plus — for cluster-atomic problems — one aggregated entry per cluster
/// (member loads/costs/WCETs summed, capabilities intersected), so both
/// granularities can be explored on models without a curated library.
synth::ImplLibrary derive_library(const variant::VariantModel& model,
                                  synth::ElementGranularity granularity) {
  synth::ImplLibrary library = models::make_synthetic_library(model);
  if (granularity != synth::ElementGranularity::kClusterAtomic) return library;

  for (support::ClusterId cid : model.cluster_ids()) {
    const variant::Cluster& cluster = model.cluster(cid);
    synth::ElementImpl aggregate;
    aggregate.sw_load = 0.0;
    bool any = false;
    for (support::ProcessId pid : cluster.processes) {
      const spi::Process& process = model.graph().process(pid);
      if (process.is_virtual || !library.contains(process.name)) continue;
      const synth::ElementImpl& member = library.at(process.name);
      aggregate.sw_load += member.sw_load;
      aggregate.sw_wcet = aggregate.sw_wcet + member.sw_wcet;
      aggregate.hw_cost += member.hw_cost;
      aggregate.hw_wcet = aggregate.hw_wcet + member.hw_wcet;
      aggregate.can_sw = aggregate.can_sw && member.can_sw;
      aggregate.can_hw = aggregate.can_hw && member.can_hw;
      any = true;
    }
    if (any) library.add(cluster.name, aggregate);
  }
  return library;
}

/// The uncached resolution behind default_setup()/resolve_setup().
SynthesisSetup compute_setup(const StoreEntry& entry,
                             const std::optional<synth::ProblemOptions>& problem,
                             const std::optional<synth::ImplLibrary>& library) {
  SynthesisSetup setup;
  const BuiltinModel* builtin = entry.builtin();
  const bool curated = builtin != nullptr && builtin->library != nullptr;

  synth::ProblemOptions options;
  if (problem.has_value()) {
    options = *problem;
  } else if (curated) {
    options = builtin->problem;
  } else {
    options = {.granularity = synth::ElementGranularity::kProcess};
  }

  // A curated library is calibrated for one granularity; a request that
  // overrides it gets the derived library instead (which covers the
  // requested granularity) rather than opaque missing-element errors.
  const bool curated_matches = curated && options.granularity == builtin->problem.granularity;

  if (library.has_value()) {
    setup.library = *library;
    setup.library_origin = "request";
  } else if (curated_matches) {
    setup.library = builtin->library(entry.model());
    setup.library_origin = "curated";
  } else {
    setup.library = derive_library(entry.model(), options.granularity);
    setup.library_origin = "derived";
  }
  setup.problem = synth::problem_from_model(entry.model(), options);
  return setup;
}

}  // namespace

// --- StoreEntry --------------------------------------------------------------

StoreEntry::StoreEntry(ModelId id, std::uint64_t generation, std::string origin,
                       variant::VariantModel model, const BuiltinModel* builtin,
                       std::uint64_t content_salt)
    : id_(id),
      generation_(generation),
      origin_(std::move(origin)),
      model_(std::move(model)),
      builtin_(builtin),
      content_salt_(content_salt) {}

std::shared_ptr<const SynthesisSetup> StoreEntry::default_setup() const {
  std::call_once(setup_once_, [this] {
    setup_ = std::make_shared<const SynthesisSetup>(
        compute_setup(*this, std::nullopt, std::nullopt));
  });
  return setup_;
}

std::uint64_t StoreEntry::content_fingerprint() const {
  std::call_once(content_once_, [this] {
    std::uint64_t digest = variant::content_fingerprint(model_);
    // A tenant salt re-keys the restart-stable identity so salted and
    // unsalted (or differently-salted) loads of the same text never share
    // persistent-tier entries. 0 stays 0 — "no content identity" must keep
    // meaning "never touches disk" regardless of tenant.
    if (digest != 0 && content_salt_ != 0) {
      support::Fnv1aHasher hasher;
      hasher.u64(digest);
      hasher.u64(content_salt_);
      digest = hasher.digest();
      if (digest == 0) digest = 1;
    }
    content_fingerprint_ = digest;
  });
  return content_fingerprint_;
}

std::shared_ptr<const SynthesisSetup> resolve_setup(
    const StoreEntry& entry, const std::optional<synth::ProblemOptions>& problem,
    const std::optional<synth::ImplLibrary>& library) {
  if (!problem.has_value() && !library.has_value()) return entry.default_setup();
  return std::make_shared<const SynthesisSetup>(compute_setup(entry, problem, library));
}

// --- ModelStore --------------------------------------------------------------

Result<ModelInfo> ModelStore::load_text(std::string_view text, std::string_view name,
                                        std::uint64_t content_salt) {
  return guarded<ModelInfo>([&]() -> Result<ModelInfo> {
    // Variant-aware: text with a `variants v1` section reconstructs the
    // cluster/interface structure, plain graph text loads flat.
    variant::VariantModel model = variant::parse_text(text);
    if (!name.empty()) model.graph().set_name(std::string{name});
    return adopt("text", std::move(model), nullptr, content_salt);
  });
}

Result<ModelInfo> ModelStore::load_file(const std::string& path, std::uint64_t content_salt) {
  return guarded<ModelInfo>([&]() -> Result<ModelInfo> {
    std::error_code ec;
    if (!std::filesystem::is_regular_file(path, ec)) {
      return Result<ModelInfo>::failure(diag::kIoError, "'" + path + "' is not a readable file");
    }
    std::ifstream in{path};
    if (!in) return Result<ModelInfo>::failure(diag::kIoError, "cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return adopt(path, variant::parse_text(buffer.str()), nullptr, content_salt);
  });
}

Result<ModelInfo> ModelStore::load_builtin(std::string_view name) {
  return load_builtin(LoadBuiltinRequest{.name = std::string{name}});
}

Result<ModelInfo> ModelStore::load_builtin(const LoadBuiltinRequest& request,
                                           std::uint64_t content_salt) {
  return guarded<ModelInfo>([&]() -> Result<ModelInfo> {
    const BuiltinModel* builtin = find_builtin(request.name);
    if (!builtin) {
      // A sweep/ name that failed to mint is malformed — surface the name
      // grammar instead of the generic unknown-builtin message.
      if (corpus::is_corpus_name(request.name)) {
        std::string error;
        (void)corpus::parse_name(request.name, &error);
        return Result<ModelInfo>::failure(diag::kUnknownBuiltin, error);
      }
      return Result<ModelInfo>::failure(
          diag::kUnknownBuiltin,
          "no built-in model '" + request.name + "' (see Session::builtins())");
    }
    return adopt("builtin:" + builtin->name, builtin->make(request.options), builtin,
                 content_salt);
  });
}

Result<ModelInfo> ModelStore::load_model(std::string_view spec, std::uint64_t content_salt) {
  // Corpus names route through the builtin path even when malformed, so the
  // caller sees a grammar diagnostic rather than a missing-file error.
  if (find_builtin(spec) || corpus::is_corpus_name(spec)) {
    return load_builtin(LoadBuiltinRequest{.name = std::string{spec}}, content_salt);
  }
  return load_file(std::string{spec}, content_salt);
}

Result<ModelInfo> ModelStore::load(variant::VariantModel model, std::string_view origin,
                                   std::uint64_t content_salt) {
  return guarded<ModelInfo>([&]() -> Result<ModelInfo> {
    return adopt(std::string{origin}, std::move(model), nullptr, content_salt);
  });
}

Result<ModelInfo> ModelStore::adopt(std::string origin, variant::VariantModel model,
                                    const BuiltinModel* builtin, std::uint64_t content_salt) {
  // Id and generation are atomic draws, so entry construction (and any
  // model factory work) happens outside the table lock; only the insertion
  // is serialized. A draw wasted by a throwing factory is fine — ids are
  // never reused anyway.
  const ModelId id{next_id_.fetch_add(1, std::memory_order_relaxed)};
  const std::uint64_t generation = generation_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto entry = std::make_shared<const StoreEntry>(id, generation, std::move(origin),
                                                  std::move(model), builtin, content_salt);
  {
    std::lock_guard lock{mutex_};
    entries_.emplace(id.value(), entry);
  }
  return Result<ModelInfo>::success(describe(id, *entry));
}

UnloadStatus ModelStore::unload(ModelId id) {
  std::shared_ptr<ResultCache> cache;
  {
    std::lock_guard lock{mutex_};
    const auto it = entries_.find(id.value());
    if (it == entries_.end()) return UnloadStatus::kNeverLoaded;
    if (it->second == nullptr) return UnloadStatus::kAlreadyUnloaded;
    it->second = nullptr;  // tombstone: the id stays known, never reused
    cache = cache_;
  }
  generation_.fetch_add(1, std::memory_order_relaxed);
  // Eager invalidation outside the table lock: correctness already holds
  // (the id is never reused, so no future lookup can hit these entries) —
  // this frees the memory and feeds the invalidation counter.
  if (cache) cache->invalidate_model(id.value());
  return UnloadStatus::kUnloaded;
}

std::shared_ptr<ResultCache> ModelStore::enable_cache(CacheConfig config) {
  std::lock_guard lock{mutex_};
  if (!cache_) cache_ = std::make_shared<ResultCache>(config);
  return cache_;
}

std::shared_ptr<ResultCache> ModelStore::cache() const {
  std::lock_guard lock{mutex_};
  return cache_;
}

std::optional<CacheStats> ModelStore::cache_stats() const {
  const auto cache = this->cache();
  if (!cache) return std::nullopt;
  return cache->stats();
}

ModelStore::Snapshot ModelStore::find(ModelId id) const {
  std::lock_guard lock{mutex_};
  const auto it = entries_.find(id.value());
  return it == entries_.end() ? nullptr : it->second;
}

std::vector<ModelInfo> ModelStore::models() const {
  std::vector<ModelInfo> out;
  std::lock_guard lock{mutex_};
  for (const auto& [raw, snapshot] : entries_) {
    if (snapshot) out.push_back(describe(ModelId{raw}, *snapshot));
  }
  return out;
}

Result<ModelInfo> ModelStore::info(ModelId id) const {
  const Snapshot snapshot = find(id);
  if (!snapshot) return detail::unknown_model<ModelInfo>(id);
  return Result<ModelInfo>::success(describe(id, *snapshot));
}

std::size_t ModelStore::size() const {
  std::lock_guard lock{mutex_};
  std::size_t live = 0;
  for (const auto& [raw, snapshot] : entries_) {
    if (snapshot) ++live;
  }
  return live;
}

ModelInfo describe(ModelId id, const StoreEntry& entry) {
  return ModelInfo{
      .id = id,
      .name = entry.model().graph().name(),
      .origin = entry.origin(),
      .processes = entry.model().graph().process_count(),
      .channels = entry.model().graph().channel_count(),
      .interfaces = entry.model().interface_count(),
      .clusters = entry.model().cluster_count(),
      .content_fingerprint = entry.content_fingerprint(),
  };
}

}  // namespace spivar::api
