// api::ModelStore — thread-safe, share-by-snapshot model ownership.
//
// The store owns every loaded model and hands out *immutable snapshots*:
// `shared_ptr<const StoreEntry>` holding the model, its registry entry (when
// loaded from a builtin) and a memoized default SynthesisSetup. Any number
// of sessions attach to one store, so a model is parsed/built once and
// evaluated from many sessions — the cross-session sharding seam.
//
//   auto store = std::make_shared<api::ModelStore>();
//   api::Session a{store};                        // loads are visible to b
//   api::Session b{store, api::make_executor(4)}; // shards the same models
//
// Concurrency contract:
//   * load/unload/find/models are safe to call from any thread.
//   * Snapshots are immutable; an in-flight batch that captured a snapshot
//     keeps evaluating it even if the model is unloaded concurrently.
//   * unload is tombstone-only: the id is never reused, so a store can tell
//     "was unloaded" apart from "never existed" (see UnloadStatus).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/cache.hpp"
#include "api/options.hpp"
#include "api/registry.hpp"
#include "api/responses.hpp"
#include "api/result.hpp"
#include "variant/model.hpp"

namespace spivar::api {

/// Outcome of ModelStore::unload / Session::unload. The store keeps a
/// tombstone per unloaded id (ids are never reused), so the three cases are
/// distinguishable forever.
enum class UnloadStatus : std::uint8_t {
  kUnloaded,         ///< a live model was unloaded by this call
  kAlreadyUnloaded,  ///< the id was loaded once and unloaded earlier
  kNeverLoaded,      ///< the store never issued this id
};

[[nodiscard]] constexpr const char* to_string(UnloadStatus status) noexcept {
  switch (status) {
    case UnloadStatus::kUnloaded: return "unloaded";
    case UnloadStatus::kAlreadyUnloaded: return "already-unloaded";
    case UnloadStatus::kNeverLoaded: return "never-loaded";
  }
  return "?";
}

/// True exactly when the call itself removed a live model.
[[nodiscard]] constexpr bool unloaded(UnloadStatus status) noexcept {
  return status == UnloadStatus::kUnloaded;
}

/// Resolved (library, problem) pair for synthesis over one model: explicit
/// request override > curated registry library > derived synthetic one.
struct SynthesisSetup {
  synth::ImplLibrary library;
  synth::SynthesisProblem problem;
  std::string library_origin;  ///< "curated", "derived", or "request"
};

/// One loaded model, immutable after load. Snapshots of this type are what
/// batch tasks capture — never a Session or the store itself.
class StoreEntry {
 public:
  StoreEntry(ModelId id, std::uint64_t generation, std::string origin,
             variant::VariantModel model, const BuiltinModel* builtin,
             std::uint64_t content_salt = 0);

  StoreEntry(const StoreEntry&) = delete;
  StoreEntry& operator=(const StoreEntry&) = delete;

  /// The handle the store issued for this entry (never reused).
  [[nodiscard]] ModelId id() const noexcept { return id_; }
  /// Store mutation epoch at load time. Belt and braces on top of the
  /// never-reused ids: an unload/reload pair always changes (id, generation),
  /// so a result cached for an earlier life of a spec can never be served
  /// for a later one.
  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }
  [[nodiscard]] const std::string& origin() const noexcept { return origin_; }
  [[nodiscard]] const variant::VariantModel& model() const noexcept { return model_; }
  /// Registry entry the model was instantiated from, nullptr otherwise.
  [[nodiscard]] const BuiltinModel* builtin() const noexcept { return builtin_; }

  /// The default synthesis setup (no request overrides), memoized on first
  /// use — concurrent callers share one computation and one instance.
  [[nodiscard]] std::shared_ptr<const SynthesisSetup> default_setup() const;

  /// Canonical content fingerprint of the model
  /// (variant::content_fingerprint of its spit text), memoized on first use.
  /// Unlike id/generation it survives restarts — it keys the persistent
  /// result-cache tier. 0 for the rare model whose text cannot round-trip.
  /// A nonzero content salt (a tenant's namespace key) is mixed in, so the
  /// same model text loaded by two tenants carries two distinct restart-
  /// stable identities and their persistent-tier entries never cross;
  /// salt 0 (the default tenant) keeps the pre-tenancy fingerprint exactly.
  [[nodiscard]] std::uint64_t content_fingerprint() const;

  /// The namespace salt this entry was loaded under (0 = unsalted).
  [[nodiscard]] std::uint64_t content_salt() const noexcept { return content_salt_; }

 private:
  ModelId id_;
  std::uint64_t generation_ = 0;
  std::string origin_;
  variant::VariantModel model_;
  const BuiltinModel* builtin_ = nullptr;
  std::uint64_t content_salt_ = 0;

  mutable std::once_flag setup_once_;
  mutable std::shared_ptr<const SynthesisSetup> setup_;

  mutable std::once_flag content_once_;
  mutable std::uint64_t content_fingerprint_ = 0;
};

/// Resolves the synthesis setup for `entry` under optional request
/// overrides; the no-override path returns the entry's memoized default.
[[nodiscard]] std::shared_ptr<const SynthesisSetup> resolve_setup(
    const StoreEntry& entry, const std::optional<synth::ProblemOptions>& problem,
    const std::optional<synth::ImplLibrary>& library);

class ModelStore {
 public:
  using Snapshot = std::shared_ptr<const StoreEntry>;

  ModelStore() = default;
  ModelStore(const ModelStore&) = delete;
  ModelStore& operator=(const ModelStore&) = delete;

  // --- loading (all thread-safe) -------------------------------------------
  //
  // Every load takes an optional `content_salt` — the namespace key a
  // tenant's StoreView passes through so the entry's restart-stable content
  // identity is scoped to that tenant. The default 0 is the unsalted
  // pre-tenancy identity; direct callers never need to think about it.

  /// Parses a model from "spit" text. `name` overrides the model name for
  /// presentation (empty keeps the parsed one).
  Result<ModelInfo> load_text(std::string_view text, std::string_view name = {},
                              std::uint64_t content_salt = 0);

  /// Reads and parses a .spit file.
  Result<ModelInfo> load_file(const std::string& path, std::uint64_t content_salt = 0);

  /// Instantiates a registry model with its default options.
  Result<ModelInfo> load_builtin(std::string_view name);

  /// Instantiates a registry model with a typed option struct.
  Result<ModelInfo> load_builtin(const LoadBuiltinRequest& request,
                                 std::uint64_t content_salt = 0);

  /// Builtin name when it matches one, file path otherwise.
  Result<ModelInfo> load_model(std::string_view spec, std::uint64_t content_salt = 0);

  /// Adopts an already-built model (programmatic construction).
  Result<ModelInfo> load(variant::VariantModel model, std::string_view origin = "adopted",
                         std::uint64_t content_salt = 0);

  /// Tombstones the model: the snapshot is dropped from the table but the id
  /// stays known, so later calls can distinguish the three UnloadStatus
  /// cases. Snapshots already captured (e.g. by an in-flight batch) stay
  /// valid and immutable. When a result cache is attached, every result
  /// cached for the id is invalidated.
  UnloadStatus unload(ModelId id);

  // --- result caching --------------------------------------------------------

  /// Attaches a (snapshot, request)-keyed result cache fronting every eval
  /// path of every session on this store. Idempotent: a second call keeps
  /// the existing cache (and its statistics). Returns the active cache.
  std::shared_ptr<ResultCache> enable_cache(CacheConfig config = {});

  /// The attached cache, or nullptr when caching is off.
  [[nodiscard]] std::shared_ptr<ResultCache> cache() const;

  /// Statistics of the attached cache; nullopt when caching is off.
  [[nodiscard]] std::optional<CacheStats> cache_stats() const;

  // --- lookup ---------------------------------------------------------------

  /// The live snapshot for `id`, or nullptr when unknown or tombstoned.
  [[nodiscard]] Snapshot find(ModelId id) const;

  /// Summaries of every live (non-tombstoned) model, ascending id.
  [[nodiscard]] std::vector<ModelInfo> models() const;

  [[nodiscard]] Result<ModelInfo> info(ModelId id) const;

  /// Live models currently in the table (tombstones excluded).
  [[nodiscard]] std::size_t size() const;

 private:
  Result<ModelInfo> adopt(std::string origin, variant::VariantModel model,
                          const BuiltinModel* builtin, std::uint64_t content_salt);

  mutable std::mutex mutex_;  ///< guards entries_ and cache_
  std::map<std::uint32_t, Snapshot> entries_;  ///< tombstone = null snapshot
  std::atomic<std::uint32_t> next_id_{0};
  /// Mutation epoch: bumped on every load and unload; entries record the
  /// epoch they were created in (part of the result-cache key).
  std::atomic<std::uint64_t> generation_{0};
  std::shared_ptr<ResultCache> cache_;  ///< null until enable_cache
};

/// Summary of `entry` under handle `id` (shared by store and session).
[[nodiscard]] ModelInfo describe(ModelId id, const StoreEntry& entry);

}  // namespace spivar::api
