#include "api/store_view.hpp"

#include <utility>

#include "api/detail.hpp"

namespace spivar::api {

StoreView::StoreView(std::shared_ptr<ModelStore> store, TenantContext tenant, TenantQuota quota)
    : store_(std::move(store)), tenant_(std::move(tenant)), quota_(std::move(quota)) {
  if (!store_) store_ = std::make_shared<ModelStore>();
}

template <typename Loader>
Result<ModelInfo> StoreView::admitted(Loader&& loader) {
  {
    std::lock_guard lock{mutex_};
    if (quota_.max_models != 0 && owned_.size() + pending_ >= quota_.max_models) {
      return Result<ModelInfo>::failure(
          diag::kQuotaExceeded, "tenant '" + tenant_.name + "' is at its model quota (" +
                                    std::to_string(quota_.max_models) +
                                    " live models); unload one first");
    }
    ++pending_;
  }
  Result<ModelInfo> loaded = loader();
  {
    std::lock_guard lock{mutex_};
    --pending_;
    if (loaded.ok()) owned_.insert(loaded.value().id.value());
  }
  if (loaded.ok()) record(loaded.value().id);
  return loaded;
}

void StoreView::record(ModelId id) {
  // Tag the id for per-tenant cache accounting (entry caps, hit/miss
  // breakdowns). The cache may be enabled after a load — the service
  // enables it at startup, so in practice every tenant load finds it.
  if (const auto cache = store_->cache()) cache->bind_model_tenant(id.value(), tenant_.tag);
}

Result<ModelInfo> StoreView::load_text(std::string_view text, std::string_view name) {
  return admitted([&] { return store_->load_text(text, name, tenant_.content_salt()); });
}

Result<ModelInfo> StoreView::load_file(const std::string& path) {
  return admitted([&] { return store_->load_file(path, tenant_.content_salt()); });
}

Result<ModelInfo> StoreView::load_builtin(std::string_view name) {
  return load_builtin(LoadBuiltinRequest{.name = std::string{name}});
}

Result<ModelInfo> StoreView::load_builtin(const LoadBuiltinRequest& request) {
  return admitted([&] { return store_->load_builtin(request, tenant_.content_salt()); });
}

Result<ModelInfo> StoreView::load_model(std::string_view spec) {
  return admitted([&] { return store_->load_model(spec, tenant_.content_salt()); });
}

Result<ModelInfo> StoreView::load(variant::VariantModel model, std::string_view origin) {
  return admitted(
      [&] { return store_->load(std::move(model), origin, tenant_.content_salt()); });
}

bool StoreView::owns(ModelId id) const {
  std::lock_guard lock{mutex_};
  return owned_.contains(id.value());
}

UnloadStatus StoreView::unload(ModelId id) {
  {
    std::lock_guard lock{mutex_};
    if (tombstoned_.contains(id.value())) return UnloadStatus::kAlreadyUnloaded;
    // An id this view never issued is indistinguishable from one that does
    // not exist — even when another tenant (or the host process) holds it
    // live. This is the no-cross-tenant-tombstone guarantee.
    if (!owned_.contains(id.value())) return UnloadStatus::kNeverLoaded;
    owned_.erase(id.value());
    tombstoned_.insert(id.value());
  }
  return store_->unload(id);
}

Result<ModelInfo> StoreView::info(ModelId id) const {
  if (!owns(id)) return detail::unknown_model<ModelInfo>(id);
  return store_->info(id);
}

std::vector<ModelInfo> StoreView::models() const {
  std::vector<ModelInfo> out;
  for (ModelInfo& info : store_->models()) {
    if (owns(info.id)) out.push_back(std::move(info));
  }
  return out;
}

std::size_t StoreView::size() const {
  std::lock_guard lock{mutex_};
  return owned_.size();
}

}  // namespace spivar::api
