#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/diagnostics.hpp"

namespace spivar::support {

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw ModelError("table row has " + std::to_string(cells.size()) +
                     " cells, header has " + std::to_string(header_.size()));
  }
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
      if (c + 1 < cells.size()) os << "  ";
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.to_string();
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace spivar::support
