#include "support/diagnostics.hpp"

#include <sstream>

namespace spivar::support {

void DiagnosticList::throw_if_errors() const {
  if (!has_errors()) return;
  std::ostringstream os;
  os << "model validation failed with " << count(Severity::kError) << " error(s):";
  for (const auto& d : items_) {
    if (d.severity != Severity::kError) continue;
    os << "\n  [" << d.code << "] " << d.message;
  }
  throw ModelError(os.str());
}

std::ostream& operator<<(std::ostream& os, const DiagnosticList& list) {
  for (const auto& d : list.items_) {
    os << to_string(d.severity) << " [" << d.code << "]: " << d.message << '\n';
  }
  return os;
}

}  // namespace spivar::support
