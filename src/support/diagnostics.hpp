// Error handling and validation diagnostics.
//
// Structural misuse of the model API (e.g. constructing an interval with
// lo > hi, connecting a channel twice) throws ModelError. Whole-model
// validation instead *collects* diagnostics so that a front end can report
// all problems at once.
#pragma once

#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace spivar::support {

/// Thrown on structural misuse of the modeling API.
class ModelError : public std::logic_error {
 public:
  explicit ModelError(const std::string& what) : std::logic_error(what) {}
};

enum class Severity { kNote, kWarning, kError };

[[nodiscard]] constexpr const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

/// One finding produced by a validation pass.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;     ///< stable machine-readable code, e.g. "channel-unconnected"
  std::string message;  ///< human-readable explanation

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// Ordered collection of diagnostics with convenience queries.
class DiagnosticList {
 public:
  void add(Severity severity, std::string code, std::string message) {
    items_.push_back({severity, std::move(code), std::move(message)});
  }
  void error(std::string code, std::string message) {
    add(Severity::kError, std::move(code), std::move(message));
  }
  void warning(std::string code, std::string message) {
    add(Severity::kWarning, std::move(code), std::move(message));
  }
  void note(std::string code, std::string message) {
    add(Severity::kNote, std::move(code), std::move(message));
  }

  [[nodiscard]] const std::vector<Diagnostic>& items() const noexcept { return items_; }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }

  [[nodiscard]] bool has_errors() const noexcept {
    for (const auto& d : items_) {
      if (d.severity == Severity::kError) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t count(Severity severity) const noexcept {
    std::size_t n = 0;
    for (const auto& d : items_) {
      if (d.severity == severity) ++n;
    }
    return n;
  }

  /// True iff some diagnostic carries the given code.
  [[nodiscard]] bool has_code(const std::string& code) const noexcept {
    for (const auto& d : items_) {
      if (d.code == code) return true;
    }
    return false;
  }

  void merge(const DiagnosticList& other) {
    items_.insert(items_.end(), other.items_.begin(), other.items_.end());
  }

  /// Throws ModelError summarizing all errors if any error is present.
  void throw_if_errors() const;

  friend std::ostream& operator<<(std::ostream& os, const DiagnosticList& list);

 private:
  std::vector<Diagnostic> items_;
};

}  // namespace spivar::support
