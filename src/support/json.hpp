// Minimal append-style JSON writer.
//
// Powers the experiments harness tables and `spivar_cli models --json`.
// Deliberately tiny: objects, arrays, string/number/bool/null values, no
// parsing. Doubles render as the shortest decimal that round-trips to the
// same IEEE value (same convention as the wire codec), so two runs that
// compute identical numbers emit byte-identical files — the property the
// local-vs-remote determinism check in CI diffs on.
#pragma once

#include <charconv>
#include <cmath>
#include <concepts>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace spivar::support {

class JsonWriter {
 public:
  /// `indent` > 0 pretty-prints with that many spaces per level; 0 emits
  /// compact one-line JSON.
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  /// Object member key; the next value (or container) attaches to it.
  JsonWriter& key(std::string_view name) {
    separate();
    append_string(name);
    out_ += indent_ > 0 ? ": " : ":";
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view text) {
    separate();
    append_string(text);
    return *this;
  }
  JsonWriter& value(const char* text) { return value(std::string_view{text}); }
  JsonWriter& value(bool flag) { return raw(flag ? "true" : "false"); }
  JsonWriter& value(double number) {
    if (!std::isfinite(number)) return raw("null");
    char buffer[64];
    const auto [end, ec] = std::to_chars(buffer, buffer + sizeof(buffer), number);
    return raw(ec == std::errc{} ? std::string_view(buffer, end - buffer) : "0");
  }
  template <typename Int>
    requires std::integral<Int> && (!std::same_as<Int, bool>)
  JsonWriter& value(Int number) {
    return raw(std::to_string(number));
  }
  JsonWriter& null() { return raw("null"); }

  /// A pre-rendered JSON fragment ("12.5", "true") dropped in verbatim —
  /// lets tables carry numbers without re-parsing them.
  JsonWriter& raw(std::string_view fragment) {
    separate();
    out_ += fragment;
    return *this;
  }

  /// The finished document (callers are expected to have balanced every
  /// begin_* with its end_*).
  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  JsonWriter& open(char bracket) {
    separate();
    out_ += bracket;
    counts_.push_back(0);
    return *this;
  }

  JsonWriter& close(char bracket) {
    const bool had_items = !counts_.empty() && counts_.back() > 0;
    if (!counts_.empty()) counts_.pop_back();
    if (had_items) newline();
    out_ += bracket;
    return *this;
  }

  /// Emits the comma/newline context for the next item. A value following
  /// key() attaches inline; anything else is a new element of the enclosing
  /// container.
  void separate() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (counts_.empty()) return;
    if (counts_.back()++ > 0) out_ += ',';
    newline();
  }

  void newline() {
    if (indent_ <= 0) return;
    out_ += '\n';
    out_.append(counts_.size() * static_cast<std::size_t>(indent_), ' ');
  }

  void append_string(std::string_view text) {
    out_ += '"';
    for (const char c : text) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
            out_ += buffer;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<std::size_t> counts_;  ///< items emitted per open container
  bool pending_key_ = false;
  int indent_;
};

}  // namespace spivar::support
