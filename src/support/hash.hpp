// Deterministic streaming hasher for stable fingerprints.
//
// FNV-1a over an explicitly serialized byte stream: every field is fed
// through a typed append (length-prefixed strings, bit-cast doubles), so the
// digest depends only on the logical value — never on padding, pointer
// identity, or container addresses. Used by the synth/api fingerprint layer
// to key the (snapshot, request) result cache; the digest is stable within a
// process run and across runs on the same platform.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

namespace spivar::support {

class Fnv1aHasher {
 public:
  /// Feeds one 64-bit word, byte by byte.
  Fnv1aHasher& u64(std::uint64_t value) noexcept {
    for (int shift = 0; shift < 64; shift += 8) {
      state_ ^= (value >> shift) & 0xffu;
      state_ *= kPrime;
    }
    return *this;
  }

  Fnv1aHasher& i64(std::int64_t value) noexcept {
    return u64(static_cast<std::uint64_t>(value));
  }
  Fnv1aHasher& boolean(bool value) noexcept { return u64(value ? 1 : 0); }
  /// Doubles hash by bit pattern — bit-identical inputs, bit-identical keys.
  Fnv1aHasher& f64(double value) noexcept { return u64(std::bit_cast<std::uint64_t>(value)); }

  /// Length-prefixed, so consecutive strings cannot alias ("ab","c" vs "a","bc").
  Fnv1aHasher& str(std::string_view text) noexcept {
    u64(text.size());
    for (const char c : text) {
      state_ ^= static_cast<unsigned char>(c);
      state_ *= kPrime;
    }
    return *this;
  }

  /// Marks an optional as absent/present before its payload.
  Fnv1aHasher& presence(bool has_value) noexcept { return u64(has_value ? 0x9e3779b9u : 0); }

  [[nodiscard]] std::uint64_t digest() const noexcept { return state_; }

 private:
  static constexpr std::uint64_t kOffset = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t state_ = kOffset;
};

}  // namespace spivar::support
