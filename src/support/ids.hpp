// Strong identifier types for model entities.
//
// Every entity class in the model graph (process, channel, port, cluster,
// interface, mode, ...) is referred to by a small integer index wrapped in a
// distinct type so that indices of different entity kinds cannot be mixed up
// at compile time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace spivar::support {

/// A strongly typed index. `Tag` is an empty struct that makes each
/// instantiation a distinct type; the underlying value is a 32-bit index.
template <typename Tag>
class Id {
 public:
  using value_type = std::uint32_t;

  /// Sentinel for "no entity". Default-constructed ids are invalid.
  static constexpr value_type kInvalid = std::numeric_limits<value_type>::max();

  constexpr Id() noexcept = default;
  constexpr explicit Id(value_type value) noexcept : value_(value) {}

  [[nodiscard]] constexpr value_type value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != kInvalid; }
  [[nodiscard]] constexpr std::size_t index() const noexcept {
    return static_cast<std::size_t>(value_);
  }

  friend constexpr bool operator==(Id a, Id b) noexcept = default;
  friend constexpr auto operator<=>(Id a, Id b) noexcept = default;

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    if (!id.valid()) return os << "#<invalid>";
    return os << '#' << id.value();
  }

 private:
  value_type value_ = kInvalid;
};

struct ProcessTag {};
struct ChannelTag {};
struct EdgeTag {};
struct ModeTag {};
struct PortTag {};
struct ClusterTag {};
struct InterfaceTag {};
struct ConfigurationTag {};
struct TagTag {};       // token tags (interned labels on tokens)
struct ResourceTag {};  // synthesis resources (processors / ASIC modules)
struct ConstraintTag {};

using ProcessId = Id<ProcessTag>;
using ChannelId = Id<ChannelTag>;
using EdgeId = Id<EdgeTag>;
using ModeId = Id<ModeTag>;
using PortId = Id<PortTag>;
using ClusterId = Id<ClusterTag>;
using InterfaceId = Id<InterfaceTag>;
using ConfigurationId = Id<ConfigurationTag>;
using TagId = Id<TagTag>;
using ResourceId = Id<ResourceTag>;
using ConstraintId = Id<ConstraintTag>;

}  // namespace spivar::support

namespace std {
template <typename Tag>
struct hash<spivar::support::Id<Tag>> {
  size_t operator()(spivar::support::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
}  // namespace std
