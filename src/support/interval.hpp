// Closed integer intervals — the "property intervals" of the SPI model.
//
// All abstract process parameters (data rates, latencies) are represented by
// closed intervals [lo, hi] over 64-bit integers. A determinate parameter is
// a singleton interval. Arithmetic is exact; invariants (lo <= hi) are
// enforced at construction.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>

#include "support/diagnostics.hpp"

namespace spivar::support {

class Interval {
 public:
  using value_type = std::int64_t;

  /// The default interval is the singleton [0, 0].
  constexpr Interval() noexcept = default;

  /// Singleton interval [v, v].
  constexpr Interval(value_type v) noexcept : lo_(v), hi_(v) {}  // NOLINT(google-explicit-constructor)

  /// Closed interval [lo, hi]; throws ModelError if lo > hi.
  Interval(value_type lo, value_type hi) : lo_(lo), hi_(hi) {
    if (lo > hi) {
      throw ModelError("interval lower bound " + std::to_string(lo) +
                       " exceeds upper bound " + std::to_string(hi));
    }
  }

  [[nodiscard]] static Interval point(value_type v) { return Interval{v}; }

  [[nodiscard]] constexpr value_type lo() const noexcept { return lo_; }
  [[nodiscard]] constexpr value_type hi() const noexcept { return hi_; }

  /// True iff the interval is a single point (the parameter is determinate).
  [[nodiscard]] constexpr bool is_point() const noexcept { return lo_ == hi_; }

  /// Number of integers contained; width 1 means a point.
  [[nodiscard]] constexpr value_type width() const noexcept { return hi_ - lo_ + 1; }

  [[nodiscard]] constexpr bool contains(value_type v) const noexcept {
    return lo_ <= v && v <= hi_;
  }
  [[nodiscard]] constexpr bool contains(Interval other) const noexcept {
    return lo_ <= other.lo_ && other.hi_ <= hi_;
  }
  [[nodiscard]] constexpr bool overlaps(Interval other) const noexcept {
    return lo_ <= other.hi_ && other.lo_ <= hi_;
  }

  /// Smallest interval containing both (interval union / convex hull).
  [[nodiscard]] Interval hull(Interval other) const {
    return Interval{std::min(lo_, other.lo_), std::max(hi_, other.hi_)};
  }

  /// Intersection, or nullopt when disjoint.
  [[nodiscard]] std::optional<Interval> intersect(Interval other) const {
    const value_type lo = std::max(lo_, other.lo_);
    const value_type hi = std::min(hi_, other.hi_);
    if (lo > hi) return std::nullopt;
    return Interval{lo, hi};
  }

  /// Clamp a value into the interval.
  [[nodiscard]] constexpr value_type clamp(value_type v) const noexcept {
    return std::clamp(v, lo_, hi_);
  }

  /// Exact interval arithmetic.
  friend Interval operator+(Interval a, Interval b) {
    return Interval{a.lo_ + b.lo_, a.hi_ + b.hi_};
  }
  friend Interval operator-(Interval a, Interval b) {
    return Interval{a.lo_ - b.hi_, a.hi_ - b.lo_};
  }
  friend Interval operator*(Interval a, value_type k) {
    if (k >= 0) return Interval{a.lo_ * k, a.hi_ * k};
    return Interval{a.hi_ * k, a.lo_ * k};
  }
  friend Interval operator*(value_type k, Interval a) { return a * k; }
  Interval& operator+=(Interval other) { return *this = *this + other; }

  /// Pointwise max/min extension (used when composing alternative paths).
  [[nodiscard]] Interval max_with(Interval other) const {
    return Interval{std::max(lo_, other.lo_), std::max(hi_, other.hi_)};
  }
  [[nodiscard]] Interval min_with(Interval other) const {
    return Interval{std::min(lo_, other.lo_), std::min(hi_, other.hi_)};
  }

  friend constexpr bool operator==(Interval a, Interval b) noexcept = default;

  [[nodiscard]] std::string to_string() const {
    if (is_point()) return std::to_string(lo_);
    return "[" + std::to_string(lo_) + "," + std::to_string(hi_) + "]";
  }

  friend std::ostream& operator<<(std::ostream& os, Interval iv) {
    return os << iv.to_string();
  }

 private:
  value_type lo_ = 0;
  value_type hi_ = 0;
};

}  // namespace spivar::support
