// Deterministic pseudo-random number generation for simulation policies.
//
// splitmix64: tiny, fast, and fully reproducible across platforms — used by
// the SeededRandom interval-resolution policy and by workload generators.
#pragma once

#include <cstdint>

#include "support/interval.hpp"

namespace spivar::support {

class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound); bound must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

  /// Uniform integer drawn from a closed interval.
  constexpr Interval::value_type pick(Interval iv) noexcept {
    const auto span = static_cast<std::uint64_t>(iv.hi() - iv.lo()) + 1;
    return iv.lo() + static_cast<Interval::value_type>(next_below(span));
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace spivar::support
