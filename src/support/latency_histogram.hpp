// Log-bucketed latency histogram (the HDR-histogram idea, fixed-shape):
// values are binned by [power-of-two magnitude][6-bit mantissa], giving a
// constant-size table whose relative quantile error is bounded by the
// mantissa resolution (< 1/64, ~1.6%) at every scale from 1 µs to ~2^69.
// record() is two shifts and an increment — cheap enough to sit on a load
// generator's per-request path — and histograms merge by addition, so each
// connection thread records into its own and the reporter sums them.
//
// No dependencies, header-only, and deliberately not thread-safe: one
// writer per instance, merge after the writers join.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <limits>

namespace spivar::support {

class LatencyHistogram {
 public:
  static constexpr int kMantissaBits = 6;
  static constexpr std::size_t kBuckets = 64;  ///< magnitude rows
  static constexpr std::size_t kSlots = kBuckets << kMantissaBits;

  /// Records one value (any unit; callers here use microseconds).
  void record(std::uint64_t value) noexcept {
    ++counts_[index_of(value)];
    ++total_;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  /// Adds another histogram's counts into this one.
  void merge(const LatencyHistogram& other) noexcept {
    for (std::size_t i = 0; i < kSlots; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return total_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const noexcept { return total_ ? max_ : 0; }

  /// Mean from bucket midpoints (exact for values < 64, < 1.6% off above).
  [[nodiscard]] double mean() const noexcept {
    if (total_ == 0) return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < kSlots; ++i) {
      if (counts_[i] != 0) sum += static_cast<double>(counts_[i]) * midpoint_of(i);
    }
    return sum / static_cast<double>(total_);
  }

  /// Bulk-loads `n` observations into slot `i` — how an external
  /// atomic-bucket histogram (obs::Histogram) rehydrates a quantile-capable
  /// snapshot from raw bucket counts.
  void add_bucket(std::size_t i, std::uint64_t n) noexcept {
    counts_[i] += n;
    total_ += n;
  }

  /// Merges an externally tracked exact [lo, hi] observation range, so
  /// quantile clamping stays exact for bucket-loaded histograms.
  void note_range(std::uint64_t lo, std::uint64_t hi) noexcept {
    min_ = std::min(min_, lo);
    max_ = std::max(max_, hi);
  }

  /// Magnitude row: values < 64 land in row 0 with exact (1-unit) slots;
  /// above, each doubling gets its own 64-slot row. Public so atomic-bucket
  /// twins (obs::Histogram) share the exact bucket shape.
  static constexpr std::size_t index_of(std::uint64_t value) noexcept {
    const int row = value < 64 ? 0 : std::bit_width(value) - kMantissaBits;
    return (static_cast<std::size_t>(row) << kMantissaBits) +
           static_cast<std::size_t>(value >> row);
  }

  /// Value at quantile q in [0, 1]: the smallest bucket upper bound whose
  /// cumulative count reaches ceil(q * total). Clamped to the exact observed
  /// min/max so p0/p100 are never widened by bucket rounding.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept {
    if (total_ == 0) return 0;
    const double clamped = std::clamp(q, 0.0, 1.0);
    const auto rank =
        static_cast<std::uint64_t>(clamped * static_cast<double>(total_) + 0.999999);
    const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kSlots; ++i) {
      cumulative += counts_[i];
      if (cumulative >= target) return std::clamp(upper_bound_of(i), min_, max_);
    }
    return max_;
  }

 private:
  /// Largest value mapping to slot i (inclusive).
  static constexpr std::uint64_t upper_bound_of(std::size_t i) noexcept {
    const auto row = static_cast<int>(i >> kMantissaBits);
    const std::uint64_t slot = i & (kSlots / kBuckets - 1);
    return ((slot + 1) << row) - 1;
  }

  static constexpr double midpoint_of(std::size_t i) noexcept {
    const auto row = static_cast<int>(i >> kMantissaBits);
    const std::uint64_t slot = i & (kSlots / kBuckets - 1);
    const double lo = static_cast<double>(slot << row);
    const double hi = static_cast<double>(((slot + 1) << row) - 1);
    return (lo + hi) / 2.0;
  }

  std::array<std::uint64_t, kSlots> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

}  // namespace spivar::support
