// Model time.
//
// All latencies and timestamps are integral microseconds wrapped in strong
// types. The paper quotes latencies in milliseconds; `1_ms` == 1000 µs.
// Integer time keeps interval arithmetic exact and simulation deterministic.
#pragma once

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>

#include "support/interval.hpp"

namespace spivar::support {

/// A span of model time in microseconds.
class Duration {
 public:
  using rep = std::int64_t;

  constexpr Duration() noexcept = default;
  constexpr explicit Duration(rep micros) noexcept : micros_(micros) {}

  [[nodiscard]] static constexpr Duration micros(rep v) noexcept { return Duration{v}; }
  [[nodiscard]] static constexpr Duration millis(rep v) noexcept { return Duration{v * 1000}; }
  [[nodiscard]] static constexpr Duration zero() noexcept { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() noexcept {
    return Duration{std::numeric_limits<rep>::max()};
  }

  [[nodiscard]] constexpr rep count() const noexcept { return micros_; }
  [[nodiscard]] constexpr double as_millis() const noexcept {
    return static_cast<double>(micros_) / 1000.0;
  }

  friend constexpr Duration operator+(Duration a, Duration b) noexcept {
    return Duration{a.micros_ + b.micros_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) noexcept {
    return Duration{a.micros_ - b.micros_};
  }
  friend constexpr Duration operator*(Duration a, rep k) noexcept {
    return Duration{a.micros_ * k};
  }
  constexpr Duration& operator+=(Duration other) noexcept {
    micros_ += other.micros_;
    return *this;
  }

  friend constexpr bool operator==(Duration, Duration) noexcept = default;
  friend constexpr auto operator<=>(Duration, Duration) noexcept = default;

  [[nodiscard]] std::string to_string() const {
    if (micros_ % 1000 == 0) return std::to_string(micros_ / 1000) + "ms";
    return std::to_string(micros_) + "us";
  }
  friend std::ostream& operator<<(std::ostream& os, Duration d) { return os << d.to_string(); }

 private:
  rep micros_ = 0;
};

/// An absolute point in model time (µs since simulation start).
class TimePoint {
 public:
  using rep = std::int64_t;

  constexpr TimePoint() noexcept = default;
  constexpr explicit TimePoint(rep micros) noexcept : micros_(micros) {}

  [[nodiscard]] static constexpr TimePoint zero() noexcept { return TimePoint{0}; }
  [[nodiscard]] constexpr rep count() const noexcept { return micros_; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) noexcept {
    return TimePoint{t.micros_ + d.count()};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) noexcept {
    return Duration{a.micros_ - b.micros_};
  }

  friend constexpr bool operator==(TimePoint, TimePoint) noexcept = default;
  friend constexpr auto operator<=>(TimePoint, TimePoint) noexcept = default;

  friend std::ostream& operator<<(std::ostream& os, TimePoint t) {
    return os << '@' << t.micros_ << "us";
  }

 private:
  rep micros_ = 0;
};

namespace literals {
constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::millis(static_cast<Duration::rep>(v));
}
constexpr Duration operator""_us(unsigned long long v) {
  return Duration::micros(static_cast<Duration::rep>(v));
}
}  // namespace literals

/// A latency interval in microseconds: [lo, hi] bounds on execution time.
/// Stored as a plain integer Interval whose values are µs.
class DurationInterval {
 public:
  DurationInterval() = default;
  DurationInterval(Duration point)  // NOLINT(google-explicit-constructor)
      : iv_(point.count()) {}
  DurationInterval(Duration lo, Duration hi) : iv_(lo.count(), hi.count()) {}
  explicit DurationInterval(Interval iv) : iv_(iv) {}

  [[nodiscard]] Duration lo() const noexcept { return Duration{iv_.lo()}; }
  [[nodiscard]] Duration hi() const noexcept { return Duration{iv_.hi()}; }
  [[nodiscard]] Interval raw() const noexcept { return iv_; }
  [[nodiscard]] bool is_point() const noexcept { return iv_.is_point(); }
  [[nodiscard]] bool contains(Duration d) const noexcept { return iv_.contains(d.count()); }
  [[nodiscard]] bool contains(DurationInterval other) const noexcept {
    return iv_.contains(other.iv_);
  }

  [[nodiscard]] DurationInterval hull(DurationInterval other) const {
    return DurationInterval{iv_.hull(other.iv_)};
  }
  friend DurationInterval operator+(DurationInterval a, DurationInterval b) {
    return DurationInterval{a.iv_ + b.iv_};
  }
  [[nodiscard]] DurationInterval max_with(DurationInterval other) const {
    return DurationInterval{iv_.max_with(other.iv_)};
  }

  friend bool operator==(DurationInterval, DurationInterval) noexcept = default;

  [[nodiscard]] std::string to_string() const {
    if (is_point()) return lo().to_string();
    return "[" + lo().to_string() + "," + hi().to_string() + "]";
  }
  friend std::ostream& operator<<(std::ostream& os, DurationInterval d) {
    return os << d.to_string();
  }

 private:
  Interval iv_{0};
};

}  // namespace spivar::support
