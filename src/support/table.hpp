// Plain-text table rendering.
//
// Benches and examples print paper-style tables (e.g. Table 1 "System
// Cost"); this tiny formatter right-pads columns and draws a header rule so
// output is stable and diffable.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace spivar::support {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  TextTable& add_row(std::vector<std::string> cells);

  /// Convenience overload for mixed string/number rows built by the caller.
  TextTable& add_row(std::initializer_list<std::string> cells) {
    return add_row(std::vector<std::string>(cells));
  }

  [[nodiscard]] std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const TextTable& table);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for bench output rows).
[[nodiscard]] std::string format_double(double value, int precision = 2);

}  // namespace spivar::support
