// String interner for token tags.
//
// Token tags ('a', 'b', 'V1', 'suspend', ...) are short labels compared very
// often during activation-rule evaluation; interning makes comparison an
// integer compare and tag sets small sorted id vectors.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/ids.hpp"

namespace spivar::support {

class TagInterner {
 public:
  /// Returns the id for `name`, creating it on first use.
  TagId intern(std::string_view name) {
    auto it = index_.find(std::string(name));
    if (it != index_.end()) return it->second;
    const TagId id{static_cast<TagId::value_type>(names_.size())};
    names_.emplace_back(name);
    index_.emplace(names_.back(), id);
    return id;
  }

  /// Looks up an existing tag without creating it; invalid id when unknown.
  [[nodiscard]] TagId find(std::string_view name) const {
    auto it = index_.find(std::string(name));
    return it == index_.end() ? TagId{} : it->second;
  }

  [[nodiscard]] const std::string& name(TagId id) const { return names_.at(id.index()); }
  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, TagId> index_;
};

}  // namespace spivar::support
