// Exact rational arithmetic.
//
// Used by the cluster-abstraction pass to solve SDF-style balance equations
// (repetition vectors) without floating-point error.
#pragma once

#include <cstdint>
#include <numeric>
#include <ostream>
#include <string>

#include "support/diagnostics.hpp"

namespace spivar::support {

class Rational {
 public:
  using rep = std::int64_t;

  constexpr Rational() noexcept = default;
  constexpr Rational(rep value) noexcept : num_(value), den_(1) {}  // NOLINT(google-explicit-constructor)

  Rational(rep num, rep den) : num_(num), den_(den) {
    if (den_ == 0) throw ModelError("rational with zero denominator");
    normalize();
  }

  [[nodiscard]] constexpr rep num() const noexcept { return num_; }
  [[nodiscard]] constexpr rep den() const noexcept { return den_; }
  [[nodiscard]] constexpr bool is_integer() const noexcept { return den_ == 1; }
  [[nodiscard]] constexpr bool is_zero() const noexcept { return num_ == 0; }

  friend Rational operator+(Rational a, Rational b) {
    return Rational{a.num_ * b.den_ + b.num_ * a.den_, a.den_ * b.den_};
  }
  friend Rational operator-(Rational a, Rational b) {
    return Rational{a.num_ * b.den_ - b.num_ * a.den_, a.den_ * b.den_};
  }
  friend Rational operator*(Rational a, Rational b) {
    return Rational{a.num_ * b.num_, a.den_ * b.den_};
  }
  friend Rational operator/(Rational a, Rational b) {
    if (b.num_ == 0) throw ModelError("rational division by zero");
    return Rational{a.num_ * b.den_, a.den_ * b.num_};
  }

  friend bool operator==(Rational a, Rational b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator<(Rational a, Rational b) noexcept {
    return a.num_ * b.den_ < b.num_ * a.den_;
  }
  friend bool operator<=(Rational a, Rational b) noexcept { return a == b || a < b; }

  [[nodiscard]] std::string to_string() const {
    if (is_integer()) return std::to_string(num_);
    return std::to_string(num_) + "/" + std::to_string(den_);
  }
  friend std::ostream& operator<<(std::ostream& os, Rational r) { return os << r.to_string(); }

 private:
  void normalize() {
    if (den_ < 0) {
      num_ = -num_;
      den_ = -den_;
    }
    const rep g = std::gcd(num_ < 0 ? -num_ : num_, den_);
    if (g > 1) {
      num_ /= g;
      den_ /= g;
    }
    if (num_ == 0) den_ = 1;
  }

  rep num_ = 0;
  rep den_ = 1;
};

/// Least common multiple of two positive rationals' denominators —
/// helper for scaling a rational repetition vector to integers.
[[nodiscard]] inline std::int64_t lcm_denominator(std::int64_t acc, const Rational& r) {
  return std::lcm(acc, r.den());
}

}  // namespace spivar::support
