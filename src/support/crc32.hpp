// CRC-32 (IEEE 802.3 polynomial, reflected) over byte ranges.
//
// The persist layer stamps every on-disk cache entry with the CRC of its
// payload so a truncated or bit-rotted file is detected and skipped instead
// of decoded into a wrong result. Table-driven, allocation-free; the table
// is built once per process.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace spivar::support {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t value = i;
      for (int bit = 0; bit < 8; ++bit) {
        value = (value >> 1) ^ ((value & 1u) ? 0xedb88320u : 0u);
      }
      t[i] = value;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// CRC-32 of `bytes` (the common single-shot form: init 0xffffffff, final
/// xor 0xffffffff — matches zlib's crc32()).
[[nodiscard]] inline std::uint32_t crc32(std::string_view bytes) noexcept {
  const auto& table = detail::crc32_table();
  std::uint32_t state = 0xffffffffu;
  for (const char c : bytes) {
    state = (state >> 8) ^ table[(state ^ static_cast<unsigned char>(c)) & 0xffu];
  }
  return state ^ 0xffffffffu;
}

}  // namespace spivar::support
