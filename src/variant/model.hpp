// The variant-annotated system model.
//
// A VariantModel owns an SPI graph plus the cluster/interface structure laid
// over it (paper §3). The graph holds *all* entities — common part and every
// cluster's internals; membership records which elements belong to which
// variant. VariantBuilder extends GraphBuilder with cluster scoping.
#pragma once

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "spi/builder.hpp"
#include "spi/graph.hpp"
#include "variant/interface.hpp"

namespace spivar::variant {

class VariantModel {
 public:
  VariantModel() = default;
  explicit VariantModel(spi::Graph graph) : graph_(std::move(graph)) {}

  [[nodiscard]] spi::Graph& graph() noexcept { return graph_; }
  [[nodiscard]] const spi::Graph& graph() const noexcept { return graph_; }

  // --- structure ------------------------------------------------------------

  InterfaceId add_interface(Interface iface);
  ClusterId add_cluster(Cluster cluster);

  [[nodiscard]] std::size_t interface_count() const noexcept { return interfaces_.size(); }
  [[nodiscard]] std::size_t cluster_count() const noexcept { return clusters_.size(); }

  [[nodiscard]] const Interface& interface(InterfaceId id) const {
    return interfaces_.at(id.index());
  }
  [[nodiscard]] Interface& interface(InterfaceId id) { return interfaces_.at(id.index()); }
  [[nodiscard]] const Cluster& cluster(ClusterId id) const { return clusters_.at(id.index()); }
  [[nodiscard]] Cluster& cluster(ClusterId id) { return clusters_.at(id.index()); }

  [[nodiscard]] std::vector<InterfaceId> interface_ids() const;
  [[nodiscard]] std::vector<ClusterId> cluster_ids() const;

  [[nodiscard]] std::optional<InterfaceId> find_interface(std::string_view name) const;
  [[nodiscard]] std::optional<ClusterId> find_cluster(std::string_view name) const;

  /// Cluster owning the process, or nullopt for common-part processes.
  [[nodiscard]] std::optional<ClusterId> cluster_of(ProcessId process) const;
  /// Cluster owning the (internal) channel, or nullopt.
  [[nodiscard]] std::optional<ClusterId> cluster_of(ChannelId channel) const;

  // --- related variant sets --------------------------------------------------

  /// Declares that two interfaces select *together*: binding cluster position
  /// k of one implies position k of the other (paper §1: "The variant
  /// selection for these sets may be related or independent").
  void link_interfaces(InterfaceId a, InterfaceId b);

  /// Interfaces linked (directly or transitively) with `id`, including `id`.
  [[nodiscard]] std::vector<InterfaceId> linked_group(InterfaceId id) const;

  /// The declared link pairs, in declaration order (serialized by
  /// variant::write_text).
  [[nodiscard]] const std::vector<std::pair<InterfaceId, InterfaceId>>& links() const noexcept {
    return links_;
  }

  // --- mutual exclusion -------------------------------------------------------

  /// True when the two processes can never be active in the same system
  /// variant: they sit in different clusters of one interface, or in
  /// position-incompatible clusters of linked interfaces.
  [[nodiscard]] bool mutually_exclusive(ProcessId a, ProcessId b) const;

  /// Oracle adapter for spi::validate.
  [[nodiscard]] std::function<bool(ProcessId, ProcessId)> exclusivity_oracle() const;

 private:
  spi::Graph graph_;
  std::vector<Cluster> clusters_;
  std::vector<Interface> interfaces_;
  std::vector<std::pair<InterfaceId, InterfaceId>> links_;
};

/// Builder layering cluster scoping on top of spi::GraphBuilder:
///
///   VariantBuilder vb{"fig2"};
///   auto cio = vb.graph_builder().queue("Ci").id();
///   ...common part...
///   auto iface = vb.interface("theta");
///   vb.port(iface, "i", PortDir::kInput, ci);
///   vb.port(iface, "o", PortDir::kOutput, co);
///   {
///     auto scope = vb.begin_cluster(iface, "cluster1");
///     ...everything built here belongs to cluster1...
///   }
///   vb.selection_rule(iface, "r1", Predicate::has_tag(cv, v1), "cluster1");
///   vb.t_conf(iface, "cluster1", 2_ms);
///   VariantModel model = vb.take();
class VariantBuilder {
 public:
  explicit VariantBuilder(std::string name = "model") : builder_(std::move(name)) {}

  [[nodiscard]] spi::GraphBuilder& graph_builder() noexcept { return builder_; }

  // Shorthand pass-throughs so call sites read naturally.
  spi::ChannelBuilder queue(std::string name) { return builder_.queue(std::move(name)); }
  spi::ChannelBuilder reg(std::string name) { return builder_.reg(std::move(name)); }
  spi::ProcessBuilder process(std::string name);
  support::TagId tag(std::string_view name) { return builder_.tag(name); }

  InterfaceId interface(std::string name);
  VariantBuilder& port(InterfaceId iface, std::string name, PortDir dir, ChannelId external);

  /// RAII cluster scope: graph entities created while the scope is alive are
  /// recorded as members of the cluster.
  class ClusterScope {
   public:
    ~ClusterScope();
    ClusterScope(const ClusterScope&) = delete;
    ClusterScope& operator=(const ClusterScope&) = delete;
    ClusterScope(ClusterScope&& other) noexcept;
    ClusterScope& operator=(ClusterScope&&) = delete;

    [[nodiscard]] ClusterId id() const noexcept { return cluster_; }
    operator ClusterId() const noexcept { return cluster_; }  // NOLINT(google-explicit-constructor)

   private:
    friend class VariantBuilder;
    ClusterScope(VariantBuilder& owner, ClusterId cluster)
        : owner_(&owner), cluster_(cluster) {}
    VariantBuilder* owner_;
    ClusterId cluster_;
  };

  [[nodiscard]] ClusterScope begin_cluster(InterfaceId iface, std::string name);

  /// Explicit membership (alternative to scoping).
  VariantBuilder& assign(ClusterId cluster, ProcessId process);
  VariantBuilder& assign(ClusterId cluster, ChannelId channel);

  VariantBuilder& selection_rule(InterfaceId iface, std::string rule_name, Predicate predicate,
                                 std::string_view cluster_name);
  VariantBuilder& t_conf(InterfaceId iface, std::string_view cluster_name, Duration latency);
  VariantBuilder& initial_cluster(InterfaceId iface, std::string_view cluster_name);
  VariantBuilder& consume_selection_token(InterfaceId iface, bool consume = true);
  VariantBuilder& link(InterfaceId a, InterfaceId b);

  [[nodiscard]] VariantModel take();

 private:
  friend class ClusterScope;
  void end_cluster(ClusterId cluster);
  [[nodiscard]] ClusterId require_cluster(InterfaceId iface, std::string_view name) const;

  spi::GraphBuilder builder_;
  VariantModel model_;  // clusters/interfaces accumulate here; graph moved in take()

  // Open cluster scope bookkeeping (non-nested).
  std::optional<ClusterId> open_cluster_;
  std::size_t scope_process_start_ = 0;
  std::size_t scope_channel_start_ = 0;
};

}  // namespace spivar::variant
