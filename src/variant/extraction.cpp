#include "variant/extraction.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <numeric>
#include <optional>
#include <set>

#include "support/rational.hpp"

namespace spivar::variant {

namespace {

using spi::EdgeDir;
using spi::Graph;
using spi::Mode;
using support::Duration;
using support::EdgeId;
using support::Rational;

/// One internal channel of the cluster with its producing/consuming process.
struct InternalLink {
  ChannelId channel;
  ProcessId producer;
  EdgeId producer_edge;
  ProcessId consumer;
  EdgeId consumer_edge;
};

/// Cluster wiring resolved once per extraction.
struct ClusterWiring {
  std::vector<ProcessId> procs;                ///< cluster processes, model order
  std::map<ProcessId, std::size_t> index_of;   ///< process -> position in procs
  std::vector<InternalLink> links;

  /// Per port of the owning interface: process and edge touching the port.
  struct PortBinding {
    const Port* port;
    ProcessId process;
    EdgeId edge;
  };
  std::vector<PortBinding> port_bindings;
};

ClusterWiring resolve_wiring(const VariantModel& model, const Cluster& cluster,
                             const Interface& iface) {
  const Graph& g = model.graph();
  ClusterWiring w;
  w.procs = cluster.processes;
  for (std::size_t i = 0; i < w.procs.size(); ++i) w.index_of[w.procs[i]] = i;

  const std::set<ProcessId> member(w.procs.begin(), w.procs.end());
  for (ChannelId cid : cluster.channels) {
    const spi::Channel& ch = g.channel(cid);
    InternalLink link{cid, ProcessId{}, EdgeId{}, ProcessId{}, EdgeId{}};
    for (EdgeId e : ch.producers) {
      if (member.contains(g.edge(e).process)) {
        link.producer = g.edge(e).process;
        link.producer_edge = e;
      }
    }
    for (EdgeId e : ch.consumers) {
      if (member.contains(g.edge(e).process)) {
        link.consumer = g.edge(e).process;
        link.consumer_edge = e;
      }
    }
    if (link.producer.valid() && link.consumer.valid()) w.links.push_back(link);
  }

  for (const Port& port : iface.ports) {
    for (ProcessId pid : w.procs) {
      const spi::Process& p = g.process(pid);
      const auto& edges = (port.dir == PortDir::kInput) ? p.inputs : p.outputs;
      for (EdgeId e : edges) {
        if (g.edge(e).channel == port.external) {
          w.port_bindings.push_back({&port, pid, e});
        }
      }
    }
  }
  return w;
}

/// Selects one mode per cluster process.
using Combo = std::vector<const Mode*>;

/// Repetition vector for one combo and one bound selector (lo or hi).
/// Returns per-process integer firing counts, or nullopt when the balance
/// equations are inconsistent for this combination.
std::optional<std::vector<std::int64_t>> solve_repetitions(
    const ClusterWiring& w, const Combo& combo,
    const std::function<std::int64_t(Interval)>& bound) {
  const std::size_t n = w.procs.size();
  std::vector<std::optional<Rational>> rep(n);

  // Adjacency: per process, the links it participates in.
  std::vector<std::vector<const InternalLink*>> adj(n);
  for (const InternalLink& link : w.links) {
    adj[w.index_of.at(link.producer)].push_back(&link);
    adj[w.index_of.at(link.consumer)].push_back(&link);
  }

  for (std::size_t start = 0; start < n; ++start) {
    if (rep[start]) continue;
    rep[start] = Rational{1};
    std::deque<std::size_t> queue{start};
    while (!queue.empty()) {
      const std::size_t u = queue.front();
      queue.pop_front();
      for (const InternalLink* link : adj[u]) {
        const std::size_t pi = w.index_of.at(link->producer);
        const std::size_t ci = w.index_of.at(link->consumer);
        const std::int64_t prod = bound(combo[pi]->production_on(link->producer_edge));
        const std::int64_t cons = bound(combo[ci]->consumption_on(link->consumer_edge));
        if (prod == 0 && cons == 0) continue;
        if (prod == 0 || cons == 0) return std::nullopt;  // one side silent -> no steady state

        if (rep[pi] && rep[ci]) {
          if (!(*rep[pi] * Rational{prod} == *rep[ci] * Rational{cons})) return std::nullopt;
        } else if (rep[pi]) {
          rep[ci] = *rep[pi] * Rational{prod, cons};
          queue.push_back(ci);
        } else if (rep[ci]) {
          rep[pi] = *rep[ci] * Rational{cons, prod};
          queue.push_back(pi);
        }
      }
    }
  }

  // Scale to the smallest integer vector.
  std::int64_t lcm = 1;
  for (const auto& r : rep) lcm = std::lcm(lcm, r->den());
  std::vector<std::int64_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = rep[i]->num() * (lcm / rep[i]->den());
  std::int64_t gcd = 0;
  for (std::int64_t v : out) gcd = std::gcd(gcd, v);
  if (gcd > 1) {
    for (std::int64_t& v : out) v /= gcd;
  }
  return out;
}

/// Longest-path latency through the cluster for one combo and one bound.
/// `cyclic` is set when the cluster graph contains a cycle; then a
/// conservative estimate is returned (max single chain for lo, full serial
/// sum for hi).
std::int64_t path_latency(const ClusterWiring& w, const Combo& combo,
                          const std::vector<std::int64_t>& reps, bool lower_bound,
                          bool& cyclic) {
  const std::size_t n = w.procs.size();
  auto node_latency = [&](std::size_t i) {
    const auto iv = combo[i]->latency;
    return reps[i] * (lower_bound ? iv.lo().count() : iv.hi().count());
  };

  // Successor lists + in-degrees over distinct process pairs.
  std::vector<std::set<std::size_t>> succ(n);
  for (const InternalLink& link : w.links) {
    const std::size_t pi = w.index_of.at(link.producer);
    const std::size_t ci = w.index_of.at(link.consumer);
    if (pi != ci) succ[pi].insert(ci);
  }
  std::vector<int> indeg(n, 0);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v : succ[u]) ++indeg[v];
  }

  std::deque<std::size_t> queue;
  for (std::size_t u = 0; u < n; ++u) {
    if (indeg[u] == 0) queue.push_back(u);
  }
  std::vector<std::int64_t> lp(n, 0);
  std::size_t visited = 0;
  while (!queue.empty()) {
    const std::size_t u = queue.front();
    queue.pop_front();
    ++visited;
    lp[u] += node_latency(u);
    for (std::size_t v : succ[u]) {
      lp[v] = std::max(lp[v], lp[u]);
      if (--indeg[v] == 0) queue.push_back(v);
    }
  }

  if (visited != n) {
    cyclic = true;
    if (lower_bound) {
      std::int64_t best = 0;
      for (std::size_t u = 0; u < n; ++u) best = std::max(best, node_latency(u));
      return best;
    }
    std::int64_t sum = 0;
    for (std::size_t u = 0; u < n; ++u) sum += node_latency(u);
    return sum;
  }
  return *std::max_element(lp.begin(), lp.end());
}

/// Extracted mode for one combo (or for the hulled fallback combo).
ExtractedMode extract_combo(const ClusterWiring& w, const Cluster& cluster, const Combo& combo,
                            std::string mode_name, ClusterSummary& summary) {
  auto lo = [](Interval iv) { return iv.lo(); };
  auto hi = [](Interval iv) { return iv.hi(); };

  auto reps_lo = solve_repetitions(w, combo, lo);
  auto reps_hi = solve_repetitions(w, combo, hi);
  std::vector<std::int64_t> rlo, rhi;
  if (!reps_lo || !reps_hi) {
    summary.used_fallback = true;
    rlo.assign(w.procs.size(), 1);
    rhi.assign(w.procs.size(), 1);
  } else {
    rlo = *reps_lo;
    rhi = *reps_hi;
  }

  // Record repetition hulls.
  for (std::size_t i = 0; i < w.procs.size(); ++i) {
    const Interval r{std::min(rlo[i], rhi[i]), std::max(rlo[i], rhi[i])};
    auto [it, inserted] = summary.repetitions.emplace(w.procs[i], r);
    if (!inserted) it->second = it->second.hull(r);
  }

  ExtractedMode em;
  em.name = std::move(mode_name);

  bool cyclic = false;
  const std::int64_t lat_lo = path_latency(w, combo, rlo, /*lower_bound=*/true, cyclic);
  const std::int64_t lat_hi = path_latency(w, combo, rhi, /*lower_bound=*/false, cyclic);
  summary.cyclic = summary.cyclic || cyclic;
  em.latency = DurationInterval{Duration{std::min(lat_lo, lat_hi)}, Duration{std::max(lat_lo, lat_hi)}};

  for (const auto& binding : w.port_bindings) {
    const std::size_t i = w.index_of.at(binding.process);
    const Mode& m = *combo[i];
    if (binding.port->dir == PortDir::kInput) {
      const Interval iv = m.consumption_on(binding.edge);
      const std::int64_t a = rlo[i] * iv.lo();
      const std::int64_t b = rhi[i] * iv.hi();
      em.consumption[binding.port->external] = Interval{std::min(a, b), std::max(a, b)};
    } else {
      const Interval iv = m.production_on(binding.edge);
      const std::int64_t a = rlo[i] * iv.lo();
      const std::int64_t b = rhi[i] * iv.hi();
      em.production[binding.port->external] = Interval{std::min(a, b), std::max(a, b)};
      const spi::TagSet tags = m.tags_on(binding.edge);
      if (!tags.empty()) em.produced_tags[binding.port->external] = tags;
    }
  }
  (void)cluster;
  return em;
}

ExtractedMode hull_of(const std::vector<ExtractedMode>& modes, std::string name) {
  ExtractedMode out;
  out.name = std::move(name);
  out.latency = modes.front().latency;
  for (const ExtractedMode& m : modes) out.latency = out.latency.hull(m.latency);

  auto hull_rates = [&](auto member) {
    std::map<ChannelId, Interval> result;
    std::set<ChannelId> keys;
    for (const ExtractedMode& m : modes) {
      for (const auto& [c, iv] : m.*member) keys.insert(c);
    }
    for (ChannelId c : keys) {
      std::optional<Interval> acc;
      for (const ExtractedMode& m : modes) {
        auto it = (m.*member).find(c);
        const Interval iv = it == (m.*member).end() ? Interval{0} : it->second;
        acc = acc ? acc->hull(iv) : iv;
      }
      result[c] = *acc;
    }
    return result;
  };
  out.consumption = hull_rates(&ExtractedMode::consumption);
  out.production = hull_rates(&ExtractedMode::production);

  for (const ExtractedMode& m : modes) {
    for (const auto& [c, tags] : m.produced_tags) {
      out.produced_tags[c] = out.produced_tags[c].union_with(tags);
    }
  }
  return out;
}

/// Synthetic per-process hull mode used when the combination count explodes.
Mode hull_process_mode(const spi::Process& p) {
  Mode out;
  out.name = p.name + "#hull";
  out.latency = p.modes.front().latency;
  for (const Mode& m : p.modes) out.latency = out.latency.hull(m.latency);

  std::set<EdgeId> keys;
  for (const Mode& m : p.modes) {
    for (const auto& [e, iv] : m.consumption) keys.insert(e);
  }
  for (EdgeId e : keys) {
    std::optional<Interval> acc;
    for (const Mode& m : p.modes) {
      const Interval iv = m.consumption_on(e);
      acc = acc ? acc->hull(iv) : iv;
    }
    out.consumption[e] = *acc;
  }
  keys.clear();
  for (const Mode& m : p.modes) {
    for (const auto& [e, iv] : m.production) keys.insert(e);
  }
  for (EdgeId e : keys) {
    std::optional<Interval> acc;
    for (const Mode& m : p.modes) {
      const Interval iv = m.production_on(e);
      acc = acc ? acc->hull(iv) : iv;
    }
    out.production[e] = *acc;
  }
  for (const Mode& m : p.modes) {
    for (const auto& [e, tags] : m.produced_tags) {
      out.produced_tags[e] = out.produced_tags[e].union_with(tags);
    }
  }
  return out;
}

}  // namespace

ClusterSummary extract_cluster(const VariantModel& model, support::ClusterId id,
                               const ExtractionOptions& options) {
  const Cluster& cluster = model.cluster(id);
  const Interface& iface = model.interface(cluster.interface);
  const Graph& g = model.graph();

  ClusterSummary summary;
  summary.cluster = id;
  summary.cluster_name = cluster.name;

  if (cluster.processes.empty()) {
    summary.notes.error("extraction-empty-cluster",
                        "cluster '" + cluster.name + "' has no processes");
    return summary;
  }

  const ClusterWiring wiring = resolve_wiring(model, cluster, iface);

  // Total embedded-mode combinations.
  std::size_t combinations = 1;
  bool overflow = false;
  for (ProcessId pid : wiring.procs) {
    const std::size_t k = g.process(pid).modes.size();
    if (k == 0) {
      summary.notes.error("extraction-process-no-modes",
                          "process '" + g.process(pid).name + "' has no modes");
      return summary;
    }
    if (combinations > options.max_combinations / k + 1) overflow = true;
    combinations *= k;
  }

  std::vector<ExtractedMode> raw_modes;
  if (overflow || combinations > options.max_combinations) {
    // Fall back to the hull of per-process hull modes — coarse but safe.
    summary.notes.note("extraction-combination-cap",
                       "cluster '" + cluster.name + "': " + std::to_string(combinations) +
                           " mode combinations exceed the cap; using per-process hulls");
    std::vector<Mode> hulls;
    hulls.reserve(wiring.procs.size());
    Combo combo(wiring.procs.size());
    for (std::size_t i = 0; i < wiring.procs.size(); ++i) {
      hulls.push_back(hull_process_mode(g.process(wiring.procs[i])));
    }
    for (std::size_t i = 0; i < wiring.procs.size(); ++i) combo[i] = &hulls[i];
    raw_modes.push_back(extract_combo(wiring, cluster, combo, cluster.name + "/hull", summary));
  } else {
    // Mixed-radix enumeration of mode combinations.
    std::vector<std::size_t> digits(wiring.procs.size(), 0);
    for (std::size_t n = 0; n < combinations; ++n) {
      Combo combo(wiring.procs.size());
      std::string name = cluster.name + "/";
      bool all_single = true;
      for (std::size_t i = 0; i < wiring.procs.size(); ++i) {
        const spi::Process& p = g.process(wiring.procs[i]);
        combo[i] = &p.modes[digits[i]];
        if (p.modes.size() > 1) {
          if (!name.ends_with("/")) name += "+";
          name += combo[i]->name;
          all_single = false;
        }
      }
      if (all_single) name = cluster.name + "/m" + std::to_string(n);
      raw_modes.push_back(extract_combo(wiring, cluster, combo, std::move(name), summary));

      // Increment the counter.
      for (std::size_t i = 0; i < digits.size(); ++i) {
        if (++digits[i] < g.process(wiring.procs[i]).modes.size()) break;
        digits[i] = 0;
      }
    }
  }

  if (options.granularity == ExtractionOptions::Granularity::kHull && raw_modes.size() > 1) {
    summary.modes.push_back(hull_of(raw_modes, cluster.name + "/hull"));
  } else {
    summary.modes = std::move(raw_modes);
  }

  if (summary.used_fallback) {
    summary.notes.warning("extraction-unbalanced",
                          "cluster '" + cluster.name +
                              "': balance equations inconsistent for at least one mode "
                              "combination; used single-execution abstraction");
  }
  if (summary.cyclic) {
    summary.notes.note("extraction-cyclic",
                       "cluster '" + cluster.name +
                           "' contains a cycle; latency bounds are conservative");
  }
  return summary;
}

AbstractionResult abstract_interface(const VariantModel& model, support::InterfaceId id,
                                     const ExtractionOptions& options) {
  const Interface& iface = model.interface(id);

  std::vector<ClusterSummary> summaries;
  summaries.reserve(iface.clusters.size());
  for (ClusterId cid : iface.clusters) {
    summaries.push_back(extract_cluster(model, cid, options));
  }

  // Drop every cluster of the interface, then the interface itself.
  std::set<ProcessId> drop_processes;
  std::set<ChannelId> drop_channels;
  for (ClusterId cid : iface.clusters) {
    const Cluster& cl = model.cluster(cid);
    drop_processes.insert(cl.processes.begin(), cl.processes.end());
    drop_channels.insert(cl.channels.begin(), cl.channels.end());
  }
  ModelClone clone = clone_model_excluding(model, drop_processes, drop_channels, {id});

  AbstractionResult result{std::move(clone.model), ProcessId{}, std::move(summaries), {}};
  for (const ClusterSummary& s : result.summaries) result.notes.merge(s.notes);

  Graph& g = result.model.graph();
  spi::Process shell;
  shell.name = iface.name;
  const ProcessId pvid = g.add_process(std::move(shell));
  result.abstract_process = pvid;

  // One edge per interface port.
  std::map<ChannelId, EdgeId> port_edge;  // keyed by NEW channel id
  for (const Port& port : iface.ports) {
    const ChannelId nc = clone.maps.channel_map.at(port.external);
    const EdgeId e = g.connect(pvid, nc,
                               port.dir == PortDir::kInput ? EdgeDir::kChannelToProcess
                                                           : EdgeDir::kProcessToChannel);
    port_edge.emplace(nc, e);
  }

  // Modes (per cluster, in interface order) + configurations.
  spi::Process& pv = g.process(pvid);
  for (std::size_t k = 0; k < iface.clusters.size(); ++k) {
    const ClusterId cid = iface.clusters[k];
    const ClusterSummary& summary = result.summaries[k];

    spi::Configuration conf;
    conf.name = summary.cluster_name;
    conf.t_conf = iface.conf_latency(cid);

    for (const ExtractedMode& em : summary.modes) {
      spi::Mode m;
      m.name = em.name;
      m.latency = em.latency;
      for (const auto& [chan, rate] : em.consumption) {
        m.consumption[port_edge.at(clone.maps.channel_map.at(chan))] = rate;
      }
      for (const auto& [chan, rate] : em.production) {
        m.production[port_edge.at(clone.maps.channel_map.at(chan))] = rate;
      }
      for (const auto& [chan, tags] : em.produced_tags) {
        m.produced_tags[port_edge.at(clone.maps.channel_map.at(chan))] = tags;
      }

      // Dynamic selection through a request queue consumes the request token
      // as part of the selected mode (Figure 4 semantics).
      if (iface.consume_selection_token) {
        for (const SelectionRule& rule : iface.selection) {
          if (rule.cluster != cid) continue;
          for (ChannelId rc : rule.predicate.referenced_channels()) {
            const EdgeId e = port_edge.at(clone.maps.channel_map.at(rc));
            if (!m.consumption.contains(e)) m.consumption[e] = Interval{1};
          }
        }
      }

      conf.modes.push_back(support::ModeId{static_cast<std::uint32_t>(pv.modes.size())});
      pv.modes.push_back(std::move(m));
    }
    pv.configurations.push_back(std::move(conf));

    if (iface.initial == cid) {
      pv.initial_configuration =
          support::ConfigurationId{static_cast<std::uint32_t>(pv.configurations.size() - 1)};
    }
  }

  // Activation rules: data availability plus the cluster selection predicate
  // (paper §4: "rules a1/a2 ... the actual decision about the configuration
  // solely depends on the tag of the token on channel CV").
  for (std::size_t k = 0; k < iface.clusters.size(); ++k) {
    const ClusterId cid = iface.clusters[k];
    const spi::Configuration& conf = pv.configurations[k];

    std::vector<const SelectionRule*> selecting;
    for (const SelectionRule& rule : iface.selection) {
      if (rule.cluster == cid) selecting.push_back(&rule);
    }

    for (support::ModeId mid : conf.modes) {
      const spi::Mode& m = pv.modes[mid.index()];
      spi::Predicate availability = spi::Predicate::always();
      bool have_availability = false;
      for (const auto& [e, rate] : m.consumption) {
        if (rate.lo() <= 0) continue;
        auto term = spi::Predicate::num_at_least(g.edge(e).channel, rate.lo());
        availability = have_availability ? (availability && term) : term;
        have_availability = true;
      }

      if (selecting.empty()) {
        result.notes.note("abstraction-unselected-cluster",
                          "cluster '" + conf.name +
                              "' has no selection rule; its modes activate on data only");
        pv.activation.add_rule("a/" + m.name, availability, mid);
        continue;
      }
      for (const SelectionRule* rule : selecting) {
        auto sel = rule->predicate.remap_channels(
            [&](ChannelId c) { return clone.maps.channel_map.at(c); });
        pv.activation.add_rule(rule->name + "/" + m.name, sel && availability, mid);
      }
    }
  }

  return result;
}

}  // namespace spivar::variant
