// GraphViz export of variant-annotated models.
//
// Extends spi::to_dot with the variant structure: each cluster renders as a
// GraphViz subgraph cluster box inside its interface's labeled region, and
// selection rules are annotated on the interface. This is the picture the
// paper's Figure 2 draws.
#pragma once

#include <string>

#include "variant/model.hpp"

namespace spivar::variant {

struct VariantDotOptions {
  bool show_selection_rules = true;  ///< annotate interfaces with their rules
  bool show_rates = true;
};

[[nodiscard]] std::string to_dot(const VariantModel& model,
                                 const VariantDotOptions& options = {});

}  // namespace spivar::variant
