// Text serialization of variant-annotated models.
//
// The spit format (spi/textio) covers the flat graph only; saving a
// VariantModel through it used to silently drop the cluster/interface
// structure — an `--opt`-configured variant model could not round-trip.
// This module closes that gap with a *versioned* section appended after the
// graph text:
//
//   variants v1
//
//   interface theta
//   cluster cluster1 interface theta t_conf 2ms
//     member process P1
//     member channel cx
//   cluster cluster2 interface theta
//     ...
//   port theta i input Ci
//   port theta o output Co
//   rule theta r1: tag(CV, v1) -> cluster1
//   initial theta cluster1
//   link theta phi
//
// Interfaces, clusters, ports, selection rules, per-cluster configuration
// latencies, initial clusters, the consume-selection-token flag, and linked
// interface pairs all round-trip; declaration order is preserved exactly
// (cluster positions matter: linked-interface exclusivity is positional).
// A model without variant structure writes plain graph text, so every
// existing flat .spit file stays valid, and parse_text accepts both forms.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "variant/model.hpp"

namespace spivar::variant {

/// Canonical spit text: the graph (spi::write_text) plus the `variants v1`
/// section when the model has interfaces. The section addresses entities by
/// name, so models with duplicate interface or cluster names are refused
/// (support::ModelError — surfaced as a diagnostic through the session)
/// rather than written as text the parser would reject.
[[nodiscard]] std::string write_text(const VariantModel& model);

/// Parses spit text with an optional `variants v1` section back into a
/// model. Graph-only input yields a VariantModel with zero interfaces.
/// Throws spi::ParseError (with the offending line) on malformed input and
/// on unsupported section versions.
[[nodiscard]] VariantModel parse_text(std::string_view text);

/// Canonical content fingerprint: the FNV-1a digest of write_text(model).
/// Two models with identical canonical spit text — regardless of which
/// process, store, or store id built them — fingerprint identically, which
/// is what lets a restarted server's disk-tier cache re-hit results for the
/// same models despite fresh store ids. Returns 0 for the rare model that
/// cannot be serialized (duplicate entity names): 0 means "no content
/// identity", and content-keyed consumers skip such models.
[[nodiscard]] std::uint64_t content_fingerprint(const VariantModel& model) noexcept;

}  // namespace spivar::variant
