// Interfaces and cluster selection (paper Defs. 2 and 3).
//
// An interface is a port signature plus the set of port-compatible clusters
// representing the function variants of one system part. The cluster
// selection function maps input-token predicates to clusters; each
// (interface, cluster) pair carries a configuration latency t_conf, and the
// `cur` parameter (the currently selected cluster) is simulation state, kept
// by the simulator, not by the static model.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "spi/predicate.hpp"
#include "support/duration.hpp"
#include "support/ids.hpp"
#include "variant/cluster.hpp"

namespace spivar::variant {

using spi::Predicate;
using support::Duration;

/// Def. 3 — one rule of the cluster selection function.
struct SelectionRule {
  std::string name;
  Predicate predicate;  ///< on tag sets / counts of the interface's input-port channels
  ClusterId cluster;
};

/// Def. 2 (+ Def. 3 attachments).
struct Interface {
  std::string name;
  std::vector<Port> ports;
  std::vector<ClusterId> clusters;

  /// Cluster selection function; empty for pure production variants.
  std::vector<SelectionRule> selection;

  /// Configuration latency per cluster (Def. 3); clusters without an entry
  /// configure in zero time.
  std::map<ClusterId, Duration> t_conf;

  /// Cluster configured before the system starts; nullopt means the first
  /// selection pays its configuration latency.
  std::optional<ClusterId> initial;

  /// Selection-token semantics. Run-time variants (Figure 3) *observe* the
  /// selection token, which stays on its channel; dynamically reconfigured
  /// subsystems (Figure 4) *consume* request tokens from a queue.
  bool consume_selection_token = false;

  [[nodiscard]] Duration conf_latency(ClusterId cluster) const {
    auto it = t_conf.find(cluster);
    return it == t_conf.end() ? Duration::zero() : it->second;
  }

  [[nodiscard]] std::optional<std::size_t> cluster_position(ClusterId cluster) const {
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      if (clusters[i] == cluster) return i;
    }
    return std::nullopt;
  }
};

}  // namespace spivar::variant
