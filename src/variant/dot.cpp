#include "variant/dot.hpp"

#include <sstream>

namespace spivar::variant {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_dot(const VariantModel& model, const VariantDotOptions& options) {
  const spi::Graph& g = model.graph();
  std::ostringstream os;
  os << "digraph \"" << escape(g.name()) << "\" {\n";
  os << "  rankdir=LR;\n  compound=true;\n";

  auto emit_process = [&](support::ProcessId pid, const std::string& indent) {
    const spi::Process& p = g.process(pid);
    os << indent << "p" << pid.value() << " [shape=box,label=\"" << escape(p.name) << "\"";
    if (p.is_virtual) os << ",style=dashed";
    os << "];\n";
  };
  auto emit_channel = [&](support::ChannelId cid, const std::string& indent) {
    const spi::Channel& ch = g.channel(cid);
    os << indent << "c" << cid.value() << " [shape=ellipse";
    if (ch.kind == spi::ChannelKind::kRegister) os << ",peripheries=2";
    os << ",label=\"" << escape(ch.name) << "\"";
    if (ch.is_virtual) os << ",style=dashed";
    os << "];\n";
  };

  // Interface/cluster boxes.
  for (support::InterfaceId iid : model.interface_ids()) {
    const Interface& iface = model.interface(iid);
    os << "  subgraph cluster_iface" << iid.value() << " {\n";
    os << "    label=\"interface " << escape(iface.name);
    if (options.show_selection_rules) {
      for (const SelectionRule& rule : iface.selection) {
        os << "\\n" << escape(rule.name) << " -> " << escape(model.cluster(rule.cluster).name);
      }
    }
    os << "\";\n    style=dashed;\n";
    for (support::ClusterId cid : iface.clusters) {
      const Cluster& cl = model.cluster(cid);
      os << "    subgraph cluster_c" << cid.value() << " {\n";
      os << "      label=\"" << escape(cl.name);
      const auto t_conf = iface.conf_latency(cid);
      if (t_conf > support::Duration::zero()) os << " (t_conf " << t_conf.to_string() << ")";
      os << "\";\n      style=solid;\n";
      for (support::ProcessId pid : cl.processes) emit_process(pid, "      ");
      for (support::ChannelId chid : cl.channels) emit_channel(chid, "      ");
      os << "    }\n";
    }
    os << "  }\n";
  }

  // Common part.
  for (support::ProcessId pid : g.process_ids()) {
    if (!model.cluster_of(pid)) emit_process(pid, "  ");
  }
  for (support::ChannelId cid : g.channel_ids()) {
    if (!model.cluster_of(cid)) emit_channel(cid, "  ");
  }

  // Edges.
  for (support::ProcessId pid : g.process_ids()) {
    const spi::Process& p = g.process(pid);
    for (support::EdgeId e : p.inputs) {
      os << "  c" << g.edge(e).channel.value() << " -> p" << pid.value();
      if (options.show_rates && !p.modes.empty()) {
        os << " [label=\"" << p.modes[0].consumption_on(e).to_string() << "\"]";
      }
      os << ";\n";
    }
    for (support::EdgeId e : p.outputs) {
      os << "  p" << pid.value() << " -> c" << g.edge(e).channel.value();
      if (options.show_rates && !p.modes.empty()) {
        os << " [label=\"" << p.modes[0].production_on(e).to_string() << "\"]";
      }
      os << ";\n";
    }
  }

  os << "}\n";
  return os.str();
}

}  // namespace spivar::variant
