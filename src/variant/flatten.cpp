#include "variant/flatten.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace spivar::variant {

using spi::Graph;
using spi::Process;
using support::ChannelId;
using support::EdgeId;
using support::ModelError;
using support::ProcessId;

GraphClone clone_excluding(const Graph& source, const std::set<ProcessId>& drop_processes,
                           const std::set<ChannelId>& drop_channels) {
  GraphClone out{Graph{source.name()}, {}, {}, {}};
  out.graph.tags() = source.tags();

  for (ChannelId cid : source.channel_ids()) {
    if (drop_channels.contains(cid)) continue;
    spi::Channel copy = source.channel(cid);
    copy.producers.clear();
    copy.consumers.clear();
    out.channel_map.emplace(cid, out.graph.add_channel(std::move(copy)));
  }

  for (ProcessId pid : source.process_ids()) {
    if (drop_processes.contains(pid)) continue;
    const Process& src = source.process(pid);
    Process shell;
    shell.name = src.name;
    shell.is_virtual = src.is_virtual;
    shell.min_period = src.min_period;
    shell.max_firings = src.max_firings;
    shell.configurations = src.configurations;  // mode ids stay valid (modes copied below)
    shell.initial_configuration = src.initial_configuration;
    out.process_map.emplace(pid, out.graph.add_process(std::move(shell)));
  }

  // Recreate edges in ascending original edge-id order so each process keeps
  // its input/output ordering.
  for (std::size_t ei = 0; ei < source.edge_count(); ++ei) {
    const EdgeId eid{static_cast<std::uint32_t>(ei)};
    const spi::Edge& e = source.edge(eid);
    const auto pit = out.process_map.find(e.process);
    const auto cit = out.channel_map.find(e.channel);
    if (pit == out.process_map.end() || cit == out.channel_map.end()) continue;
    out.edge_map.emplace(eid, out.graph.connect(pit->second, cit->second, e.dir));
  }

  // Copy modes (remapping rate keys) and activation rules (remapping
  // predicate channels).
  for (const auto& [old_pid, new_pid] : out.process_map) {
    const Process& src = source.process(old_pid);
    Process& dst = out.graph.process(new_pid);
    for (const spi::Mode& m : src.modes) {
      spi::Mode copy;
      copy.name = m.name;
      copy.latency = m.latency;
      for (const auto& [edge, rate] : m.consumption) {
        if (auto it = out.edge_map.find(edge); it != out.edge_map.end()) {
          copy.consumption[it->second] = rate;
        }
      }
      for (const auto& [edge, rate] : m.production) {
        if (auto it = out.edge_map.find(edge); it != out.edge_map.end()) {
          copy.production[it->second] = rate;
        }
      }
      for (const auto& [edge, tags] : m.produced_tags) {
        if (auto it = out.edge_map.find(edge); it != out.edge_map.end()) {
          copy.produced_tags[it->second] = tags;
        }
      }
      dst.modes.push_back(std::move(copy));
    }

    for (const spi::ActivationRule& rule : src.activation.rules()) {
      bool references_dropped = false;
      for (ChannelId c : rule.predicate.referenced_channels()) {
        if (!out.channel_map.contains(c)) references_dropped = true;
      }
      if (references_dropped) continue;
      dst.activation.add_rule(rule.name,
                              rule.predicate.remap_channels([&](ChannelId c) {
                                return out.channel_map.at(c);
                              }),
                              rule.mode);
    }
  }

  // Constraints survive only if every referenced entity survives.
  for (const spi::LatencyPathConstraint& c : source.constraints().latency) {
    const bool kept = std::all_of(c.path.begin(), c.path.end(), [&](ProcessId p) {
      return out.process_map.contains(p);
    });
    if (!kept) continue;
    spi::LatencyPathConstraint copy = c;
    for (ProcessId& p : copy.path) p = out.process_map.at(p);
    out.graph.constraints().latency.push_back(std::move(copy));
  }
  for (const spi::ThroughputConstraint& c : source.constraints().throughput) {
    if (auto it = out.channel_map.find(c.channel); it != out.channel_map.end()) {
      spi::ThroughputConstraint copy = c;
      copy.channel = it->second;
      out.graph.constraints().throughput.push_back(std::move(copy));
    }
  }
  return out;
}

ModelClone clone_model_excluding(const VariantModel& model,
                                 const std::set<ProcessId>& drop_processes,
                                 const std::set<ChannelId>& drop_channels,
                                 const std::set<support::InterfaceId>& drop_interfaces) {
  GraphClone graph_clone = clone_excluding(model.graph(), drop_processes, drop_channels);
  ModelClone out{VariantModel{std::move(graph_clone.graph)}, std::move(graph_clone), {}, {}};
  const GraphClone& maps = out.maps;

  // Re-create surviving interfaces (and their clusters) with remapped ids.
  for (InterfaceId iid : model.interface_ids()) {
    if (drop_interfaces.contains(iid)) continue;
    const Interface& src = model.interface(iid);
    Interface copy;
    copy.name = src.name;
    copy.consume_selection_token = src.consume_selection_token;
    for (const Port& port : src.ports) {
      copy.ports.push_back({port.name, port.dir, maps.channel_map.at(port.external)});
    }
    // clusters / selection / t_conf / initial re-attached after cluster copy
    out.interface_map.emplace(iid, out.model.add_interface(std::move(copy)));
  }
  for (ClusterId cid : model.cluster_ids()) {
    const Cluster& src = model.cluster(cid);
    if (drop_interfaces.contains(src.interface)) continue;  // clusters dissolve
    Cluster copy;
    copy.name = src.name;
    copy.interface = out.interface_map.at(src.interface);
    for (ProcessId p : src.processes) copy.processes.push_back(out.maps.process_map.at(p));
    for (ChannelId c : src.channels) copy.channels.push_back(out.maps.channel_map.at(c));
    out.cluster_map.emplace(cid, out.model.add_cluster(std::move(copy)));
  }
  for (InterfaceId iid : model.interface_ids()) {
    if (drop_interfaces.contains(iid)) continue;
    const Interface& src = model.interface(iid);
    Interface& dst = out.model.interface(out.interface_map.at(iid));
    for (const SelectionRule& rule : src.selection) {
      dst.selection.push_back({rule.name,
                               rule.predicate.remap_channels([&](ChannelId c) {
                                 return maps.channel_map.at(c);
                               }),
                               out.cluster_map.at(rule.cluster)});
    }
    for (const auto& [cid, latency] : src.t_conf) {
      dst.t_conf[out.cluster_map.at(cid)] = latency;
    }
    if (src.initial) dst.initial = out.cluster_map.at(*src.initial);
  }

  // Preserve links among surviving interfaces.
  for (InterfaceId a : model.interface_ids()) {
    if (!out.interface_map.contains(a)) continue;
    for (InterfaceId b : model.linked_group(a)) {
      if (b <= a || !out.interface_map.contains(b)) continue;
      out.model.link_interfaces(out.interface_map.at(a), out.interface_map.at(b));
    }
  }
  return out;
}

VariantModel flatten(const VariantModel& model, const FlattenChoice& choice) {
  // Check the choice and collect entities to drop.
  std::set<ProcessId> drop_processes;
  std::set<ChannelId> drop_channels;
  std::set<support::InterfaceId> bound;
  for (const auto& [iid, chosen] : choice) {
    const Interface& iface = model.interface(iid);
    if (!iface.cluster_position(chosen)) {
      throw ModelError("flatten: cluster '" + model.cluster(chosen).name +
                       "' does not belong to interface '" + iface.name + "'");
    }
    bound.insert(iid);
    for (ClusterId cid : iface.clusters) {
      if (cid == chosen) continue;
      const Cluster& cl = model.cluster(cid);
      drop_processes.insert(cl.processes.begin(), cl.processes.end());
      drop_channels.insert(cl.channels.begin(), cl.channels.end());
    }
  }
  return std::move(clone_model_excluding(model, drop_processes, drop_channels, bound).model);
}

std::vector<FlattenChoice> enumerate_bindings(const VariantModel& model) {
  const auto interfaces = model.interface_ids();
  if (interfaces.empty()) return {FlattenChoice{}};

  // Partition interfaces into linked groups; each group picks one position.
  std::vector<std::vector<InterfaceId>> groups;
  std::set<InterfaceId> seen;
  for (InterfaceId iid : interfaces) {
    if (seen.contains(iid)) continue;
    auto group = model.linked_group(iid);
    for (InterfaceId g : group) seen.insert(g);
    groups.push_back(std::move(group));
  }

  std::vector<FlattenChoice> result{FlattenChoice{}};
  for (const auto& group : groups) {
    const std::size_t positions = model.interface(group.front()).clusters.size();
    std::vector<FlattenChoice> next;
    next.reserve(result.size() * positions);
    for (const FlattenChoice& base : result) {
      for (std::size_t pos = 0; pos < positions; ++pos) {
        FlattenChoice extended = base;
        for (InterfaceId iid : group) {
          extended[iid] = model.interface(iid).clusters.at(pos);
        }
        next.push_back(std::move(extended));
      }
    }
    result = std::move(next);
  }
  return result;
}

std::string binding_name(const VariantModel& model, const FlattenChoice& choice) {
  std::string out;
  for (const auto& [iid, cid] : choice) {
    if (!out.empty()) out += ",";
    out += model.interface(iid).name + "=" + model.cluster(cid).name;
  }
  return out.empty() ? "<none>" : out;
}

}  // namespace spivar::variant
