#include "variant/validate.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <unordered_map>

#include "spi/validate.hpp"

namespace spivar::variant {

namespace {

using spi::EdgeDir;
using support::DiagnosticList;

void check_membership_uniqueness(const VariantModel& m, DiagnosticList& out) {
  std::unordered_map<std::uint32_t, int> process_owners;
  std::unordered_map<std::uint32_t, int> channel_owners;
  for (ClusterId cid : m.cluster_ids()) {
    const Cluster& cl = m.cluster(cid);
    for (ProcessId p : cl.processes) {
      if (++process_owners[p.value()] == 2) {
        out.error(diag::kProcessMultipleClusters,
                  "process '" + m.graph().process(p).name + "' belongs to several clusters");
      }
    }
    for (ChannelId c : cl.channels) {
      if (++channel_owners[c.value()] == 2) {
        out.error(diag::kChannelMultipleClusters,
                  "channel '" + m.graph().channel(c).name + "' belongs to several clusters");
      }
    }
  }
}

void check_interface(const VariantModel& m, InterfaceId iid, DiagnosticList& out) {
  const Interface& iface = m.interface(iid);
  const spi::Graph& g = m.graph();
  const std::string where = "interface '" + iface.name + "'";

  if (iface.clusters.empty()) {
    out.error(diag::kInterfaceNoClusters, where + " has no clusters");
    return;
  }

  // Port channels must be outside every cluster of this interface.
  std::set<ChannelId> port_channels;
  for (const Port& port : iface.ports) {
    port_channels.insert(port.external);
    const auto owner = m.cluster_of(port.external);
    if (owner && m.cluster(*owner).interface == iid) {
      out.error(diag::kPortChannelInternal,
                where + " port '" + port.name + "' is bound to channel '" +
                    g.channel(port.external).name + "' which is internal to cluster '" +
                    m.cluster(*owner).name + "'");
    }
  }

  // Def. 2: each cluster matches the interface in terms of ports — exactly
  // one embedded process per port, connected in the right direction. Input
  // ports that *no* cluster connects to are selection/observation ports
  // (the selection function reads them, e.g. CV in Figure 3): legal when the
  // selection rules actually reference them.
  std::set<ChannelId> selection_channels;
  for (const SelectionRule& rule : iface.selection) {
    for (ChannelId c : rule.predicate.referenced_channels()) selection_channels.insert(c);
  }
  auto port_connections = [&](const Cluster& cl, const Port& port) {
    int connections = 0;
    for (ProcessId pid : cl.processes) {
      const spi::Process& p = g.process(pid);
      const auto& edges = (port.dir == PortDir::kInput) ? p.inputs : p.outputs;
      for (spi::EdgeId e : edges) {
        if (g.edge(e).channel == port.external) ++connections;
      }
    }
    return connections;
  };
  for (const Port& port : iface.ports) {
    bool any_connection = false;
    for (ClusterId cid : iface.clusters) {
      if (port_connections(m.cluster(cid), port) > 0) any_connection = true;
    }
    if (!any_connection && port.dir == PortDir::kInput) {
      if (!selection_channels.contains(port.external)) {
        out.warning("port-unused", where + " input port '" + port.name +
                                       "' is connected to no cluster and no selection rule");
      }
      continue;  // pure selection port: clusters need not connect
    }
    for (ClusterId cid : iface.clusters) {
      const Cluster& cl = m.cluster(cid);
      const int connections = port_connections(cl, port);
      if (connections != 1) {
        out.error(diag::kClusterPortMismatch,
                  where + " cluster '" + cl.name + "' has " + std::to_string(connections) +
                      " connections to port '" + port.name + "' (expected exactly 1)");
      }
    }
  }

  for (ClusterId cid : iface.clusters) {
    const Cluster& cl = m.cluster(cid);

    // Confinement: embedded processes may touch only internal channels of
    // their own cluster or the interface's port channels.
    std::set<ChannelId> internal(cl.channels.begin(), cl.channels.end());
    for (ProcessId pid : cl.processes) {
      const spi::Process& p = g.process(pid);
      auto check_edge = [&](spi::EdgeId e) {
        const ChannelId c = g.edge(e).channel;
        if (!internal.contains(c) && !port_channels.contains(c)) {
          out.error(diag::kClusterEscape,
                    where + " cluster '" + cl.name + "': process '" + p.name +
                        "' communicates over channel '" + g.channel(c).name +
                        "' which is neither internal nor a port");
        }
      };
      for (spi::EdgeId e : p.inputs) check_edge(e);
      for (spi::EdgeId e : p.outputs) check_edge(e);
    }
  }

  // Selection rules observe only input-port channels.
  std::set<ChannelId> input_ports;
  for (const Port& port : iface.ports) {
    if (port.dir == PortDir::kInput) input_ports.insert(port.external);
  }
  for (const SelectionRule& rule : iface.selection) {
    for (ChannelId c : rule.predicate.referenced_channels()) {
      if (!input_ports.contains(c)) {
        out.error(diag::kSelectionChannelNotPort,
                  where + " selection rule '" + rule.name + "' observes channel '" +
                      g.channel(c).name + "' which is not an input port of the interface");
      }
    }
  }

  // Every cluster should be reachable via selection (or be the initial one),
  // unless the interface is a pure production variant (no selection at all).
  if (!iface.selection.empty()) {
    for (ClusterId cid : iface.clusters) {
      const bool selectable =
          std::any_of(iface.selection.begin(), iface.selection.end(),
                      [&](const SelectionRule& r) { return r.cluster == cid; });
      if (!selectable && iface.initial != cid) {
        out.warning(diag::kClusterUnselectable,
                    where + " cluster '" + m.cluster(cid).name +
                        "' is not selectable by any rule and is not the initial cluster");
      }
    }
  }

  for (const auto& [cid, latency] : iface.t_conf) {
    if (latency < Duration::zero()) {
      out.error(diag::kNegativeConfLatency, where + " has a negative configuration latency");
    }
  }
  if (iface.initial && m.cluster(*iface.initial).interface != iid) {
    out.error(diag::kInitialClusterForeign,
              where + " initial cluster belongs to a different interface");
  }
}

}  // namespace

support::DiagnosticList validate_variants(const VariantModel& model) {
  DiagnosticList out = spi::validate(model.graph(), model.exclusivity_oracle());
  check_membership_uniqueness(model, out);
  for (InterfaceId iid : model.interface_ids()) check_interface(model, iid, out);
  return out;
}

}  // namespace spivar::variant
