#include "variant/textio.hpp"

#include <cctype>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "spi/textio.hpp"
#include "support/diagnostics.hpp"
#include "support/duration.hpp"
#include "support/hash.hpp"

namespace spivar::variant {

namespace {

using spi::ParseError;
// Line/token grammar shared with the graph parser — one comment rule, one
// tokenizer (spi/textio's "shared grammar primitives").
using spi::logical_line;
using spi::split_words;
using spi::strip_whitespace;

InterfaceId require_interface(const VariantModel& model, const std::string& name,
                              std::size_t line) {
  const auto id = model.find_interface(name);
  if (!id) throw ParseError(line, "unknown interface '" + name + "'");
  return *id;
}

ClusterId require_cluster(const VariantModel& model, InterfaceId iface, const std::string& name,
                          std::size_t line) {
  const auto id = model.find_cluster(name);
  if (!id || model.cluster(*id).interface != iface) {
    throw ParseError(line, "interface '" + model.interface(iface).name +
                               "' has no cluster named '" + name + "'");
  }
  return *id;
}

/// Applies one directive of the `variants v1` section to the model.
/// `current_cluster` threads the open cluster for `member` lines.
void apply_directive(VariantModel& model, const std::string& line, std::size_t line_no,
                     std::optional<ClusterId>& current_cluster) {
  const auto words = split_words(line);
  const std::string& head = words[0];
  const auto expect_words = [&](std::size_t at_least) {
    if (words.size() < at_least) throw ParseError(line_no, "truncated '" + head + "' line");
  };

  if (head == "interface") {
    expect_words(2);
    Interface iface;
    iface.name = words[1];
    if (model.find_interface(iface.name)) {
      throw ParseError(line_no, "duplicate interface '" + iface.name + "'");
    }
    for (std::size_t i = 2; i < words.size(); ++i) {
      if (words[i] == "consume_selection_token") {
        iface.consume_selection_token = true;
      } else {
        throw ParseError(line_no, "unknown interface attribute '" + words[i] + "'");
      }
    }
    model.add_interface(std::move(iface));
    current_cluster.reset();
  } else if (head == "cluster") {
    expect_words(4);
    if (words[2] != "interface") {
      throw ParseError(line_no,
                       "cluster syntax: cluster <name> interface <iface> [t_conf <dur>]");
    }
    const InterfaceId iface = require_interface(model, words[3], line_no);
    if (model.find_cluster(words[1])) {
      throw ParseError(line_no, "duplicate cluster '" + words[1] + "'");
    }
    Cluster cluster;
    cluster.name = words[1];
    cluster.interface = iface;
    const ClusterId id = model.add_cluster(std::move(cluster));
    for (std::size_t i = 4; i < words.size(); ++i) {
      if (words[i] == "t_conf") {
        expect_words(i + 2);
        model.interface(iface).t_conf[id] = spi::parse_duration_text(words[++i], line_no);
      } else {
        throw ParseError(line_no, "unknown cluster attribute '" + words[i] + "'");
      }
    }
    current_cluster = id;
  } else if (head == "member") {
    if (!current_cluster) throw ParseError(line_no, "'member' outside a cluster");
    expect_words(3);
    Cluster& cluster = model.cluster(*current_cluster);
    if (words[1] == "process") {
      const auto pid = model.graph().find_process(words[2]);
      if (!pid) throw ParseError(line_no, "member references unknown process '" + words[2] + "'");
      cluster.processes.push_back(*pid);
    } else if (words[1] == "channel") {
      const auto cid = model.graph().find_channel(words[2]);
      if (!cid) throw ParseError(line_no, "member references unknown channel '" + words[2] + "'");
      cluster.channels.push_back(*cid);
    } else {
      throw ParseError(line_no, "member syntax: member process|channel <name>");
    }
  } else if (head == "port") {
    expect_words(5);
    const InterfaceId iface = require_interface(model, words[1], line_no);
    if (words[3] != "input" && words[3] != "output") {
      throw ParseError(line_no, "port syntax: port <iface> <name> input|output <channel>");
    }
    const auto external = model.graph().find_channel(words[4]);
    if (!external) throw ParseError(line_no, "port references unknown channel '" + words[4] + "'");
    model.interface(iface).ports.push_back(
        {words[2], words[3] == "input" ? PortDir::kInput : PortDir::kOutput, *external});
    current_cluster.reset();
  } else if (head == "rule") {
    // rule <iface> <name>: <predicate> -> <cluster>
    const auto colon = line.find(':');
    const auto arrow = line.rfind("->");
    if (colon == std::string::npos || arrow == std::string::npos || arrow < colon) {
      throw ParseError(line_no, "rule syntax: rule <iface> <name>: <predicate> -> <cluster>");
    }
    const auto header = split_words(line.substr(0, colon));
    if (header.size() != 3) {
      throw ParseError(line_no, "rule syntax: rule <iface> <name>: <predicate> -> <cluster>");
    }
    const InterfaceId iface = require_interface(model, header[1], line_no);
    const std::string predicate_text = line.substr(colon + 1, arrow - colon - 1);
    const Predicate predicate = spi::parse_predicate_text(predicate_text, line_no, model.graph());
    const std::string cluster_name = strip_whitespace(line.substr(arrow + 2));
    const ClusterId cluster = require_cluster(model, iface, cluster_name, line_no);
    model.interface(iface).selection.push_back({header[2], predicate, cluster});
    current_cluster.reset();
  } else if (head == "initial") {
    expect_words(3);
    const InterfaceId iface = require_interface(model, words[1], line_no);
    model.interface(iface).initial = require_cluster(model, iface, words[2], line_no);
    current_cluster.reset();
  } else if (head == "link") {
    expect_words(3);
    const InterfaceId a = require_interface(model, words[1], line_no);
    const InterfaceId b = require_interface(model, words[2], line_no);
    try {
      model.link_interfaces(a, b);
    } catch (const support::ModelError& e) {
      throw ParseError(line_no, e.what());
    }
    current_cluster.reset();
  } else {
    throw ParseError(line_no, "unknown variants directive '" + head + "'");
  }
}

}  // namespace

std::string write_text(const VariantModel& model) {
  std::string text = spi::write_text(model.graph());
  if (model.interface_count() == 0) return text;

  const spi::Graph& graph = model.graph();
  const auto channel_name = [&graph](support::ChannelId c) { return graph.channel(c).name; };

  // The section addresses interfaces and clusters by name, so duplicates
  // cannot round-trip — refuse with a diagnosis instead of emitting text
  // the parser would reject (the model layer itself does not enforce
  // global uniqueness).
  const auto require_unique = [](const char* kind, std::set<std::string>& seen,
                                 const std::string& name) {
    if (!seen.insert(name).second) {
      throw support::ModelError(std::string{"textio: duplicate "} + kind + " name '" + name +
                                "' — the variants section requires globally unique " + kind +
                                " names to round-trip");
    }
  };
  std::set<std::string> interface_names;
  std::set<std::string> cluster_names;
  for (InterfaceId iid : model.interface_ids()) {
    require_unique("interface", interface_names, model.interface(iid).name);
  }
  for (ClusterId cid : model.cluster_ids()) {
    require_unique("cluster", cluster_names, model.cluster(cid).name);
  }

  std::ostringstream os;
  os << "variants v1\n\n";

  for (InterfaceId iid : model.interface_ids()) {
    const Interface& iface = model.interface(iid);
    spi::require_serializable_name("interface", iface.name);
    os << "interface " << iface.name;
    if (iface.consume_selection_token) os << " consume_selection_token";
    os << "\n";
  }
  os << "\n";

  // Clusters in global id order: re-adding them in this order reproduces
  // both the global ids and every interface's positional cluster list (the
  // positions carry linked-interface exclusivity).
  for (ClusterId cid : model.cluster_ids()) {
    const Cluster& cluster = model.cluster(cid);
    spi::require_serializable_name("cluster", cluster.name);
    const Interface& iface = model.interface(cluster.interface);
    os << "cluster " << cluster.name << " interface " << iface.name;
    if (const auto it = iface.t_conf.find(cid); it != iface.t_conf.end()) {
      os << " t_conf " << it->second.to_string();
    }
    os << "\n";
    for (support::ProcessId pid : cluster.processes) {
      os << "  member process " << graph.process(pid).name << "\n";
    }
    for (support::ChannelId ch : cluster.channels) {
      os << "  member channel " << channel_name(ch) << "\n";
    }
  }
  os << "\n";

  for (InterfaceId iid : model.interface_ids()) {
    const Interface& iface = model.interface(iid);
    for (const Port& port : iface.ports) {
      spi::require_serializable_name("port", port.name);
      os << "port " << iface.name << " " << port.name << " "
         << (port.dir == PortDir::kInput ? "input" : "output") << " "
         << channel_name(port.external) << "\n";
    }
    for (const SelectionRule& rule : iface.selection) {
      spi::require_serializable_name("rule", rule.name);
      os << "rule " << iface.name << " " << rule.name << ": "
         << rule.predicate.to_text(channel_name, graph.tags()) << " -> "
         << model.cluster(rule.cluster).name << "\n";
    }
    if (iface.initial) {
      os << "initial " << iface.name << " " << model.cluster(*iface.initial).name << "\n";
    }
  }
  for (const auto& [a, b] : model.links()) {
    os << "link " << model.interface(a).name << " " << model.interface(b).name << "\n";
  }
  return text + os.str();
}

VariantModel parse_text(std::string_view text) {
  // First pass: split the graph part from the `variants v1` section. The
  // section marker is a top-level line, so a plain string scan suffices.
  std::istringstream stream{std::string(text)};
  std::string raw;
  std::size_t line_no = 0;
  std::ostringstream graph_part;
  std::vector<std::pair<std::size_t, std::string>> section;
  bool in_section = false;
  while (std::getline(stream, raw)) {
    ++line_no;
    const std::string line = logical_line(raw);
    if (!in_section && line.rfind("variants", 0) == 0 &&
        (line.size() == 8 || std::isspace(static_cast<unsigned char>(line[8])) != 0)) {
      const auto words = split_words(line);
      if (words.size() != 2 || words[1] != "v1") {
        throw ParseError(line_no, "unsupported variants section '" + line +
                                      "' (this reader understands 'variants v1')");
      }
      in_section = true;
      continue;
    }
    if (in_section) {
      if (!line.empty()) section.emplace_back(line_no, line);
    } else {
      graph_part << raw << "\n";
    }
  }

  VariantModel model{spi::parse_text(graph_part.str())};
  std::optional<ClusterId> current_cluster;
  for (const auto& [no, line] : section) {
    apply_directive(model, line, no, current_cluster);
  }
  return model;
}

std::uint64_t content_fingerprint(const VariantModel& model) noexcept {
  try {
    support::Fnv1aHasher hasher;
    hasher.str(write_text(model));
    return hasher.digest();
  } catch (...) {
    // A model that cannot be written as canonical text (duplicate entity
    // names) has no content identity; 0 tells content-keyed consumers to
    // skip it rather than alias unrelated models together.
    return 0;
  }
}

}  // namespace spivar::variant
