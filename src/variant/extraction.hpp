// Parameter extraction and interface abstraction (paper §4).
//
// "The approach we propose in this paper is to abstract clusters to
// processes and to use the concept of process modes to represent dynamic
// function variant selection."
//
// `extract_cluster` derives, for one cluster, the abstract process modes: per
// cluster execution it computes how many times each embedded process fires
// (an SDF-style repetition vector solved with exact rationals on the lower
// and upper rate bounds), the aggregate port rates, the end-to-end latency
// interval along the critical path, and the produced tag sets. A cluster
// whose embedded processes have several modes yields several extracted modes
// (one per consistent mode combination) or a single hull mode, depending on
// the requested granularity — the "abstraction at different levels of
// detail" the paper attributes to designer knowledge.
//
// `abstract_interface` replaces a whole interface by one process PVar whose
// modes are the extracted modes of all clusters, grouped into one Def. 4
// configuration per cluster, with activation rules combining data
// availability and the interface's cluster selection predicates.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"
#include "support/duration.hpp"
#include "support/interval.hpp"
#include "variant/flatten.hpp"
#include "variant/model.hpp"

namespace spivar::variant {

using support::DurationInterval;
using support::Interval;

struct ExtractionOptions {
  enum class Granularity {
    kPerCombination,  ///< one extracted mode per embedded-mode combination
    kHull,            ///< one extracted mode per cluster (parameter hull)
  };
  Granularity granularity = Granularity::kPerCombination;

  /// Above this many embedded-mode combinations the extractor falls back to
  /// the hull of per-process mode hulls and records a note.
  std::size_t max_combinations = 64;
};

/// One abstract process mode derived from a cluster. Rates are keyed by the
/// *external* (port) channels of the owning interface, in source-model ids.
struct ExtractedMode {
  std::string name;
  DurationInterval latency;
  std::map<support::ChannelId, Interval> consumption;
  std::map<support::ChannelId, Interval> production;
  std::map<support::ChannelId, spi::TagSet> produced_tags;
};

struct ClusterSummary {
  support::ClusterId cluster;
  std::string cluster_name;
  std::vector<ExtractedMode> modes;

  /// Firing-count bounds per embedded process for one cluster execution
  /// (hull over mode combinations).
  std::map<support::ProcessId, Interval> repetitions;

  bool used_fallback = false;  ///< balance equations inconsistent → single-execution abstraction
  bool cyclic = false;         ///< cluster graph has a cycle → conservative latency
  support::DiagnosticList notes;
};

[[nodiscard]] ClusterSummary extract_cluster(const VariantModel& model, support::ClusterId id,
                                             const ExtractionOptions& options = {});

struct AbstractionResult {
  VariantModel model;                  ///< interface replaced by the abstract process
  support::ProcessId abstract_process; ///< PVar, in model.graph()
  std::vector<ClusterSummary> summaries;
  support::DiagnosticList notes;
};

[[nodiscard]] AbstractionResult abstract_interface(const VariantModel& model,
                                                   support::InterfaceId id,
                                                   const ExtractionOptions& options = {});

}  // namespace spivar::variant
