// Validation of the variant structure (Defs. 1-3 well-formedness).
//
// Runs the core graph validation with the model's mutual-exclusivity oracle,
// then checks cluster/interface specific invariants: port compatibility of
// all clusters of an interface, confinement of cluster communication to
// ports, and sanity of selection functions.
#pragma once

#include "support/diagnostics.hpp"
#include "variant/model.hpp"

namespace spivar::variant {

namespace diag {
inline constexpr const char* kInterfaceNoClusters = "interface-no-clusters";
inline constexpr const char* kClusterPortMismatch = "cluster-port-mismatch";
inline constexpr const char* kClusterEscape = "cluster-escape";
inline constexpr const char* kSelectionChannelNotPort = "selection-channel-not-port";
inline constexpr const char* kClusterUnselectable = "cluster-unselectable";
inline constexpr const char* kProcessMultipleClusters = "process-multiple-clusters";
inline constexpr const char* kChannelMultipleClusters = "channel-multiple-clusters";
inline constexpr const char* kNegativeConfLatency = "negative-conf-latency";
inline constexpr const char* kInitialClusterForeign = "initial-cluster-foreign";
inline constexpr const char* kPortChannelInternal = "port-channel-internal";
}  // namespace diag

[[nodiscard]] support::DiagnosticList validate_variants(const VariantModel& model);

}  // namespace spivar::variant
