// Clusters and ports (paper Def. 1).
//
// A cluster is a connected subgraph holding one function variant. It
// communicates with the rest of the system only through the ports of the
// interface it belongs to; each port is bound to one external channel, and
// inside each cluster exactly one embedded process connects to that channel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/ids.hpp"

namespace spivar::variant {

using support::ChannelId;
using support::ClusterId;
using support::InterfaceId;
using support::ProcessId;

enum class PortDir : std::uint8_t {
  kInput,   ///< data flows from the external channel into the cluster
  kOutput,  ///< data flows from the cluster onto the external channel
};

[[nodiscard]] constexpr const char* to_string(PortDir d) noexcept {
  return d == PortDir::kInput ? "in" : "out";
}

/// Border crossing of an interface: one external channel per port.
struct Port {
  std::string name;
  PortDir dir = PortDir::kInput;
  ChannelId external;  ///< the channel outside the interface border
};

/// Def. 1 — embedded processes and channels of one function variant. Edges
/// are held by the underlying Graph; embedding is recorded by membership.
struct Cluster {
  std::string name;
  InterfaceId interface;  ///< owning interface (every cluster has exactly one)
  std::vector<ProcessId> processes;
  std::vector<ChannelId> channels;  ///< internal channels

  [[nodiscard]] bool owns(ProcessId p) const {
    for (ProcessId q : processes) {
      if (q == p) return true;
    }
    return false;
  }
  [[nodiscard]] bool owns(ChannelId c) const {
    for (ChannelId d : channels) {
      if (d == c) return true;
    }
    return false;
  }
};

}  // namespace spivar::variant
