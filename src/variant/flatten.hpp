// Production-variant binding (flattening) and binding enumeration.
//
// Production variants are selected by the designer before run time; the
// final product implements a single variant without selection capability
// (paper §4). `flatten` splices the chosen cluster of each bound interface
// into the graph and removes the competing clusters together with the
// interface. `enumerate_bindings` lists all variant combinations, honoring
// linked (related) variant sets.
#pragma once

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "variant/model.hpp"

namespace spivar::variant {

/// Chosen cluster per interface. Interfaces absent from the map stay
/// variant-annotated in the result.
using FlattenChoice = std::map<InterfaceId, ClusterId>;

/// Deep copy of a graph minus the given entities, with id remapping tables.
/// Activation rules whose predicates reference dropped channels are dropped;
/// constraints referencing dropped entities are dropped.
struct GraphClone {
  spi::Graph graph;
  std::unordered_map<support::ProcessId, support::ProcessId> process_map;
  std::unordered_map<support::ChannelId, support::ChannelId> channel_map;
  std::unordered_map<support::EdgeId, support::EdgeId> edge_map;
};

[[nodiscard]] GraphClone clone_excluding(const spi::Graph& source,
                                         const std::set<support::ProcessId>& drop_processes,
                                         const std::set<support::ChannelId>& drop_channels);

/// Deep copy of a whole variant model minus the given graph entities and
/// interfaces (their clusters dissolve). Shared by flatten and abstraction.
struct ModelClone {
  VariantModel model;
  GraphClone maps;
  std::unordered_map<support::InterfaceId, support::InterfaceId> interface_map;
  std::unordered_map<support::ClusterId, support::ClusterId> cluster_map;
};

[[nodiscard]] ModelClone clone_model_excluding(const VariantModel& source,
                                               const std::set<support::ProcessId>& drop_processes,
                                               const std::set<support::ChannelId>& drop_channels,
                                               const std::set<support::InterfaceId>& drop_interfaces);

/// Binds interfaces to clusters. The chosen cluster's contents become common
/// part; unchosen clusters and the bound interfaces vanish.
[[nodiscard]] VariantModel flatten(const VariantModel& model, const FlattenChoice& choice);

/// All consistent complete bindings (linked interfaces select the same
/// cluster position). Order: lexicographic in interface id / position.
[[nodiscard]] std::vector<FlattenChoice> enumerate_bindings(const VariantModel& model);

/// Human-readable binding description, e.g. "theta=cluster1".
[[nodiscard]] std::string binding_name(const VariantModel& model, const FlattenChoice& choice);

}  // namespace spivar::variant
