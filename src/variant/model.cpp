#include "variant/model.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace spivar::variant {

namespace {

template <typename IdT>
IdT make_id(std::size_t index) {
  return IdT{static_cast<typename IdT::value_type>(index)};
}

}  // namespace

// --- VariantModel -------------------------------------------------------------

InterfaceId VariantModel::add_interface(Interface iface) {
  const auto id = make_id<InterfaceId>(interfaces_.size());
  interfaces_.push_back(std::move(iface));
  return id;
}

ClusterId VariantModel::add_cluster(Cluster cluster) {
  const auto id = make_id<ClusterId>(clusters_.size());
  if (!cluster.interface.valid() || cluster.interface.index() >= interfaces_.size()) {
    throw support::ModelError("cluster '" + cluster.name + "' has no owning interface");
  }
  interfaces_[cluster.interface.index()].clusters.push_back(id);
  clusters_.push_back(std::move(cluster));
  return id;
}

std::vector<InterfaceId> VariantModel::interface_ids() const {
  std::vector<InterfaceId> out;
  for (std::size_t i = 0; i < interfaces_.size(); ++i) out.push_back(make_id<InterfaceId>(i));
  return out;
}

std::vector<ClusterId> VariantModel::cluster_ids() const {
  std::vector<ClusterId> out;
  for (std::size_t i = 0; i < clusters_.size(); ++i) out.push_back(make_id<ClusterId>(i));
  return out;
}

std::optional<InterfaceId> VariantModel::find_interface(std::string_view name) const {
  for (std::size_t i = 0; i < interfaces_.size(); ++i) {
    if (interfaces_[i].name == name) return make_id<InterfaceId>(i);
  }
  return std::nullopt;
}

std::optional<ClusterId> VariantModel::find_cluster(std::string_view name) const {
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    if (clusters_[i].name == name) return make_id<ClusterId>(i);
  }
  return std::nullopt;
}

std::optional<ClusterId> VariantModel::cluster_of(ProcessId process) const {
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    if (clusters_[i].owns(process)) return make_id<ClusterId>(i);
  }
  return std::nullopt;
}

std::optional<ClusterId> VariantModel::cluster_of(ChannelId channel) const {
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    if (clusters_[i].owns(channel)) return make_id<ClusterId>(i);
  }
  return std::nullopt;
}

void VariantModel::link_interfaces(InterfaceId a, InterfaceId b) {
  if (a == b) throw support::ModelError("cannot link an interface with itself");
  const std::size_t na = interface(a).clusters.size();
  const std::size_t nb = interface(b).clusters.size();
  if (na != nb) {
    throw support::ModelError("linked interfaces '" + interface(a).name + "' and '" +
                              interface(b).name + "' have different variant counts");
  }
  links_.emplace_back(a, b);
}

std::vector<InterfaceId> VariantModel::linked_group(InterfaceId id) const {
  std::vector<InterfaceId> group{id};
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto& [a, b] : links_) {
      const bool has_a = std::find(group.begin(), group.end(), a) != group.end();
      const bool has_b = std::find(group.begin(), group.end(), b) != group.end();
      if (has_a && !has_b) {
        group.push_back(b);
        grew = true;
      } else if (has_b && !has_a) {
        group.push_back(a);
        grew = true;
      }
    }
  }
  std::sort(group.begin(), group.end());
  return group;
}

bool VariantModel::mutually_exclusive(ProcessId a, ProcessId b) const {
  const auto ca = cluster_of(a);
  const auto cb = cluster_of(b);
  if (!ca || !cb || *ca == *cb) return false;

  const Cluster& cluster_a = cluster(*ca);
  const Cluster& cluster_b = cluster(*cb);
  if (cluster_a.interface == cluster_b.interface) return true;

  // Linked interfaces: different positions can never be co-selected.
  const auto group = linked_group(cluster_a.interface);
  if (std::find(group.begin(), group.end(), cluster_b.interface) == group.end()) return false;
  const auto pos_a = interface(cluster_a.interface).cluster_position(*ca);
  const auto pos_b = interface(cluster_b.interface).cluster_position(*cb);
  return pos_a && pos_b && *pos_a != *pos_b;
}

std::function<bool(ProcessId, ProcessId)> VariantModel::exclusivity_oracle() const {
  return [this](ProcessId a, ProcessId b) { return mutually_exclusive(a, b); };
}

// --- VariantBuilder ----------------------------------------------------------

spi::ProcessBuilder VariantBuilder::process(std::string name) {
  return builder_.process(std::move(name));
}

InterfaceId VariantBuilder::interface(std::string name) {
  Interface iface;
  iface.name = std::move(name);
  return model_.add_interface(std::move(iface));
}

VariantBuilder& VariantBuilder::port(InterfaceId iface, std::string name, PortDir dir,
                                     ChannelId external) {
  model_.interface(iface).ports.push_back({std::move(name), dir, external});
  return *this;
}

VariantBuilder::ClusterScope VariantBuilder::begin_cluster(InterfaceId iface, std::string name) {
  if (open_cluster_) {
    throw support::ModelError("cluster scopes cannot nest (still inside '" +
                              model_.cluster(*open_cluster_).name + "')");
  }
  Cluster cluster;
  cluster.name = std::move(name);
  cluster.interface = iface;
  const ClusterId id = model_.add_cluster(std::move(cluster));
  open_cluster_ = id;
  scope_process_start_ = builder_.graph().process_count();
  scope_channel_start_ = builder_.graph().channel_count();
  return ClusterScope{*this, id};
}

void VariantBuilder::end_cluster(ClusterId cluster_id) {
  if (!open_cluster_ || *open_cluster_ != cluster_id) return;  // moved-from scope
  Cluster& cluster = model_.cluster(cluster_id);
  const auto& g = builder_.graph();
  for (std::size_t i = scope_process_start_; i < g.process_count(); ++i) {
    cluster.processes.push_back(ProcessId{static_cast<std::uint32_t>(i)});
  }
  for (std::size_t i = scope_channel_start_; i < g.channel_count(); ++i) {
    cluster.channels.push_back(ChannelId{static_cast<std::uint32_t>(i)});
  }
  open_cluster_.reset();
}

VariantBuilder::ClusterScope::~ClusterScope() {
  if (owner_ != nullptr) owner_->end_cluster(cluster_);
}

VariantBuilder::ClusterScope::ClusterScope(ClusterScope&& other) noexcept
    : owner_(other.owner_), cluster_(other.cluster_) {
  other.owner_ = nullptr;
}

VariantBuilder& VariantBuilder::assign(ClusterId cluster, ProcessId process) {
  model_.cluster(cluster).processes.push_back(process);
  return *this;
}

VariantBuilder& VariantBuilder::assign(ClusterId cluster, ChannelId channel) {
  model_.cluster(cluster).channels.push_back(channel);
  return *this;
}

ClusterId VariantBuilder::require_cluster(InterfaceId iface, std::string_view name) const {
  const auto id = model_.find_cluster(name);
  if (!id || model_.cluster(*id).interface != iface) {
    throw support::ModelError("interface '" + model_.interface(iface).name +
                              "' has no cluster named '" + std::string(name) + "'");
  }
  return *id;
}

VariantBuilder& VariantBuilder::selection_rule(InterfaceId iface, std::string rule_name,
                                               Predicate predicate,
                                               std::string_view cluster_name) {
  const ClusterId cluster = require_cluster(iface, cluster_name);
  model_.interface(iface).selection.push_back(
      {std::move(rule_name), std::move(predicate), cluster});
  return *this;
}

VariantBuilder& VariantBuilder::t_conf(InterfaceId iface, std::string_view cluster_name,
                                       Duration latency) {
  const ClusterId cluster = require_cluster(iface, cluster_name);
  model_.interface(iface).t_conf[cluster] = latency;
  return *this;
}

VariantBuilder& VariantBuilder::initial_cluster(InterfaceId iface,
                                                std::string_view cluster_name) {
  model_.interface(iface).initial = require_cluster(iface, cluster_name);
  return *this;
}

VariantBuilder& VariantBuilder::consume_selection_token(InterfaceId iface, bool consume) {
  model_.interface(iface).consume_selection_token = consume;
  return *this;
}

VariantBuilder& VariantBuilder::link(InterfaceId a, InterfaceId b) {
  model_.link_interfaces(a, b);
  return *this;
}

VariantModel VariantBuilder::take() {
  if (open_cluster_) {
    throw support::ModelError("take() while cluster scope '" +
                              model_.cluster(*open_cluster_).name + "' is still open");
  }
  model_.graph() = builder_.take();
  return std::move(model_);
}

}  // namespace spivar::variant
